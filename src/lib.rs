//! Umbrella crate for the RAP-WAM reproduction suite.
//!
//! This crate re-exports the individual crates of the workspace so that the
//! `examples/` and `tests/` at the repository root can exercise the whole
//! pipeline (Prolog source → WAM code → RAP-WAM execution trace → cache
//! simulation) through a single dependency.

pub use pwam_bench as harness;
pub use pwam_benchmarks as benchmarks;
pub use pwam_cachesim as cachesim;
pub use pwam_compiler as compiler;
pub use pwam_front as front;
pub use pwam_server as server;
pub use rapwam;
