//! Vendored offline stand-in for the `mio`/`polling` crates: a minimal,
//! level-triggered readiness poller over raw file descriptors.
//!
//! On Linux the implementation is epoll (via the `extern "C"` syscall
//! wrappers the platform libc already provides — std links it, so no
//! dependency is added); on other unix platforms it falls back to
//! `poll(2)` with a registration table rebuilt per call.  Both are **level
//! triggered**: an event keeps firing as long as the condition holds, so a
//! handler that does not drain a socket simply sees it again on the next
//! wait — the simplest correctness contract for a readiness loop.
//!
//! The API is the small intersection an event-loop server needs:
//!
//! ```no_run
//! use polling::{Event, Interest, Poller};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let mut poller = Poller::new().unwrap();
//! poller.register(listener.as_raw_fd(), 0, Interest::READ).unwrap();
//! let mut events = Vec::new();
//! poller.poll(&mut events, None).unwrap();
//! for ev in &events {
//!     assert_eq!(ev.token, 0); // the listener is ready to accept
//! }
//! ```

use std::io;
use std::time::Duration;

/// What readiness a registration waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    /// Wait for readability only.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Wait for writability only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Wait for both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness notification.  Error/hangup conditions are folded into
/// `readable` (and `writable` when write interest was registered): the
/// handler's read/write will surface the actual error, which keeps the
/// loop's cleanup on a single path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// A level-triggered readiness poller.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Create a new poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new()? })
    }

    /// Start watching `fd` with the given token and interest.  The fd must
    /// stay open until [`Poller::deregister`]; it should be in non-blocking
    /// mode (level-triggered readiness is advisory, not a guarantee that a
    /// whole read/write will not block).
    pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Change the token and/or interest of an already-registered fd.
    pub fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Wait for readiness on any registered fd.  Clears and refills
    /// `events`; returns the number of events delivered.  `None` blocks
    /// indefinitely; `Some(d)` waits at most `d` (zero polls without
    /// blocking).  A signal interruption (`EINTR`) is retried internally.
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.inner.poll(events, timeout)
    }
}

/// Clamp a timeout to the millisecond `int` the syscalls take: `None` maps
/// to -1 (block forever), sub-millisecond waits round up so a 100µs wait
/// does not busy-spin as zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                d.as_millis().clamp(1, i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll(7) backend.  The kernel keeps the registration table, so
    //! `poll` is O(ready), not O(registered) — the property that lets one
    //! loop carry thousands of connections.

    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the kernel's `struct epoll_event`.  On x86 the kernel ABI
    /// packs the struct (no padding between `events` and `data`); other
    /// architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub struct Poller {
        epfd: i32,
        /// Reused kernel-side event buffer.
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        fn ctl(&mut self, op: i32, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: interest_bits(interest), data: token };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            // The event argument is ignored for DEL (required non-null only
            // on pre-2.6.9 kernels; passing one is harmless everywhere).
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest { readable: false, writable: false })
        }

        pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let n = loop {
                let rc = unsafe {
                    epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, timeout_ms(timeout))
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR with a finite timeout: retry with the full timeout
                // (the small overshoot is irrelevant to a readiness loop).
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                let err = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0 || err,
                    writable: bits & EPOLLOUT != 0 || err,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) fallback for non-Linux unix: the registration table lives in
    //! user space and the pollfd array is rebuilt per call — O(registered),
    //! fine at the scales a development host sees.

    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::time::Duration;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    pub struct Poller {
        registered: Vec<(i32, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Vec::new() })
        }

        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            if self.registered.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            match self.registered.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            match self.registered.iter().position(|&(f, _, _)| f == fd) {
                Some(i) => {
                    self.registered.remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            loop {
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms(timeout)) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(self.registered.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                let err = pfd.revents & (POLLERR | POLLHUP) != 0;
                events.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0 || err,
                    writable: pfd.revents & POLLOUT != 0 || err,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Stub for non-unix targets: constructing a poller fails at runtime,
    //! keeping the crate (and everything that depends on it) compiling.

    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "polling: no backend for this platform"))
        }

        pub fn register(&mut self, _: i32, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("Poller::new never succeeds on this platform")
        }

        pub fn reregister(&mut self, _: i32, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("Poller::new never succeeds on this platform")
        }

        pub fn deregister(&mut self, _: i32) -> io::Result<()> {
            unreachable!("Poller::new never succeeds on this platform")
        }

        pub fn poll(&mut self, _: &mut Vec<Event>, _: Option<Duration>) -> io::Result<usize> {
            unreachable!("Poller::new never succeeds on this platform")
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn read_readiness_fires_and_is_level_triggered() {
        let (mut a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a zero timeout returns no events.
        assert_eq!(poller.poll(&mut events, Some(Duration::ZERO)).unwrap(), 0);

        a.write_all(b"x").unwrap();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: the unread byte keeps the event firing.
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);

        // Draining the socket clears it.
        let mut buf = [0u8; 8];
        let _ = std::io::Read::read(&mut &b, &mut buf).unwrap();
        assert_eq!(poller.poll(&mut events, Some(Duration::ZERO)).unwrap(), 0);
    }

    #[test]
    fn write_interest_reports_writable() {
        let (a, _b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(a.as_raw_fd(), 3, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(events[0].writable);
        assert_eq!(events[0].token, 3);
    }

    #[test]
    fn reregister_switches_interest_and_token() {
        let (mut a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert_eq!(events[0].token, 1);

        // Same fd, new token, read+write interest.
        poller.reregister(b.as_raw_fd(), 2, Interest::BOTH).unwrap();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert_eq!(events[0].token, 2);
        assert!(events[0].readable && events[0].writable);
    }

    #[test]
    fn deregister_stops_events() {
        let (mut a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        poller.deregister(b.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.poll(&mut events, Some(Duration::ZERO)).unwrap(), 0);
    }

    #[test]
    fn peer_close_wakes_readers() {
        let (a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        // Hangup folds into readability; the read then observes EOF.
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!(Read::read(&mut &b, &mut buf).unwrap(), 0);
    }

    #[test]
    fn timeout_expires_without_events() {
        let (_a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        let start = Instant::now();
        let mut events = Vec::new();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_millis(30))).unwrap(), 0);
        assert!(start.elapsed() >= Duration::from_millis(25), "returned too early");
    }

    #[test]
    fn multiple_registrations_deliver_distinct_tokens() {
        let (mut a1, b1) = pair();
        let (mut a2, b2) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b1.as_raw_fd(), 10, Interest::READ).unwrap();
        poller.register(b2.as_raw_fd(), 20, Interest::READ).unwrap();
        a1.write_all(b"x").unwrap();
        a2.write_all(b"y").unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.poll(&mut events, Some(Duration::from_secs(5))).unwrap(), 2);
        let mut tokens: Vec<u64> = events.iter().map(|e| e.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, [10, 20]);
    }
}
