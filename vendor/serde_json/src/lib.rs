//! Vendored offline stand-in for `serde_json`.
//!
//! Renders the [`serde::value::Value`] tree produced by the vendored `serde`
//! stand-in as JSON text, and parses JSON text back into a [`Value`] tree
//! ([`from_str`]).  Typed deserialization is not implemented — callers that
//! read JSON walk the `Value` tree through its accessors.

use std::fmt;

pub use serde::value::Value;

/// Serialization into an in-memory string cannot fail in this stand-in;
/// parsing reports the failure position and cause.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse JSON text into a [`Value`] tree.
///
/// The real `serde_json::from_str` is generic over `Deserialize`; the
/// stand-in supports the `Value` target only, which is the surface this
/// workspace uses for reading its own recorded files.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by the writer
                            // half of this stand-in; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_its_own_output() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("q\"uo\\te\n".to_string())),
            ("count".to_string(), Value::UInt(42)),
            ("delta".to_string(), Value::Int(-7)),
            ("ratio".to_string(), Value::Float(1.5)),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            ("items".to_string(), Value::Array(vec![Value::UInt(1), Value::Str("two".to_string())])),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        assert_eq!(from_str(&v.to_json()).unwrap(), v);
        assert_eq!(from_str(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "[] trailing", "nul"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integral_floats_parse_as_floats() {
        // The writer renders integral floats as "1.0" so they stay
        // distinguishable from ints; the parser must keep that round trip.
        assert_eq!(from_str("1.0").unwrap(), Value::Float(1.0));
        assert_eq!(from_str("10").unwrap(), Value::UInt(10));
        assert_eq!(from_str("-10").unwrap(), Value::Int(-10));
    }
}
