//! Vendored offline stand-in for `serde_json`.
//!
//! Renders the [`serde::value::Value`] tree produced by the vendored `serde`
//! stand-in as JSON text. Only serialization is implemented — nothing in the
//! workspace parses JSON yet.

use std::fmt;

pub use serde::value::Value;

/// Error type kept for signature compatibility; serialization into an
/// in-memory string cannot fail in this stand-in.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}
