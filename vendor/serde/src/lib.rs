//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible subset: a [`Serialize`] trait that lowers any
//! value to a JSON-like [`value::Value`] tree, a [`Deserialize`] marker trait,
//! and `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! sibling `serde_derive` proc-macro crate) covering structs and enums with
//! named, tuple, and unit shapes.
//!
//! Only the surface this repository actually uses is implemented; swap the
//! `vendor/` path dependencies for the real crates once network access is
//! available.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::collections::{BTreeMap, HashMap};

use value::Value;

/// A type that can lower itself to a [`Value`] tree.
///
/// The real serde drives a visitor; this stand-in materialises the tree
/// directly, which is all `serde_json::to_string_pretty` needs.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait recording that a type opted into deserialization.
///
/// Nothing in this workspace deserializes yet, so the derive emits an empty
/// impl; the trait exists so `#[derive(Deserialize)]` and trait bounds keep
/// compiling unchanged.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Int(*self as i64)
                }
            }
            impl Deserialize for $t {}
        )*
    };
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::UInt(*self as u64)
                }
            }
            impl Deserialize for $t {}
        )*
    };
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$idx.to_value()),+])
                }
            }
            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
        )*
    };
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}
impl<K: ToString, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: ToString, V: Deserialize> Deserialize for HashMap<K, V> {}
