//! A JSON-like value tree plus a pretty printer, shared by the `serde` and
//! `serde_json` stand-ins.

use std::fmt;

/// A materialised serialization result.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order follows declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (from non-negative ints and integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x < u64::MAX as f64 => Some(*x as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from ints, as
                    // serde_json does.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&x.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}
