//! Vendored offline stand-in for `rand` 0.9.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::random_range` / `Rng::random_bool` methods used by the workspace's
//! tests, backed by a deterministic splitmix64 generator. Not
//! cryptographically secure — test use only.

use std::ops::Range;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample target for [`Rng::random_range`]: implemented for the integer range
/// types the workspace samples from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore + Sized {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa gives a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub trait Random {
    fn random(rng: &mut dyn RngCore) -> Self;
}

impl Random for bool {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample(self, rng: &mut dyn RngCore) -> $t {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    (self.start as u128 + (rng.next_u64() % span) as u128) as $t
                }
            }
        )*
    };
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}
