//! Vendored offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable without network access, so this crate parses
//! the derive input token stream by hand. It supports the shapes the
//! workspace actually derives on: unit/tuple/named structs and enums whose
//! variants are unit, tuple, or struct-like (optionally with explicit
//! discriminants). `#[serde(...)]` field attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::TupleStruct(arity) => tuple_struct_body(*arity),
        Shape::NamedStruct(fields) => named_fields_body(fields, "self."),
        Shape::Enum(variants) => enum_body(&item.name, variants),
    };
    format!(
        "impl {decl} ::serde::Serialize for {name} {args} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n\
                 {body}\n\
             }}\n\
         }}",
        decl = item.generics_decl("::serde::Serialize"),
        name = item.name,
        args = item.generics_args(),
        body = body,
    )
    .parse()
    .expect("serde_derive: generated Serialize impl does not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "impl {decl} ::serde::Deserialize for {name} {args} {{}}",
        decl = item.generics_decl("::serde::Deserialize"),
        name = item.name,
        args = item.generics_args(),
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl does not parse")
}

fn tuple_struct_body(arity: usize) -> String {
    match arity {
        0 => "::serde::value::Value::Array(vec![])".to_string(),
        // Newtype structs serialize transparently, as in real serde.
        1 => "::serde::Serialize::to_value(&self.0)".to_string(),
        n => {
            let items: Vec<String> =
                (0..n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
    }
}

fn named_fields_body(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::value::Value::Object(vec![{}])", entries.join(", "))
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let arm = match &v.shape {
            VariantShape::Unit => {
                format!("{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),", v = v.name)
            }
            VariantShape::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                let inner = if *arity == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> =
                        binders.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{v}({binders}) => ::serde::value::Value::Object(vec![(\"{v}\".to_string(), {inner})]),",
                    v = v.name,
                    binders = binders.join(", "),
                )
            }
            VariantShape::Named(fields) => {
                let inner = named_fields_body(fields, "");
                format!(
                    "{name}::{v} {{ {fields} }} => ::serde::value::Value::Object(vec![(\"{v}\".to_string(), {inner})]),",
                    v = v.name,
                    fields = fields.join(", "),
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

struct Item {
    name: String,
    /// Bare generic parameter names, e.g. `["T"]` for `struct Foo<T>`.
    generic_params: Vec<String>,
    shape: Shape,
}

impl Item {
    /// `impl<T: Bound>`-style generics text, empty when the item is not
    /// generic. Used for both the impl parameter list and the type arguments
    /// (parameter names match type arguments for the simple generics we
    /// support).
    fn generics_decl(&self, bound: &str) -> String {
        if self.generic_params.is_empty() {
            String::new()
        } else {
            let params: Vec<String> = self.generic_params.iter().map(|p| format!("{p}: {bound}")).collect();
            format!("<{}>", params.join(", "))
        }
    }

    /// Bare `<T>`-style type arguments matching [`Item::generics_decl`].
    fn generics_args(&self) -> String {
        if self.generic_params.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_params.join(", "))
        }
    }
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    // Optional generics: collect bare parameter names, ignoring bounds.
    let mut generic_params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut at_param_position = true;
            for tok in tokens.by_ref() {
                match &tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        at_param_position = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        at_param_position = false;
                    }
                    TokenTree::Ident(id) if at_param_position => {
                        generic_params.push(id.to_string());
                        at_param_position = false;
                    }
                    _ => {}
                }
            }
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_segments(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item { name, generic_params, shape }
}

/// Field names of a named-field body: skips attributes and visibility, takes
/// the identifier before each top-level `:`, then skips to the next comma.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        // Skip `: Type` up to the next top-level comma. Types contain no
        // braces at field position, and `<...>` nesting carries no commas we
        // would split on because we track angle depth.
        let mut angle_depth = 0usize;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of top-level comma-separated segments (tuple struct / variant arity).
fn count_top_level_segments(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0usize;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_segment = false,
            _ => {
                if !in_segment {
                    segments += 1;
                    in_segment = true;
                }
            }
        }
    }
    segments
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_segments(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}
