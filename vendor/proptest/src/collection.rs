//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::Rng;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for collection::vec");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.size.start;
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        // Truncations first (most aggressive): down to the minimum
        // length, then dropping half the excess, then one element.
        if value.len() > min {
            for len in [min, min + (value.len() - min) / 2, value.len() - 1] {
                if len < value.len() && !out.iter().any(|v| v.len() == len) {
                    out.push(value[..len].to_vec());
                }
            }
        }
        // Then element-wise: each position replaced by its own most
        // aggressive shrink, length held fixed.
        for (i, elem) in value.iter().enumerate() {
            if let Some(smaller) = self.element.shrink(elem).into_iter().next() {
                let mut copy = value.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}
