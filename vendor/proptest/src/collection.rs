//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::Rng;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for collection::vec");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
