//! Core strategy trait and combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::Rng;

/// A generator of random values. Unlike real proptest there is no value
/// tree: a strategy produces a value directly from an RNG, and shrinking
/// is a separate naive pass over failing values ([`Strategy::shrink`]).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose strictly "smaller" variants of a failing value, most
    /// aggressive first: numeric ranges pull toward zero (or the range
    /// start) and halve the remaining distance; collections truncate.
    /// The default proposes nothing, which keeps non-invertible
    /// combinators (`prop_map`, `prop_oneof!`, boxed strategies) sound —
    /// they simply don't shrink.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, map }
    }

    fn prop_filter<F>(self, reason: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { strategy: self, reason, filter }
    }

    /// Recursive structures: `depth` levels of `recurse` applied on top of
    /// `self` as the leaf strategy. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility but only guide nothing here — the
    /// recursion depth alone bounds the generated structures.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current.clone()).boxed();
            let leaf = leaf.clone();
            // At every level, fall back to a leaf a quarter of the time so
            // generated structures vary in depth, not only in breadth.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut Rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut Rng) -> T>);

impl<T> BoxedStrategy<T> {
    pub fn from_fn(generate: impl Fn(&mut Rng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(generate))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.map)(self.strategy.generate(rng))
    }
}

pub struct Filter<S, F> {
    strategy: S,
    reason: &'static str,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> S::Value {
        for _ in 0..1000 {
            let value = self.strategy.generate(rng);
            if (self.filter)(&value) {
                return value;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.reason);
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink through to the inner strategy, keeping only candidates
        // that still satisfy the filter.
        self.strategy.shrink(value).into_iter().filter(|v| (self.filter)(v)).collect()
    }
}

/// Uniform choice between strategies, built by `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let index = rng.below(self.0.len() as u64) as usize;
        self.0[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    // Pull toward the smallest-magnitude value the range
                    // admits (zero when it spans zero, else the start):
                    // jump straight there, then halve the distance.
                    let anchor: $t = if (self.start as i128) <= 0 && 0 < (self.end as i128) {
                        0 as $t
                    } else {
                        self.start
                    };
                    let halfway = ((*value as i128 + anchor as i128) / 2) as $t;
                    let mut out = Vec::new();
                    for candidate in [anchor, halfway] {
                        if candidate != *value && !out.contains(&candidate) {
                            out.push(candidate);
                        }
                    }
                    out
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component shrunk at a time, the rest held fixed.
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut copy = value.clone();
                            copy.$idx = candidate;
                            out.push(copy);
                        }
                    )+
                    out
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
