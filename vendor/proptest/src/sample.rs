//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;

pub struct Select<T> {
    options: Vec<T>,
}

/// Uniformly selects one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].clone()
    }
}
