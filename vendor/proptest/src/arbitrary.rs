//! `any::<T>()` for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut Rng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.gen_bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
