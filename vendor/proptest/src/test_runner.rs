//! Deterministic RNG, config, and failure plumbing for the `proptest!` macro.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property, carried out of the test body by `prop_assert*!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic splitmix64 generator, seeded from the test name so each
/// property explores a stable sequence of cases run-to-run.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed ^ 0x5DEECE66D }
    }

    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Rng::new(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below called with bound 0");
        self.next_u64() % bound
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
