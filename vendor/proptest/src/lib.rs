//! Vendored offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: ranges and tuples as strategies, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, and the `proptest!` /
//! `prop_assert*!` macros. Generation is deterministic (seeded from the test
//! name), and failing cases are reported with their generated inputs via the
//! test's panic message.
//!
//! Shrinking is **naive**: there is no value tree. When a case fails, the
//! runner asks each argument's strategy for strictly smaller variants of
//! the failing value ([`strategy::Strategy::shrink`] — numeric ranges jump
//! to zero/start then halve the distance, collections truncate), greedily
//! adopts any variant that still fails, and repeats until nothing smaller
//! fails or a fixed attempt budget runs out. Non-invertible combinators
//! (`prop_map`, `prop_oneof!`, boxed strategies) don't shrink — their
//! values are reported as generated. There is no persistence of failing
//! seeds.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // The real proptest prelude re-exports the crate root as `prop`, so
    // `prop::collection::vec(...)` and `prop::sample::select(...)` resolve.
    pub use crate as prop;
}

/// `prop_oneof![s1, s2, ...]` — uniform choice between strategies of the same
/// value type. (The real macro's `weight => strategy` form is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    // The stringified condition may itself contain `{`/`}` (e.g. inline
    // format strings), so it must not pass through `format!` again.
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Run one case and, on failure, greedily shrink it: adopt any strategy-
/// proposed smaller input that still fails, until none does or the attempt
/// budget runs out. Panics inside the body (plain `assert!`s, `unwrap`s)
/// are caught and treated as failures so they shrink too. Returns `None`
/// when the case passes, else the smallest failing input, its error, and
/// how many shrink steps were taken.
#[doc(hidden)]
pub fn run_and_shrink<S, F>(
    strategy: &S,
    value: S::Value,
    run: &F,
) -> Option<(S::Value, test_runner::TestCaseError, usize)>
where
    S: strategy::Strategy,
    F: Fn(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::TestCaseError;

    fn attempt<T>(run: &impl Fn(&T) -> Result<(), TestCaseError>, value: &T) -> Result<(), TestCaseError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(value))) {
            Ok(outcome) => outcome,
            Err(payload) => Err(TestCaseError::fail(
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "test body panicked".to_string()),
            )),
        }
    }

    let mut err = match attempt(run, &value) {
        Ok(()) => return None,
        Err(e) => e,
    };
    let mut value = value;
    let mut steps = 0usize;
    let mut budget = 256usize;
    'outer: while budget > 0 {
        for candidate in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(candidate_err) = attempt(run, &candidate) {
                value = candidate;
                err = candidate_err;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Some((value, err, steps))
}

/// Pins a case-runner closure's argument type to `&S::Value` at its
/// definition site, so the types of the destructured test arguments are
/// known while the body is inferred (a bare `|values: &_|` closure would
/// be inferred before its later use unifies the types).
#[doc(hidden)]
pub fn bind_case<S, F>(_strategy: &S, run: F) -> F
where
    S: strategy::Strategy,
    F: Fn(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    run
}

/// The test-defining macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases; a
/// failing case is naively shrunk (see the crate docs) before reporting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let values = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let run = $crate::bind_case(&strategy, |values| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(values);
                        $body
                        ::std::result::Result::Ok(())
                    });
                    if let ::std::option::Option::Some((smallest, err, steps)) =
                        $crate::run_and_shrink(&strategy, values, &run)
                    {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  smallest failing input after {} shrink step(s): {:?}",
                            stringify!($name), case + 1, config.cases, err, steps, smallest
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn ranges_shrink_toward_zero_then_halve() {
        let spans_zero = -100i64..100;
        assert_eq!(spans_zero.shrink(&80), vec![0, 40]);
        assert_eq!(spans_zero.shrink(&-80), vec![0, -40]);
        assert_eq!(spans_zero.shrink(&0), Vec::<i64>::new());

        let positive = 10i64..100;
        assert_eq!(positive.shrink(&50), vec![10, 30]);
        assert_eq!(positive.shrink(&10), Vec::<i64>::new());
    }

    #[test]
    fn vecs_truncate_then_shrink_elements() {
        let s = crate::collection::vec(0i64..100, 1..8);
        let candidates = s.shrink(&vec![7, 9, 11]);
        assert!(candidates.contains(&vec![7]), "truncation to the minimum length");
        assert!(candidates.contains(&vec![7, 9]), "dropping one element");
        assert!(candidates.contains(&vec![0, 9, 11]), "shrinking one element in place");
        assert!(s.shrink(&vec![0]).is_empty(), "minimal vectors have nowhere to go");
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0i64..100, 0i64..100);
        let candidates = s.shrink(&(8, 12));
        assert!(candidates.contains(&(0, 12)));
        assert!(candidates.contains(&(8, 0)));
        assert!(!candidates.contains(&(0, 0)), "only one component moves per step");
    }

    #[test]
    fn filters_only_propose_candidates_that_still_pass() {
        let even = (0i64..100).prop_filter("even", |n| n % 2 == 0);
        for candidate in even.shrink(&62) {
            assert_eq!(candidate % 2, 0, "shrink must respect the filter");
        }
    }

    #[test]
    fn failing_cases_shrink_to_the_smallest_failure() {
        // `x < 10` fails for every generated value; greedy shrinking must
        // land exactly on the range's lower boundary.
        proptest! {
            #![proptest_config(crate::test_runner::ProptestConfig::with_cases(3))]
            fn always_fails(x in 10i64..1000) {
                prop_assert!(x < 10, "x = {x} is not below 10");
            }
        }
        let message = *std::panic::catch_unwind(always_fails)
            .expect_err("the property must fail")
            .downcast::<String>()
            .expect("panic message is a String");
        assert!(message.contains("smallest failing input"), "message: {message}");
        assert!(message.contains("(10,)"), "expected the boundary value 10, got: {message}");
    }
}
