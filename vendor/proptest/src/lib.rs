//! Vendored offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: ranges and tuples as strategies, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, and the `proptest!` /
//! `prop_assert*!` macros. Generation is deterministic (seeded from the test
//! name), and failing cases are reported with their generated inputs via the
//! test's panic message — but there is **no shrinking** and no persistence
//! of failing seeds.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // The real proptest prelude re-exports the crate root as `prop`, so
    // `prop::collection::vec(...)` and `prop::sample::select(...)` resolve.
    pub use crate as prop;
}

/// `prop_oneof![s1, s2, ...]` — uniform choice between strategies of the same
/// value type. (The real macro's `weight => strategy` form is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    // The stringified condition may itself contain `{`/`}` (e.g. inline
    // format strings), so it must not pass through `format!` again.
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// The test-defining macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, err);
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}
