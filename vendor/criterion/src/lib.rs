//! Vendored offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Throughput`, and `Bencher::iter` — backed by a simple wall-clock timer.
//! Each call of the benchmark closure is one sample; the report gives the
//! mean, minimum and maximum time per iteration over the collected samples
//! (and throughput at the mean when configured), but does no warm-up
//! tuning, outlier analysis, or HTML reporting.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Cap on the measurement time spent per benchmark function, so a full
/// `cargo bench` run of the stand-in stays quick.
const TIME_BUDGET: Duration = Duration::from_millis(250);

pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::new();
        run_benchmark(&group_name, &id.into_benchmark_id(), 10, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into_benchmark_id(), self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Mean/min/max of per-iteration times (nanoseconds) over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    pub samples: usize,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

/// Summarise per-sample per-iteration times.  Returns `None` when no sample
/// recorded an iteration.
pub fn summarise(samples_ns: &[f64]) -> Option<SampleSummary> {
    if samples_ns.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &s in samples_ns {
        min = min.min(s);
        max = max.max(s);
        sum += s;
    }
    Some(SampleSummary {
        samples: samples_ns.len(),
        mean_ns: sum / samples_ns.len() as f64,
        min_ns: min,
        max_ns: max,
    })
}

fn run_benchmark<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
    let deadline = Instant::now() + TIME_BUDGET;
    let mut samples = 0usize;
    // Per-sample mean time per iteration; one entry per closure call that
    // performed at least one iteration.
    let mut per_sample_ns: Vec<f64> = Vec::with_capacity(sample_size);
    while samples < sample_size && (samples == 0 || Instant::now() < deadline) {
        let (iters_before, elapsed_before) = (bencher.iters, bencher.elapsed);
        f(&mut bencher);
        samples += 1;
        let iters = bencher.iters - iters_before;
        if iters > 0 {
            let elapsed = bencher.elapsed - elapsed_before;
            per_sample_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let Some(summary) = summarise(&per_sample_ns) else {
        eprintln!("  {label}: no iterations recorded");
        return;
    };
    let spread = format!("min {:.0}, max {:.0}, {} samples", summary.min_ns, summary.max_ns, summary.samples);
    let per_iter = summary.mean_ns;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            eprintln!("  {label}: mean {per_iter:.0} ns/iter ({spread}; {rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            eprintln!("  {label}: mean {per_iter:.0} ns/iter ({spread}; {rate:.0} B/s)");
        }
        _ => eprintln!("  {label}: mean {per_iter:.0} ns/iter ({spread})"),
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(hint::black_box(out));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarise_reports_mean_min_max() {
        let s = summarise(&[10.0, 30.0, 20.0]).unwrap();
        assert_eq!(s.samples, 3);
        assert!((s.mean_ns - 20.0).abs() < 1e-9);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 30.0);
    }

    #[test]
    fn summarise_of_nothing_is_none() {
        assert_eq!(summarise(&[]), None);
    }

    #[test]
    fn bencher_tracks_iterations_per_sample() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iters, 2);
        assert!(b.elapsed > Duration::ZERO);
    }
}
