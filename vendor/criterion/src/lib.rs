//! Vendored offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Throughput`, and `Bencher::iter` — backed by a simple wall-clock timer.
//! It reports a mean time per iteration (and throughput when configured) but
//! does no statistical analysis, warm-up tuning, or HTML reporting.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Cap on the measurement time spent per benchmark function, so a full
/// `cargo bench` run of the stand-in stays quick.
const TIME_BUDGET: Duration = Duration::from_millis(250);

pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::new();
        run_benchmark(&group_name, &id.into_benchmark_id(), 10, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into_benchmark_id(), self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
    let deadline = Instant::now() + TIME_BUDGET;
    let mut samples = 0usize;
    while samples < sample_size && (samples == 0 || Instant::now() < deadline) {
        f(&mut bencher);
        samples += 1;
    }
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if bencher.iters == 0 {
        eprintln!("  {label}: no iterations recorded");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            eprintln!("  {label}: {per_iter:.0} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            eprintln!("  {label}: {per_iter:.0} ns/iter ({rate:.0} B/s)");
        }
        _ => eprintln!("  {label}: {per_iter:.0} ns/iter"),
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(hint::black_box(out));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
