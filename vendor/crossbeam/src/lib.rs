//! Vendored offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel::unbounded` is provided: a multi-producer,
//! multi-consumer FIFO channel backed by a `Mutex<VecDeque>` and a `Condvar`.
//! Disconnection semantics match crossbeam's: `recv` drains remaining
//! messages after the last sender drops, then reports an error; `send` fails
//! once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::recv_timeout`], matching crossbeam's shape.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.queue.lock().unwrap().items.pop_front().ok_or(RecvError)
        }

        /// Block for at most `timeout`, matching crossbeam's
        /// `recv_timeout`: drains buffered messages first, reports a
        /// disconnect once the last sender is gone, and otherwise gives up
        /// when the deadline passes.
        ///
        /// Kept even while the workspace has no caller (the engine pool's
        /// bounded acquire used it before moving to a warm-preferring LIFO
        /// stack): the shim mirrors the real crate's surface so swapping in
        /// crates.io crossbeam stays a manifest-only change.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self.0.ready.wait_timeout(state, deadline - now).unwrap();
                state = next;
                if result.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().unwrap().receivers -= 1;
        }
    }
}
