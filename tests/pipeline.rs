//! End-to-end integration tests spanning every crate: Prolog source →
//! compiled RAP-WAM code → multi-PE execution trace → coherent-cache
//! simulation, on small inputs so the whole suite stays fast.

use pwam_suite::benchmarks::{all_benchmarks, benchmark, runner, BenchmarkId, Scale};
use pwam_suite::cachesim::{simulate, CacheConfig, Protocol, SimConfig};
use pwam_suite::rapwam::session::{QueryOptions, Session};
use pwam_suite::rapwam::{Area, Locality};

/// Trace one benchmark at a given PE count.
fn trace_of(id: BenchmarkId, pes: usize) -> Vec<pwam_suite::rapwam::MemRef> {
    let b = benchmark(id, Scale::Small);
    let mut session = Session::new(&b.program).unwrap();
    let result = session.run(&b.query, &QueryOptions::parallel(pes).with_trace()).unwrap();
    assert!(result.outcome.is_success());
    result.trace.unwrap()
}

#[test]
fn parallel_answers_match_sequential_answers_for_every_benchmark() {
    for b in all_benchmarks(Scale::Small) {
        let (seq_session, seq) = runner::run_benchmark_with_session(&b, &QueryOptions::sequential()).unwrap();
        runner::validate(&b, &seq_session, &seq).unwrap();
        for pes in [2usize, 4, 8] {
            let (par_session, par) =
                runner::run_benchmark_with_session(&b, &QueryOptions::parallel(pes)).unwrap();
            runner::validate(&b, &par_session, &par).unwrap_or_else(|e| {
                panic!("{} wrong on {pes} PEs: {e}", b.id.name());
            });
        }
    }
}

#[test]
fn traces_contain_shared_and_locked_references_when_parallel() {
    let trace = trace_of(BenchmarkId::Qsort, 4);
    assert!(!trace.is_empty());
    let global = trace.iter().filter(|r| r.locality == Locality::Global).count();
    let locked = trace.iter().filter(|r| r.locked).count();
    assert!(global > 0, "no globally-tagged references in a parallel run");
    assert!(locked > 0, "no locked references (goal stack / counts) in a parallel run");
    // Goal Stack traffic only exists in the parallel machine (Table 1).
    assert!(trace.iter().any(|r| r.area == Area::GoalStack));
}

#[test]
fn sequential_traces_use_only_wam_areas() {
    let b = benchmark(BenchmarkId::Deriv, Scale::Small);
    let mut session = Session::new(&b.program).unwrap();
    let result = session.run(&b.query, &QueryOptions::sequential().with_trace()).unwrap();
    let trace = result.trace.unwrap();
    assert!(trace.iter().all(|r| r.object.in_wam()), "sequential execution touched a parallel-only object");
    assert!(trace.iter().all(|r| r.pe == 0));
}

#[test]
fn protocol_ranking_matches_the_paper_on_real_traces() {
    // Figure 4's ranking: broadcast <= hybrid <= conventional write-through,
    // checked on a real multi-PE trace at a medium cache size.
    let trace = trace_of(BenchmarkId::Qsort, 4);
    let tr = |protocol| {
        let config = SimConfig {
            cache: CacheConfig { size_words: 512, line_words: 4, write_allocate: true },
            protocol,
            num_pes: 4,
        };
        simulate(&config, &trace).traffic_ratio()
    };
    let broadcast = tr(Protocol::WriteInBroadcast);
    let hybrid = tr(Protocol::Hybrid);
    let write_through = tr(Protocol::WriteThrough);
    assert!(broadcast <= hybrid + 1e-9, "broadcast {broadcast} vs hybrid {hybrid}");
    assert!(hybrid <= write_through + 1e-9, "hybrid {hybrid} vs write-through {write_through}");
    assert!(write_through > broadcast, "write-through must be strictly worse than broadcast");
}

#[test]
fn write_update_broadcast_is_close_to_write_invalidate_broadcast() {
    // "The write-through broadcast cache statistics are almost identical to
    // those of the write-in broadcast cache."
    let trace = trace_of(BenchmarkId::Matrix, 4);
    let mk = |protocol| SimConfig {
        cache: CacheConfig { size_words: 1024, line_words: 4, write_allocate: true },
        protocol,
        num_pes: 4,
    };
    let invalidate = simulate(&mk(Protocol::WriteInBroadcast), &trace).traffic_ratio();
    let update = simulate(&mk(Protocol::WriteThroughBroadcast), &trace).traffic_ratio();
    let diff = (invalidate - update).abs() / invalidate.max(1e-9);
    assert!(
        diff < 0.15,
        "broadcast variants differ by {:.1}% (invalidate {invalidate}, update {update})",
        diff * 100.0
    );
}

#[test]
fn traffic_ratio_decreases_with_cache_size_on_real_traces() {
    let trace = trace_of(BenchmarkId::Deriv, 2);
    let mut previous = f64::INFINITY;
    for size in [64u32, 256, 1024, 4096] {
        let config = SimConfig {
            cache: CacheConfig::paper_policy(size, Protocol::WriteInBroadcast),
            protocol: Protocol::WriteInBroadcast,
            num_pes: 2,
        };
        let tr = simulate(&config, &trace).traffic_ratio();
        assert!(tr <= previous + 0.05, "traffic ratio rose from {previous} to {tr} at {size} words");
        previous = tr;
    }
}

#[test]
fn caches_capture_most_traffic_at_large_sizes() {
    // The broadcast cache must capture the bulk of the processor traffic
    // once it is big enough (the paper quotes >70%; our traces reach that at
    // larger sizes — see EXPERIMENTS.md).
    let trace = trace_of(BenchmarkId::Qsort, 2);
    let config = SimConfig {
        cache: CacheConfig { size_words: 4096, line_words: 4, write_allocate: true },
        protocol: Protocol::WriteInBroadcast,
        num_pes: 2,
    };
    let result = simulate(&config, &trace);
    assert!(
        result.capture_ratio() > 0.6,
        "a 4096-word broadcast cache captured only {:.0}%",
        100.0 * result.capture_ratio()
    );
}

#[test]
fn locality_tags_drive_the_hybrid_protocol() {
    // The hybrid protocol must treat the trace's Local-tagged writes as
    // copy-back: its write-through word count must be well below the
    // conventional write-through protocol's.
    let trace = trace_of(BenchmarkId::Tak, 2);
    let mk = |protocol| SimConfig {
        cache: CacheConfig { size_words: 1024, line_words: 4, write_allocate: true },
        protocol,
        num_pes: 2,
    };
    let hybrid = simulate(&mk(Protocol::Hybrid), &trace);
    let wthru = simulate(&mk(Protocol::WriteThrough), &trace);
    assert!(
        hybrid.write_through_words * 2 < wthru.write_through_words,
        "hybrid wrote through {} words vs {} for conventional write-through",
        hybrid.write_through_words,
        wthru.write_through_words
    );
}

#[test]
fn compiler_and_engine_agree_on_a_handwritten_program() {
    // A final end-to-end sanity check written directly against the umbrella
    // crate's re-exports (what a downstream user would do).
    let mut session = Session::new(
        "len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.\n\
         double([], []).\ndouble([X|Xs], [Y|Ys]) :- Y is 2 * X, double(Xs, Ys).\n\
         both(L, N, D) :- (ground(L) | len(L, N) & double(L, D)).",
    )
    .unwrap();
    let result = session.run("both([1,2,3,4], N, D)", &QueryOptions::parallel(2)).unwrap();
    assert_eq!(session.render(result.outcome.binding("N").unwrap()), "4");
    assert_eq!(session.render(result.outcome.binding("D").unwrap()), "[2,4,6,8]");
}
