//! The experiment harness run end-to-end on small inputs: every table and
//! figure entry point must produce data with the paper's qualitative shape.
//!
//! The suite honours `PWAM_SCHEDULER` / `PWAM_DETERMINISM` like the
//! binaries do.  Under relaxed determinism two classes of assertions are
//! skipped: elapsed-cycle speedup (rounds do not exist without the
//! scheduling token — relaxed runs report a critical-path estimate) and
//! goal-placement counts (which PE steals which goal is an actual race,
//! and on a single-core host the parent usually wins).  Everything
//! answer- and work-invariant stays asserted in both modes.

use pwam_suite::cachesim::Protocol;
use pwam_suite::harness::experiments::{
    ablation_alloc, ablation_bus, determinism, figure2, figure4, mlips, table1, table2, table3,
    ExperimentScale,
};
use pwam_suite::rapwam::DeterminismMode;

const SCALE: ExperimentScale = ExperimentScale::Small;

/// True when the run is schedule-deterministic, i.e. placement- and
/// cycle-based assertions are meaningful.
fn strict() -> bool {
    determinism() == DeterminismMode::Strict
}

#[test]
fn table1_lists_all_twelve_storage_objects() {
    let rows = table1();
    assert_eq!(rows.len(), 12);
    // Exactly three locked object kinds, as in the paper.
    assert_eq!(rows.iter().filter(|r| r.locked).count(), 3);
    // Six of them exist in the sequential WAM.
    assert_eq!(rows.iter().filter(|r| r.in_wam).count(), 6);
}

#[test]
fn table2_shows_bounded_overhead_and_parallel_goals() {
    let t = table2(SCALE, 4);
    assert_eq!(t.rows.len(), 4);
    for row in &t.rows {
        assert!(row.refs_rapwam >= row.refs_wam, "{}: parallel work below sequential", row.benchmark);
        assert!(row.overhead < 0.8, "{}: overhead {:.2} is implausible", row.benchmark, row.overhead);
        if strict() {
            assert!(row.goals_in_parallel > 0, "{}: no goals executed in parallel", row.benchmark);
        }
        assert!(row.refs_per_instruction > 1.0 && row.refs_per_instruction < 8.0);
    }
    // matrix has the coarsest grain and therefore the lowest overhead.
    let matrix = t.rows.iter().find(|r| r.benchmark == "matrix").unwrap();
    let deriv = t.rows.iter().find(|r| r.benchmark == "deriv").unwrap();
    assert!(matrix.overhead <= deriv.overhead + 0.05);
}

#[test]
fn figure2_work_stays_bounded_and_speedup_grows() {
    let fig = figure2(SCALE, &[1, 2, 4, 8]);
    assert_eq!(fig.points.len(), 4);
    for p in &fig.points {
        assert!(p.work_pct_of_wam >= 99.0, "work below the WAM at {} PEs", p.pes);
        assert!(p.work_pct_of_wam < 200.0, "work exploded at {} PEs: {}", p.pes, p.work_pct_of_wam);
    }
    // Speed-up must increase from 1 to 8 PEs (deriv has enough parallelism
    // even at the small scale).  Elapsed cycles are an emulation metric of
    // the strict backends; relaxed runs report a critical-path estimate
    // instead, so the growth assertion only holds under strict determinism.
    if strict() {
        let s1 = fig.points[0].speedup;
        let s8 = fig.points[3].speedup;
        assert!(s8 > s1 * 1.5, "speed-up did not grow: {s1} -> {s8}");
    }
    // Work on 1 PE must not exceed work on 8 PEs by much (overhead grows
    // with actual parallelism, not the other way around).
    assert!(fig.points[0].work_pct_of_wam <= fig.points[3].work_pct_of_wam + 10.0);
}

#[test]
fn table3_reproduces_the_sign_pattern_of_the_fit() {
    let rows = table3(SCALE);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        // tak has the best locality of the three, deriv the worst — the same
        // ordering as the paper's normalised deviations.
        let dev = |name: &str| {
            row.entries.iter().find(|e| e.benchmark == name).expect("entry").normalised_deviation
        };
        assert!(dev("tak") < dev("qsort"), "tak should sit below qsort");
        assert!(dev("qsort") < dev("deriv"), "qsort should sit below deriv");
        // All traffic ratios are sane.
        for e in &row.entries {
            assert!(e.traffic_ratio > 0.0 && e.traffic_ratio < 1.5);
        }
    }
    // Larger caches give lower traffic for every benchmark.
    for (a, b) in rows[0].entries.iter().zip(&rows[1].entries) {
        assert!(b.traffic_ratio <= a.traffic_ratio + 0.02, "{}: traffic grew with cache size", a.benchmark);
    }
}

#[test]
fn figure4_reproduces_the_protocol_ranking_and_trends() {
    let protocols = [Protocol::WriteInBroadcast, Protocol::Hybrid, Protocol::WriteThrough];
    let fig = figure4(SCALE, &protocols, &[1, 4], &[256, 1024, 4096]);
    assert_eq!(fig.series.len(), protocols.len() * 2);

    let series = |protocol: &str, pes: usize| {
        fig.series
            .iter()
            .find(|s| s.protocol == protocol && s.pes == pes)
            .unwrap_or_else(|| panic!("missing series {protocol}/{pes}"))
    };
    for pes in [1usize, 4] {
        let broadcast = series("broadcast", pes);
        let hybrid = series("hybrid", pes);
        let wthru = series("write-thru", pes);
        for i in 0..fig.cache_sizes.len() {
            let b = broadcast.points[i].1;
            let h = hybrid.points[i].1;
            let w = wthru.points[i].1;
            assert!(b <= h + 0.03, "broadcast {b} vs hybrid {h} at {:?}", broadcast.points[i]);
            assert!(h <= w + 1e-9, "hybrid {h} vs write-through {w}");
        }
        // Traffic decreases (or at least does not grow) with cache size for
        // the broadcast scheme.
        let pts = &broadcast.points;
        assert!(pts.last().unwrap().1 <= pts.first().unwrap().1 + 0.02);
    }
}

#[test]
fn mlips_model_reaches_the_papers_target_with_enough_pes() {
    let m = mlips(SCALE);
    assert!(m.refs_per_instruction > 1.0 && m.refs_per_instruction < 8.0);
    assert!(m.instructions_per_inference > 3.0 && m.instructions_per_inference < 80.0);
    // A 128-word cache on the tiny test input can exceed a ratio of 1.0
    // (line fetches outweigh the reuse); it must still be a sane number.
    assert!(m.traffic_ratio_8pe_128w > 0.0 && m.traffic_ratio_8pe_128w < 1.6);
    assert!((m.demand_mb_per_s - 360.0).abs() < 1.0, "the paper's arithmetic must give 360 MB/s");
    // The bus model is well-behaved: efficiencies in (0, 1], decreasing as
    // PEs are added, and some configuration reaches the paper's 2-MLIPS
    // target when caches capture 70% of the traffic.
    assert!(!m.model.is_empty());
    for pair in m.model.windows(2) {
        assert!(pair[1].efficiency <= pair[0].efficiency + 1e-9);
    }
    assert!(
        m.model.iter().any(|r| r.effective_mlips >= 2.0),
        "no PE count reaches the 2 MLIPS target: {:?}",
        m.model
    );
}

#[test]
fn allocate_policy_ablation_shows_the_paper_crossover() {
    let points = ablation_alloc(SCALE, &[64, 1024]);
    assert_eq!(points.len(), 2);
    // Miss ratio is always higher with no-write-allocate.
    for p in &points {
        assert!(
            p.miss_ratio_no_write_allocate >= p.miss_ratio_write_allocate,
            "no-write-allocate should have the higher miss ratio at {} words",
            p.cache_words
        );
    }
    // For the small cache, no-write-allocate must not be (much) worse on
    // traffic; for the large cache, write-allocate must win or tie.
    assert!(points[0].no_write_allocate <= points[0].write_allocate + 0.05);
    assert!(points[1].write_allocate <= points[1].no_write_allocate + 0.02);
}

#[test]
fn bus_model_efficiency_degrades_gracefully_with_pes() {
    let results = ablation_bus(SCALE, &[1, 4, 16, 64]);
    assert_eq!(results.len(), 4);
    for pair in results.windows(2) {
        assert!(pair[1].efficiency <= pair[0].efficiency + 1e-9);
    }
    assert!(results[0].efficiency > 0.8, "a single PE should be nearly unimpeded");
}
