//! Quickstart: load an annotated Prolog program, run a query sequentially
//! (plain WAM) and in parallel (RAP-WAM), and look at the statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pwam_suite::rapwam::session::{QueryOptions, Session};

fn main() {
    // A tiny AND-parallel program: the two recursive calls of `fib/2` are
    // independent once N1 and N2 are known, which the CGE
    // `( ground(N1), ground(N2) | fib(N1,F1) & fib(N2,F2) )` expresses.
    let program = "\
        fib(0, 0).\n\
        fib(1, 1).\n\
        fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n\
                     (ground(N1), ground(N2) | fib(N1, F1) & fib(N2, F2)),\n\
                     F is F1 + F2.";

    let mut session = Session::new(program).expect("program parses");

    // 1. Sequential WAM baseline.
    let seq = session.run("fib(17, F)", &QueryOptions::sequential()).expect("sequential run");
    let f = seq.outcome.binding("F").expect("F is bound");
    println!("sequential WAM : fib(17) = {}", session.render(f));
    println!(
        "                 {} instructions, {} data references",
        seq.stats.instructions, seq.stats.data_refs
    );

    // 2. RAP-WAM on four processing elements.
    let par = session.run("fib(17, F)", &QueryOptions::parallel(4)).expect("parallel run");
    let f = par.outcome.binding("F").expect("F is bound");
    println!("RAP-WAM, 4 PEs : fib(17) = {}", session.render(f));
    println!(
        "                 {} instructions, {} data references",
        par.stats.instructions, par.stats.data_refs
    );
    println!(
        "                 {} parallel calls, {} goals executed by another PE",
        par.stats.parcalls, par.stats.goals_actually_parallel
    );
    println!(
        "                 speed-up over WAM: {:.2}x (elapsed cycles {} -> {})",
        seq.stats.elapsed_cycles as f64 / par.stats.elapsed_cycles as f64,
        seq.stats.elapsed_cycles,
        par.stats.elapsed_cycles
    );

    // 3. Where do the references go?  (Table 1 of the paper in action.)
    println!("\nreference breakdown on 4 PEs:");
    for area in pwam_suite::rapwam::Area::ALL {
        let count = par.stats.refs_to(area);
        if count > 0 {
            println!("  {:<15} {:>8}", area.name(), count);
        }
    }
}
