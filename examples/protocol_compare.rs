//! Compare the cache-coherency protocols on one trace, including the bus
//! contention / efficiency estimate of the queueing model (Section 3.3).
//!
//! ```text
//! cargo run --release --example protocol_compare
//! ```

use pwam_suite::benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_suite::cachesim::{run_sweep, BusModel, CacheConfig, Protocol, SimConfig};
use pwam_suite::rapwam::session::{QueryOptions, Session};

fn main() {
    // qsort is the largest of the four benchmarks; use it as the workload.
    let bench = benchmark(BenchmarkId::Qsort, Scale::Paper);
    let mut session = Session::new(&bench.program).expect("program parses");
    let result = session.run(&bench.query, &QueryOptions::parallel(8).with_trace()).expect("qsort runs");
    let trace = result.trace.expect("trace collected");
    println!("qsort on 8 PEs: {} references\n", trace.len());

    // One parallel sweep over every protocol at a fixed 1024-word cache.
    let configs: Vec<SimConfig> = Protocol::ALL
        .iter()
        .map(|&protocol| SimConfig {
            cache: CacheConfig { size_words: 1024, line_words: 4, write_allocate: true },
            protocol,
            num_pes: 8,
        })
        .collect();
    let results = run_sweep(&trace, &configs);

    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "protocol", "traffic", "miss", "bus words", "invalidations", "updates"
    );
    for r in &results {
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>12} {:>13} {:>12}",
            r.config.protocol.name(),
            r.traffic_ratio(),
            r.miss_ratio(),
            r.bus_words,
            r.invalidations,
            r.updates
        );
    }

    // Turn traffic ratios into a shared-memory efficiency estimate.
    println!("\nbus-contention model (M/D/1), 8 PEs:");
    let model = BusModel::default();
    for r in &results {
        let eval = model.evaluate(8, r.traffic_ratio(), 15.0);
        println!(
            "{:>14}: bus utilisation {:>5.2}, efficiency {:>5.2}, {:>5.2} MLIPS",
            r.config.protocol.name(),
            eval.utilisation,
            eval.efficiency,
            eval.effective_mlips
        );
    }
    println!("\nbroadcast and hybrid caches keep the bus comfortable; the conventional");
    println!("write-through cache is the one the paper warns about.");
}
