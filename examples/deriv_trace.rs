//! Run the paper's `deriv` benchmark on 8 PEs, collect the memory-reference
//! trace, and feed it to the coherent-cache simulator — the full pipeline
//! behind Figure 4, on one benchmark and one configuration sweep.
//!
//! ```text
//! cargo run --release --example deriv_trace
//! ```

use pwam_suite::benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_suite::cachesim::{simulate, CacheConfig, Protocol, SimConfig};
use pwam_suite::rapwam::session::{QueryOptions, Session};

fn main() {
    let bench = benchmark(BenchmarkId::Deriv, Scale::Paper);
    println!("benchmark : deriv (symbolic differentiation)");
    println!("query     : {} characters of input expression", bench.query.len());

    // Run on 8 PEs with trace collection enabled.
    let mut session = Session::new(&bench.program).expect("program parses");
    let options = QueryOptions::parallel(8).with_trace();
    let result = session.run(&bench.query, &options).expect("deriv runs");
    let trace = result.trace.expect("trace collected");

    println!(
        "execution : {} instructions, {} references, {} goals run on another PE",
        result.stats.instructions, result.stats.data_refs, result.stats.goals_actually_parallel
    );
    println!(
        "            global (shared) references: {:.1}%",
        100.0 * result.stats.area_stats.global_fraction()
    );

    // Sweep the three coherency schemes of the paper over the trace.
    println!("\ncache simulation (4-word lines, 8 PEs):");
    println!("{:>10} {:>12} {:>12} {:>12}", "size", "broadcast", "hybrid", "write-thru");
    for size in [64u32, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let mut row = format!("{size:>10}");
        for protocol in [Protocol::WriteInBroadcast, Protocol::Hybrid, Protocol::WriteThrough] {
            let config = SimConfig { cache: CacheConfig::paper_policy(size, protocol), protocol, num_pes: 8 };
            let tr = simulate(&config, &trace).traffic_ratio();
            row.push_str(&format!(" {tr:>12.3}"));
        }
        println!("{row}");
    }
    println!("\n(the paper's Figure 4 averages this over all four benchmarks —");
    println!(" run `cargo run --release -p pwam-bench --bin figure4` for the full figure)");
}
