//! Start a `pwam_server` in-process, run a few queries through the wire
//! protocol, and print the pool/cache statistics — the smallest complete
//! tour of the serving subsystem.
//!
//! ```text
//! cargo run --release --example server_roundtrip
//! ```

use pwam_suite::benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_suite::server::{Client, PoolConfig, QueryRequest, Response, Server, ServerConfig};

fn main() {
    // A single-slot pool makes the warm-engine reuse deterministic: every
    // request lands on the same slot, so run 2 recycles run 1's arenas.
    let config =
        ServerConfig { pool: PoolConfig { size: 1, ..PoolConfig::default() }, ..ServerConfig::default() };
    let server = Server::start(config).expect("bind an ephemeral port");
    println!("server listening on {}", server.addr());
    let mut client = Client::connect(server.addr()).expect("connect");

    // A hand-written program, run twice: the second run reuses the warm
    // engine (the pool recycles the arenas) and the cached compilation.
    let app = QueryRequest {
        program: "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).".to_string(),
        query: "app([1,2], [3,4], X)".to_string(),
        workers: 2,
        ..QueryRequest::default()
    };
    for round in 1..=2 {
        match client.query(app.clone()).expect("query") {
            Response::Answer(a) => println!(
                "round {round}: {} = {}  (warm engine: {}, {} instructions)",
                a.bindings[0].0, a.bindings[0].1, a.warm, a.instructions
            ),
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Registry benchmarks over the same connection.
    for id in [BenchmarkId::Deriv, BenchmarkId::Queens] {
        let b = benchmark(id, Scale::Small);
        let response = client
            .query(QueryRequest {
                program: b.program.clone(),
                query: b.query.clone(),
                workers: 4,
                ..QueryRequest::default()
            })
            .expect("benchmark query");
        match response {
            Response::Answer(a) => println!(
                "{}: success={} parcalls={} elapsed={}us",
                id.name(),
                a.success,
                a.parcalls,
                a.elapsed_us
            ),
            other => panic!("unexpected response {other:?}"),
        }
    }

    println!("\nserver statistics:");
    for (key, value) in client.stats().expect("stats").fields {
        println!("  {key:<24} {value}");
    }
    server.shutdown();
}
