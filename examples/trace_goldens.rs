//! Regenerate the golden trace fingerprints pinned by
//! `crates/benchmarks/tests/scheduler_differential.rs`.
//!
//! Run after any *intentional* change to the reference trace (compilation
//! scheme, frame layouts, protocol reads/writes) and paste the printed rows
//! into the golden table — but only once the answer/count equalities of the
//! rest of the differential suite have validated the change's semantics:
//!
//! ```text
//! cargo run --release --example trace_goldens
//! ```

use pwam_benchmarks::{benchmark, run_benchmark_with_session, BenchmarkId, Scale};
use rapwam::session::QueryOptions;
use rapwam::{MemRef, ObjectKind};

/// FNV-1a over every field of every reference, in trace order (identical to
/// the differential suite's fingerprint).
fn fingerprint(trace: &[MemRef]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in trace {
        mix(r.pe);
        for b in r.addr.to_le_bytes() {
            mix(b);
        }
        mix(r.write as u8);
        mix(r.area.index() as u8);
        mix(ObjectKind::ALL.iter().position(|o| *o == r.object).unwrap() as u8);
        mix(matches!(r.locality, rapwam::Locality::Global) as u8);
        mix(r.locked as u8);
    }
    h
}

fn main() {
    let goldens = [
        (BenchmarkId::Deriv, 1),
        (BenchmarkId::Deriv, 2),
        (BenchmarkId::Deriv, 4),
        (BenchmarkId::Qsort, 1),
        (BenchmarkId::Qsort, 2),
        (BenchmarkId::Qsort, 4),
    ];
    println!("// (benchmark, workers, trace length, fingerprint)");
    for (id, workers) in goldens {
        let b = benchmark(id, Scale::Small);
        let o = QueryOptions { trace: true, ..QueryOptions::parallel(workers) };
        let (_, r) = run_benchmark_with_session(&b, &o).expect("benchmark runs");
        let t = r.trace.expect("trace requested");
        println!("(BenchmarkId::{id:?}, {workers}, {len}, {fp:#018x}),", len = t.len(), fp = fingerprint(&t));
    }
}
