//! Measure how the four benchmarks speed up as PEs are added — the
//! behaviour behind the paper's Figure 2 and its "walk before you run"
//! argument for small-to-medium shared-memory machines.
//!
//! ```text
//! cargo run --release --example parallel_speedup [-- --threaded]
//! ```
//!
//! With `--threaded` every PE runs on its own OS thread (the Threaded
//! scheduler); the measured cycle counts are identical to the default
//! interleaved backend — that equivalence is pinned by the differential
//! test suite.

use pwam_suite::benchmarks::{all_benchmarks, Scale};
use pwam_suite::rapwam::session::{QueryOptions, Session};
use pwam_suite::rapwam::SchedulerKind;

fn main() {
    let scheduler = if std::env::args().any(|a| a == "--threaded") {
        SchedulerKind::Threaded
    } else {
        SchedulerKind::Interleaved
    };
    let pe_counts = [1usize, 2, 4, 8, 16];
    println!(
        "speed-up over the sequential WAM (elapsed-cycle ratio), Scale::Paper inputs, {} backend\n",
        scheduler.name()
    );
    println!("{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}", "benchmark", "1 PE", "2 PE", "4 PE", "8 PE", "16 PE");

    for bench in all_benchmarks(Scale::Paper) {
        let mut session = Session::new(&bench.program).expect("program parses");
        let seq = session.run(&bench.query, &QueryOptions::sequential()).expect("sequential run");
        let base = seq.stats.elapsed_cycles as f64;

        let mut row = format!("{:>10}", bench.id.name());
        for &pes in &pe_counts {
            let opts = QueryOptions::parallel(pes).with_scheduler(scheduler);
            let par = session.run(&bench.query, &opts).expect("parallel run");
            assert!(par.outcome.is_success());
            row.push_str(&format!(" {:>8.2}", base / par.stats.elapsed_cycles as f64));
        }
        println!("{row}");
    }

    println!("\nmatrix (coarse grain) scales best; deriv/tak/qsort show the medium");
    println!("parallelism the paper targets; all answers are identical to the WAM's.");
}
