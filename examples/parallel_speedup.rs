//! Measure how the benchmarks speed up as PEs are added — the behaviour
//! behind the paper's Figure 2 — in both senses the suite supports:
//!
//! 1. **Emulated speedup** (elapsed-cycle ratio): the paper's own metric,
//!    identical on the interleaved and strict-threaded backends because the
//!    strict backends reproduce one reference interleaving.
//! 2. **Wall-clock speedup** (relaxed determinism): the `Threaded` backend
//!    with `DeterminismMode::Relaxed` retires the scheduling token, so every
//!    PE free-runs on its own OS thread over its own Stack Set arena and
//!    `--threads N` finally buys real time.  Answers are identical to the
//!    strict backends; only scheduling placement and trace interleaving are
//!    racy.
//!
//! ```text
//! cargo run --release --example parallel_speedup [-- --threaded] [--skip-emulated]
//! ```
//!
//! With `--threaded` the emulated section runs on the strict token-ring
//! backend (same cycles, pinned by the differential suite).  Wall-clock
//! speedup beyond 1.0x needs actual hardware parallelism: the example
//! prints the host's available parallelism and, on a single-core host,
//! still shows the relaxed backend's throughput win over the emulator.

use pwam_suite::benchmarks::{all_benchmarks, benchmark, BenchmarkId, Scale};
use pwam_suite::rapwam::session::{QueryOptions, Session};
use pwam_suite::rapwam::SchedulerKind;
use std::time::{Duration, Instant};

/// Best-of-three wall-clock time for one run.
fn time_run(session: &mut Session, query: &str, opts: &QueryOptions) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = session.run(query, opts).expect("run");
        assert!(r.outcome.is_success());
        best = best.min(t0.elapsed());
    }
    best
}

fn emulated_section(scheduler: SchedulerKind) {
    let pe_counts = [1usize, 2, 4, 8, 16];
    println!(
        "emulated speed-up over the sequential WAM (elapsed-cycle ratio), Scale::Paper inputs, {} backend\n",
        scheduler.name()
    );
    println!("{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}", "benchmark", "1 PE", "2 PE", "4 PE", "8 PE", "16 PE");

    for bench in all_benchmarks(Scale::Paper) {
        let mut session = Session::new(&bench.program).expect("program parses");
        let seq = session.run(&bench.query, &QueryOptions::sequential()).expect("sequential run");
        let base = seq.stats.elapsed_cycles as f64;

        let mut row = format!("{:>10}", bench.id.name());
        for &pes in &pe_counts {
            let opts = QueryOptions::parallel(pes).with_scheduler(scheduler);
            let par = session.run(&bench.query, &opts).expect("parallel run");
            assert!(par.outcome.is_success());
            row.push_str(&format!(" {:>8.2}", base / par.stats.elapsed_cycles as f64));
        }
        println!("{row}");
    }
    println!();
}

fn wall_clock_section() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let pe_counts = [1usize, 2, 4, 8];
    println!("wall-clock timing, relaxed determinism (free-running OS threads), Scale::Paper inputs");
    println!("host parallelism: {cores} core(s) available\n");
    println!(
        "{:>10} {:>14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "interleaved 1", "relaxed 1", "2 thr", "4 thr", "8 thr", "best x"
    );

    for id in [BenchmarkId::Tak, BenchmarkId::Boyer] {
        let bench = benchmark(id, Scale::Paper);
        let mut session = Session::new(&bench.program).expect("program parses");
        let interleaved = time_run(&mut session, &bench.query, &QueryOptions::parallel(1));
        let mut row = format!("{:>10} {:>13.1?}", id.name(), interleaved);
        let mut base = Duration::MAX;
        let mut best = Duration::MAX;
        for &pes in &pe_counts {
            let t = time_run(&mut session, &bench.query, &QueryOptions::relaxed(pes));
            if pes == 1 {
                base = t;
            }
            best = best.min(t);
            row.push_str(&format!(" {:>9.1?}", t));
        }
        row.push_str(&format!(" {:>9.2}", base.as_secs_f64() / best.as_secs_f64()));
        println!("{row}");
    }

    println!();
    if cores < 2 {
        println!("note: this host exposes a single core, so adding threads cannot reduce");
        println!("wall time — the relaxed backend still beats the interleaved emulator by");
        println!("retiring the token and the per-instruction round bookkeeping.  Re-run on");
        println!("a multi-core host to see >1x in the `best x` column.");
    } else {
        println!("`best x` is the speedup of the fastest relaxed thread count over 1 thread;");
        println!("tak/boyer expose medium-grain AND-parallelism, so expect >1x on 4+ threads.");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scheduler = if args.iter().any(|a| a == "--threaded") {
        SchedulerKind::Threaded
    } else {
        SchedulerKind::Interleaved
    };
    if !args.iter().any(|a| a == "--skip-emulated") {
        emulated_section(scheduler);
        println!("matrix (coarse grain) scales best; deriv/tak/qsort show the medium");
        println!("parallelism the paper targets; all answers are identical to the WAM's.\n");
    }
    wall_clock_section();
}
