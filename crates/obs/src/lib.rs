//! Lock-free metrics plane for the RAP-WAM serving stack.
//!
//! The source paper's whole methodology is measurement, and a serving tier
//! needs the same discipline at runtime: this crate is the registry behind
//! the server's `metrics` verb.  It is deliberately dependency-free (the
//! build environment has no crates.io access) and deliberately small:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`.
//! * [`Gauge`] — a settable `AtomicU64` snapshot value.
//! * [`Histogram`] — fixed-bucket log₂ latency histogram: bucket `i` counts
//!   observations `v` with `v <= 2^i` (cumulative rendering follows the
//!   Prometheus `le` convention).  Observation is two relaxed atomic adds
//!   and a `leading_zeros`; there is no allocation and no locking.
//! * [`CounterVec`] — a labelled family of counters (one label key, dynamic
//!   label values), used for per-PE scheduler telemetry and per-predicate
//!   instruction attribution.
//! * [`Registry`] — owns the families in registration order and renders
//!   Prometheus-style text exposition.
//!
//! Hot paths never talk to the registry: the engine accumulates
//! worker-local counts (flushed batch-locally like its `RefDelta` reference
//! accounting) and the server folds finished-run statistics into these
//! atomics once per query.  The registry lock is only taken to register a
//! family, to materialise a new label value, and to render.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets.  Upper bounds are `2^0 .. 2^30`;
/// everything above the last finite bound lands in the `+Inf` bucket.  With
/// microsecond observations the finite range tops out around 18 minutes,
/// far beyond any server deadline.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.  All updates are relaxed atomic
/// adds; totals are exact because `fetch_add` never loses increments.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the total.  For counters that *mirror* an external
    /// monotonic source (another subsystem's atomic) rather than being the
    /// source of truth themselves: the owner copies the upstream value in
    /// immediately before rendering.
    pub fn store(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A snapshot value: unlike a counter it can move down.  The serving layer
/// sets pool/cursor gauges from their owning structures immediately before
/// rendering, so a gauge is just a published `u64`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a new value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log₂ histogram.
///
/// Bucket `i` (for `i < HISTOGRAM_BUCKETS - 1`) covers observations with
/// `v <= 2^i`; the final bucket is `+Inf`.  Buckets are stored
/// non-cumulatively and summed at render time, so `observe` touches exactly
/// one bucket plus the `sum`/`count` pair — three relaxed `fetch_add`s.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index an observation falls into: the smallest `i` with
    /// `v <= 2^i`, capped at the `+Inf` bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        // ceil(log2(v)) for v >= 1; 0 and 1 both land in the first bucket.
        let i = (64 - v.saturating_sub(1).leading_zeros()) as usize;
        i.min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of finite bucket `i` (`2^i`).
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The upper bound (in observed units) of the bucket containing the
    /// `p`-th percentile observation (`p` in `0..=100`), or `None` if the
    /// histogram is empty.  The final bucket reports the last finite bound.
    ///
    /// Log₂ buckets bound any percentile to within a factor of two, which
    /// is exactly the resolution the load generator's cross-check needs.
    pub fn percentile_bound(&self, p: f64) -> Option<u64> {
        percentile_bound_of(&self.bucket_counts(), p)
    }
}

/// The percentile logic shared by [`Histogram::percentile_bound`] and
/// [`ParsedHistogram::percentile_bound`]: the bound of the bucket holding
/// the `p`-th percentile of the (non-cumulative) `counts`.
fn percentile_bound_of(counts: &[u64], p: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(Histogram::bucket_bound(i.min(HISTOGRAM_BUCKETS - 2)));
        }
    }
    Some(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 2))
}

/// A labelled family of counters sharing one label key.  Label values are
/// materialised on first use; the internal map is only locked to look a
/// handle up, never while counting (callers hold the returned `Arc`).
#[derive(Debug)]
pub struct CounterVec {
    label: &'static str,
    series: Mutex<HashMap<String, Arc<Counter>>>,
}

impl CounterVec {
    pub fn new(label: &'static str) -> Self {
        Self { label, series: Mutex::new(HashMap::new()) }
    }

    /// The label key this family varies over.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The counter for `value`, created at zero on first use.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut series = self.series.lock().unwrap();
        if let Some(c) = series.get(value) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        series.insert(value.to_string(), Arc::clone(&c));
        c
    }

    /// Convenience: add `n` to the counter for `value`.
    pub fn add(&self, value: &str, n: u64) {
        self.with(value).add(n);
    }

    /// Snapshot of all `(label value, total)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let series = self.series.lock().unwrap();
        let mut out: Vec<(String, u64)> = series.iter().map(|(k, v)| (k.clone(), v.get())).collect();
        out.sort();
        out
    }
}

/// A labelled family of gauges sharing one label key — the gauge analogue
/// of [`CounterVec`], used for per-tenant in-flight query gauges.  Unlike a
/// counter family, a gauge family can *forget* label values ([`GaugeVec::
/// retain`]): a tenant that has gone idle should drop out of the
/// exposition rather than exporting a stale `0` forever.
#[derive(Debug)]
pub struct GaugeVec {
    label: &'static str,
    series: Mutex<HashMap<String, Arc<Gauge>>>,
}

impl GaugeVec {
    pub fn new(label: &'static str) -> Self {
        Self { label, series: Mutex::new(HashMap::new()) }
    }

    /// The label key this family varies over.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The gauge for `value`, created at zero on first use.
    pub fn with(&self, value: &str) -> Arc<Gauge> {
        let mut series = self.series.lock().unwrap();
        if let Some(g) = series.get(value) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        series.insert(value.to_string(), Arc::clone(&g));
        g
    }

    /// Convenience: publish `v` as the gauge for `value`.
    pub fn set(&self, value: &str, v: u64) {
        self.with(value).set(v);
    }

    /// Replace the whole family with `entries` (label values absent from
    /// `entries` are dropped).  The owner calls this immediately before
    /// rendering, mirroring whatever structure holds the truth.
    pub fn replace(&self, entries: impl IntoIterator<Item = (String, u64)>) {
        let mut series = self.series.lock().unwrap();
        series.clear();
        for (value, v) in entries {
            let g = Arc::new(Gauge::new());
            g.set(v);
            series.insert(value, g);
        }
    }

    /// Snapshot of all `(label value, value)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let series = self.series.lock().unwrap();
        let mut out: Vec<(String, u64)> = series.iter().map(|(k, v)| (k.clone(), v.get())).collect();
        out.sort();
        out
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterVec(Arc<CounterVec>),
    GaugeVec(Arc<GaugeVec>),
}

struct Family {
    name: &'static str,
    help: &'static str,
    series: Series,
}

impl Family {
    fn kind(&self) -> &'static str {
        match self.series {
            Series::Counter(_) | Series::CounterVec(_) => "counter",
            Series::Gauge(_) | Series::GaugeVec(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// The metric registry: families in registration order, rendered as
/// Prometheus-style text exposition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register and return a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, Series::Counter(Arc::clone(&c)));
        c
    }

    /// Register and return a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, Series::Gauge(Arc::clone(&g)));
        g
    }

    /// Register and return a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, Series::Histogram(Arc::clone(&h)));
        h
    }

    /// Register and return a labelled counter family.
    pub fn counter_vec(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
    ) -> Arc<CounterVec> {
        let v = Arc::new(CounterVec::new(label));
        self.push(name, help, Series::CounterVec(Arc::clone(&v)));
        v
    }

    /// Register and return a labelled gauge family.
    pub fn gauge_vec(&self, name: &'static str, help: &'static str, label: &'static str) -> Arc<GaugeVec> {
        let v = Arc::new(GaugeVec::new(label));
        self.push(name, help, Series::GaugeVec(Arc::clone(&v)));
        v
    }

    fn push(&self, name: &'static str, help: &'static str, series: Series) {
        let mut families = self.families.lock().unwrap();
        debug_assert!(!families.iter().any(|f| f.name == name), "metric {name} registered twice");
        families.push(Family { name, help, series });
    }

    /// Render the whole registry as Prometheus-style text exposition:
    /// `# HELP` / `# TYPE` headers per family, `_bucket{le=...}` /
    /// `_sum` / `_count` triples for histograms, one line per label value
    /// for counter families, families in registration order.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind());
            match &f.series {
                Series::Counter(c) => {
                    let _ = writeln!(out, "{} {}", f.name, c.get());
                }
                Series::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", f.name, g.get());
                }
                Series::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cumulative += c;
                        if i == HISTOGRAM_BUCKETS - 1 {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", f.name, cumulative);
                        } else {
                            let _ = writeln!(
                                out,
                                "{}_bucket{{le=\"{}\"}} {}",
                                f.name,
                                Histogram::bucket_bound(i),
                                cumulative
                            );
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", f.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", f.name, h.count());
                }
                Series::CounterVec(v) => {
                    for (value, total) in v.snapshot() {
                        let _ = writeln!(
                            out,
                            "{}{{{}=\"{}\"}} {}",
                            f.name,
                            v.label(),
                            escape_label_value(&value),
                            total
                        );
                    }
                }
                Series::GaugeVec(v) => {
                    for (value, current) in v.snapshot() {
                        let _ = writeln!(
                            out,
                            "{}{{{}=\"{}\"}} {}",
                            f.name,
                            v.label(),
                            escape_label_value(&value),
                            current
                        );
                    }
                }
            }
        }
        out
    }
}

/// Escape a label value for exposition: backslash, double quote, newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Parse one series value back out of rendered exposition text: the first
/// sample line whose name-plus-labels prefix matches `series` exactly.
/// This is what the load generator and CI smoke checks use to cross-check
/// server-side numbers without a Prometheus client library.
pub fn parse_sample(text: &str, series: &str) -> Option<u64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ')?;
        if name == series {
            return value.parse().ok();
        }
    }
    None
}

/// Sum every sample of `family{label=...}` across label values (ignores
/// `# HELP`/`# TYPE` lines).  Used to assert "some PE stole work" without
/// caring which one.
pub fn sum_family(text: &str, family: &str) -> u64 {
    let prefix = format!("{family}{{");
    let mut total = 0u64;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else { continue };
        if name == family || name.starts_with(&prefix) {
            total += value.parse::<u64>().unwrap_or(0);
        }
    }
    total
}

/// One histogram family parsed back out of an exposition: per-bucket
/// (non-cumulative) counts in the same layout a live [`Histogram`] keeps,
/// so a scraper can difference two scrapes and ask percentile questions of
/// the window between them.
#[derive(Debug, Clone, Default)]
pub struct ParsedHistogram {
    /// Non-cumulative per-bucket counts, `HISTOGRAM_BUCKETS` long.
    pub counts: Vec<u64>,
    /// The family's `_sum` sample.
    pub sum: u64,
    /// The family's `_count` sample.
    pub count: u64,
}

impl ParsedHistogram {
    /// The observations this scrape saw that an `earlier` scrape of the
    /// same family had not (bucket-wise saturating difference).
    pub fn since(&self, earlier: &ParsedHistogram) -> ParsedHistogram {
        ParsedHistogram {
            counts: self
                .counts
                .iter()
                .zip(earlier.counts.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// The bucket bound holding the `p`-th percentile (`p` in `0..=100`),
    /// or `None` if no observations.  Same semantics as
    /// [`Histogram::percentile_bound`].
    pub fn percentile_bound(&self, p: f64) -> Option<u64> {
        percentile_bound_of(&self.counts, p)
    }
}

/// Parse one histogram family out of an exposition produced by
/// [`Registry::render`].  Returns `None` when the family (or any expected
/// sample) is missing.  Cumulative `_bucket` samples are converted back to
/// the per-bucket counts [`ParsedHistogram`] holds.
pub fn parse_histogram(text: &str, family: &str) -> Option<ParsedHistogram> {
    let mut cumulative = vec![None; HISTOGRAM_BUCKETS];
    let prefix = format!("{family}_bucket{{le=\"");
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let (le, value) = rest.split_once("\"} ")?;
        let idx = if le == "+Inf" {
            HISTOGRAM_BUCKETS - 1
        } else {
            let bound: u64 = le.parse().ok()?;
            if !bound.is_power_of_two() {
                return None;
            }
            (bound.trailing_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        cumulative[idx] = Some(value.parse::<u64>().ok()?);
    }
    let mut counts = Vec::with_capacity(HISTOGRAM_BUCKETS);
    let mut prev = 0u64;
    for c in cumulative {
        let c = c?;
        counts.push(c.saturating_sub(prev));
        prev = c;
    }
    Some(ParsedHistogram {
        counts,
        sum: parse_sample(text, &format!("{family}_sum"))?,
        count: parse_sample(text, &format!("{family}_count"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_round_trips_through_the_exposition() {
        let registry = Registry::new();
        let h = registry.histogram("rt_us", "round-trip test");
        for v in [1, 3, 3, 100, 5000] {
            h.observe(v);
        }
        let parsed = parse_histogram(&registry.render(), "rt_us").expect("family present");
        assert_eq!(parsed.counts, h.bucket_counts().to_vec());
        assert_eq!(parsed.sum, h.sum());
        assert_eq!(parsed.count, h.count());
        assert_eq!(parsed.percentile_bound(50.0), h.percentile_bound(50.0));
        assert_eq!(parsed.percentile_bound(99.0), h.percentile_bound(99.0));
        // A window delta against an earlier scrape isolates the new
        // observations.
        let earlier = parsed.clone();
        h.observe(1 << 20);
        let later = parse_histogram(&registry.render(), "rt_us").unwrap();
        let window = later.since(&earlier);
        assert_eq!(window.count, 1);
        assert_eq!(window.percentile_bound(50.0), Some(1 << 20));
        assert!(parse_histogram(&registry.render(), "absent_us").is_none());
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let h = Histogram::new();
        assert_eq!(h.percentile_bound(50.0), None);
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        // p50 of {1,2,3,100,1000}: rank 3 → value 3 → bucket le=4.
        assert_eq!(h.percentile_bound(50.0), Some(4));
        // p99: rank 5 → value 1000 → bucket le=1024.
        assert_eq!(h.percentile_bound(99.0), Some(1024));
    }

    #[test]
    fn vec_materialises_on_first_use() {
        let v = CounterVec::new("pe");
        v.add("1", 2);
        v.add("0", 1);
        v.with("1").inc();
        assert_eq!(v.snapshot(), vec![("0".to_string(), 1), ("1".to_string(), 3)]);
    }

    #[test]
    fn gauge_vec_replaces_and_renders() {
        let r = Registry::new();
        let v = r.gauge_vec("tenants_active", "Active queries per tenant.", "tenant");
        v.set("a", 2);
        v.set("b", 1);
        assert_eq!(v.snapshot(), vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        // `replace` mirrors the owning structure exactly: the idle tenant
        // `b` disappears from the exposition instead of exporting 0.
        v.replace(vec![("a".to_string(), 3)]);
        let text = r.render();
        assert_eq!(parse_sample(&text, "tenants_active{tenant=\"a\"}"), Some(3));
        assert_eq!(parse_sample(&text, "tenants_active{tenant=\"b\"}"), None);
        assert!(text.contains("# TYPE tenants_active gauge"), "{text}");
    }

    #[test]
    fn parse_sample_reads_rendered_text() {
        let r = Registry::new();
        let c = r.counter("x_total", "X.");
        c.add(5);
        let v = r.counter_vec("y_total", "Y.", "pe");
        v.add("0", 2);
        v.add("1", 3);
        let text = r.render();
        assert_eq!(parse_sample(&text, "x_total"), Some(5));
        assert_eq!(parse_sample(&text, "y_total{pe=\"1\"}"), Some(3));
        assert_eq!(sum_family(&text, "y_total"), 5);
        assert_eq!(parse_sample(&text, "missing"), None);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
