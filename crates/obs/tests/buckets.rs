//! Histogram bucket-boundary properties.  The bucket map is pure
//! (`Histogram::bucket_index`), so the properties are checked exhaustively
//! at every power-of-two boundary and over a deterministic pseudo-random
//! sweep of the full `u64` range (hand-rolled LCG — this crate takes no
//! dependencies, dev or otherwise).

use pwam_obs::{Histogram, HISTOGRAM_BUCKETS};

/// The invariant behind the Prometheus `le` convention: an observation
/// lands in the smallest bucket whose inclusive upper bound admits it.
fn assert_bucket_invariants(v: u64) {
    let i = Histogram::bucket_index(v);
    assert!(i < HISTOGRAM_BUCKETS, "index out of range for {v}");
    if i < HISTOGRAM_BUCKETS - 1 {
        assert!(v <= Histogram::bucket_bound(i), "{v} exceeds its bucket bound 2^{i}");
    } else {
        // +Inf bucket: the value must overflow every finite bound.
        assert!(v > Histogram::bucket_bound(HISTOGRAM_BUCKETS - 2));
    }
    if i > 0 {
        assert!(v > Histogram::bucket_bound(i - 1), "{v} should have fit in the previous bucket (index {i})");
    }
}

#[test]
fn zero_and_one_share_the_first_bucket() {
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_index(1), 0);
    assert_eq!(Histogram::bucket_index(2), 1);
}

#[test]
fn every_power_of_two_boundary_is_tight() {
    for k in 0..64u32 {
        let b = 1u64 << k;
        assert_bucket_invariants(b);
        assert_bucket_invariants(b.saturating_sub(1));
        assert_bucket_invariants(b.saturating_add(1));
        if k < (HISTOGRAM_BUCKETS - 1) as u32 {
            // 2^k sits exactly on bucket k's inclusive bound...
            assert_eq!(Histogram::bucket_index(b), k as usize);
            // ...and 2^k + 1 spills into the next bucket.
            let next = (k as usize + 1).min(HISTOGRAM_BUCKETS - 1);
            assert_eq!(Histogram::bucket_index(b + 1), next);
        } else {
            assert_eq!(Histogram::bucket_index(b), HISTOGRAM_BUCKETS - 1);
        }
    }
    assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
}

#[test]
fn random_sweep_holds_the_invariants() {
    // Deterministic 64-bit LCG (Knuth's MMIX constants).
    let mut state: u64 = 0x9E3779B97F4A7C15;
    for _ in 0..200_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Vary magnitude: shift by the top bits so small values are hit too.
        let v = state >> (state >> 58);
        assert_bucket_invariants(v);
    }
}

#[test]
fn observations_land_where_the_index_says() {
    let h = Histogram::new();
    let values = [0u64, 1, 2, 3, 4, 5, 1023, 1024, 1025, u64::MAX];
    for &v in &values {
        h.observe(v);
    }
    let counts = h.bucket_counts();
    let mut expected = [0u64; HISTOGRAM_BUCKETS];
    for &v in &values {
        expected[Histogram::bucket_index(v)] += 1;
    }
    assert_eq!(counts, expected);
    assert_eq!(h.count(), values.len() as u64);
}
