//! Concurrent hammering: totals must be exact, not approximate.  Eight
//! threads per metric (the serving tier's default pool width times two)
//! update shared handles; relaxed atomics may reorder but `fetch_add`
//! cannot lose updates, so every assertion is an equality.

use pwam_obs::{Counter, CounterVec, Histogram, Registry};
use std::sync::Arc;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 100_000;

#[test]
fn counter_hammer_is_exact() {
    let c = Arc::new(Counter::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
}

#[test]
fn histogram_hammer_is_exact() {
    let h = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across many buckets.
                    h.observe((t * PER_THREAD + i) % 5000);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    // Every thread observes the same residue multiset, so the sum is
    // THREADS times the closed-form sum of 0..PER_THREAD taken mod 5000.
    let one_thread: u64 = (0..PER_THREAD).map(|i| i % 5000).sum();
    assert_eq!(h.sum(), THREADS * one_thread);
    let buckets = h.bucket_counts();
    assert_eq!(buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
}

#[test]
fn counter_vec_hammer_is_exact() {
    let v = Arc::new(CounterVec::new("pe"));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let v = Arc::clone(&v);
            s.spawn(move || {
                let label = (t % 4).to_string();
                let c = v.with(&label);
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    let snapshot = v.snapshot();
    assert_eq!(snapshot.len(), 4);
    for (_, total) in &snapshot {
        assert_eq!(*total, 2 * PER_THREAD);
    }
}

#[test]
fn render_is_safe_during_updates() {
    let r = Arc::new(Registry::new());
    let c = r.counter("spin_total", "Updated while rendering.");
    std::thread::scope(|s| {
        let writer = {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        };
        for _ in 0..100 {
            let text = r.render();
            assert!(text.contains("spin_total"));
        }
        writer.join().unwrap();
    });
    assert_eq!(c.get(), PER_THREAD);
}
