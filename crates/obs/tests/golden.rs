//! Golden test pinning the exposition text format byte for byte.  The
//! `metrics` verb's output is scraped by `pwam-load`, the CI smoke job,
//! and (in spirit) any Prometheus-compatible collector: format drift is a
//! breaking change and must show up as a diff here.

use pwam_obs::Registry;

#[test]
fn exposition_format_is_pinned() {
    let r = Registry::new();
    let queries = r.counter("pwam_queries_total", "Queries served.");
    queries.add(3);
    let busy = r.gauge("pwam_pool_busy_slots", "Engine slots in use.");
    busy.set(2);
    let lat = r.histogram("pwam_query_execute_us", "Engine execute leg.");
    lat.observe(1);
    lat.observe(5);
    let steals = r.counter_vec("pwam_pe_steals_total", "Goals stolen per PE.", "pe");
    steals.add("0", 4);
    steals.add("1", 1);

    let mut expected = String::new();
    expected.push_str("# HELP pwam_queries_total Queries served.\n");
    expected.push_str("# TYPE pwam_queries_total counter\n");
    expected.push_str("pwam_queries_total 3\n");
    expected.push_str("# HELP pwam_pool_busy_slots Engine slots in use.\n");
    expected.push_str("# TYPE pwam_pool_busy_slots gauge\n");
    expected.push_str("pwam_pool_busy_slots 2\n");
    expected.push_str("# HELP pwam_query_execute_us Engine execute leg.\n");
    expected.push_str("# TYPE pwam_query_execute_us histogram\n");
    // log2 buckets: le = 2^0 .. 2^30, then +Inf.  The observations 1 and 5
    // make the cumulative counts 1 up to le="4" and 2 from le="8" on.
    for i in 0..31u32 {
        let cumulative = if i < 3 { 1 } else { 2 };
        expected.push_str(&format!("pwam_query_execute_us_bucket{{le=\"{}\"}} {}\n", 1u64 << i, cumulative));
    }
    expected.push_str("pwam_query_execute_us_bucket{le=\"+Inf\"} 2\n");
    expected.push_str("pwam_query_execute_us_sum 6\n");
    expected.push_str("pwam_query_execute_us_count 2\n");
    expected.push_str("# HELP pwam_pe_steals_total Goals stolen per PE.\n");
    expected.push_str("# TYPE pwam_pe_steals_total counter\n");
    expected.push_str("pwam_pe_steals_total{pe=\"0\"} 4\n");
    expected.push_str("pwam_pe_steals_total{pe=\"1\"} 1\n");

    assert_eq!(r.render(), expected);
}
