//! Pretty printer for source terms, clauses and programs.
//!
//! The printer produces text that the parser reads back to an equal term
//! (operator notation for the standard operators, bracket notation for
//! lists, quoting where necessary).  This round-trip property is checked by
//! property-based tests in `tests/roundtrip.rs` of this crate.

use crate::atoms::SymbolTable;
use crate::clause::{Body, CgeCondition, Clause, Goal, Program};
use crate::term::Term;

/// Associativity classes used when printing operator terms.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fix {
    Xfx,
    Xfy,
    Yfx,
}

fn infix_op(name: &str) -> Option<(u16, Fix)> {
    use Fix::*;
    Some(match name {
        ":-" => (1200, Xfx),
        ";" => (1100, Xfy),
        "|" => (1100, Xfy),
        "->" => (1050, Xfy),
        "&" => (1025, Xfy),
        "," => (1000, Xfy),
        "=" | "\\=" | "==" | "\\==" | "is" | "=:=" | "=\\=" | "<" | ">" | "=<" | ">=" | "@<" | "@>"
        | "@=<" | "@>=" | "=.." => (700, Xfx),
        "+" | "-" => (500, Yfx),
        "*" | "/" | "//" | "mod" | "rem" => (400, Yfx),
        "^" => (200, Xfy),
        _ => return None,
    })
}

/// True if the atom text needs quoting to be read back as a single atom.
fn needs_quotes(name: &str) -> bool {
    if name.is_empty() {
        return true;
    }
    if name == "[]" || name == "!" || name == ";" || name == "." {
        return false;
    }
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    if first.is_lowercase() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return false;
    }
    // purely symbolic atoms do not need quotes
    let symbolic = |c: char| {
        matches!(
            c,
            '+' | '-'
                | '*'
                | '/'
                | '\\'
                | '^'
                | '<'
                | '>'
                | '='
                | '~'
                | ':'
                | '.'
                | '?'
                | '@'
                | '#'
                | '&'
                | '$'
        )
    };
    if name.chars().all(symbolic) {
        return false;
    }
    true
}

fn atom_text(name: &str) -> String {
    if needs_quotes(name) {
        format!("'{}'", name.replace('\'', "''"))
    } else {
        name.to_string()
    }
}

/// Render a term using operator and list notation.
pub fn term_to_string(term: &Term, syms: &SymbolTable) -> String {
    let mut s = String::new();
    write_term(&mut s, term, syms, 1200);
    s
}

fn write_term(out: &mut String, term: &Term, syms: &SymbolTable, max_prec: u16) {
    let wk = syms.well_known();
    match term {
        Term::Int(n) => out.push_str(&n.to_string()),
        Term::Var(v) => out.push_str(v),
        Term::Atom(a) => out.push_str(&atom_text(syms.name(*a))),
        Term::Struct(f, args) => {
            // List notation.
            if *f == wk.dot && args.len() == 2 {
                write_list(out, term, syms);
                return;
            }
            let name = syms.name(*f);
            if args.len() == 2 {
                if let Some((prec, fix)) = infix_op(name) {
                    let (lmax, rmax) = match fix {
                        Fix::Xfx => (prec - 1, prec - 1),
                        Fix::Xfy => (prec - 1, prec),
                        Fix::Yfx => (prec, prec - 1),
                    };
                    let need_parens = prec > max_prec;
                    if need_parens {
                        out.push('(');
                    }
                    write_term(out, &args[0], syms, lmax);
                    if name == "," {
                        out.push_str(", ");
                    } else if prec >= 700 {
                        out.push(' ');
                        out.push_str(name);
                        out.push(' ');
                    } else {
                        out.push_str(name);
                    }
                    write_term(out, &args[1], syms, rmax);
                    if need_parens {
                        out.push(')');
                    }
                    return;
                }
            }
            if args.len() == 1 && (name == "-" || name == "+" || name == "\\+") {
                let need_parens = 200 > max_prec;
                if need_parens {
                    out.push('(');
                }
                out.push_str(name);
                out.push(' ');
                write_term(out, &args[0], syms, 200);
                if need_parens {
                    out.push(')');
                }
                return;
            }
            // Canonical functional notation.
            out.push_str(&atom_text(name));
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_term(out, a, syms, 999);
            }
            out.push(')');
        }
    }
}

fn write_list(out: &mut String, term: &Term, syms: &SymbolTable) {
    let wk = syms.well_known();
    out.push('[');
    let mut cur = term;
    let mut first = true;
    loop {
        match cur {
            Term::Struct(f, args) if *f == wk.dot && args.len() == 2 => {
                if !first {
                    out.push(',');
                }
                write_term(out, &args[0], syms, 999);
                first = false;
                cur = &args[1];
            }
            Term::Atom(a) if *a == wk.nil => break,
            other => {
                out.push('|');
                write_term(out, other, syms, 999);
                break;
            }
        }
    }
    out.push(']');
}

/// Render a goal.
pub fn goal_to_string(goal: &Goal, syms: &SymbolTable) -> String {
    match goal {
        Goal::Call(t) => term_to_string(t, syms),
        Goal::Cut => "!".to_string(),
        Goal::Cge(cge) => {
            let conds: Vec<String> = cge
                .conditions
                .iter()
                .map(|c| match c {
                    CgeCondition::Ground(t) => format!("ground({})", term_to_string(t, syms)),
                    CgeCondition::Indep(a, b) => {
                        format!("indep({},{})", term_to_string(a, syms), term_to_string(b, syms))
                    }
                    CgeCondition::True => "true".to_string(),
                })
                .collect();
            let branches: Vec<String> = cge.branches.iter().map(|b| body_to_string(b, syms)).collect();
            if conds.is_empty() {
                format!("({})", branches.join(" & "))
            } else {
                format!("({} | {})", conds.join(", "), branches.join(" & "))
            }
        }
    }
}

/// Render a body as a comma-separated goal sequence.
pub fn body_to_string(body: &Body, syms: &SymbolTable) -> String {
    if body.goals.is_empty() {
        return "true".to_string();
    }
    body.goals.iter().map(|g| goal_to_string(g, syms)).collect::<Vec<_>>().join(", ")
}

/// Render a clause, terminated by a period.
pub fn clause_to_string(clause: &Clause, syms: &SymbolTable) -> String {
    if clause.body.goals.is_empty() {
        format!("{}.", term_to_string(&clause.head, syms))
    } else {
        format!("{} :- {}.", term_to_string(&clause.head, syms), body_to_string(&clause.body, syms))
    }
}

/// Render a whole program, one clause per line.
pub fn program_to_string(program: &Program, syms: &SymbolTable) -> String {
    program.clauses.iter().map(|c| clause_to_string(c, syms)).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_term};

    #[test]
    fn prints_lists() {
        let mut syms = SymbolTable::new();
        let t = parse_term("[1,2|T]", &mut syms).unwrap();
        assert_eq!(term_to_string(&t, &syms), "[1,2|T]");
    }

    #[test]
    fn prints_operators_with_minimal_parens() {
        let mut syms = SymbolTable::new();
        let t = parse_term("X is (A+B)*C", &mut syms).unwrap();
        assert_eq!(term_to_string(&t, &syms), "X is (A+B)*C");
    }

    #[test]
    fn quotes_atoms_when_needed() {
        let mut syms = SymbolTable::new();
        let t = parse_term("'Hello world'", &mut syms).unwrap();
        assert_eq!(term_to_string(&t, &syms), "'Hello world'");
    }

    #[test]
    fn clause_round_trip_text() {
        let mut syms = SymbolTable::new();
        let p = parse_program("f(X,Y) :- (ground(X) | g(X) & h(Y)).", &mut syms).unwrap();
        let printed = clause_to_string(&p.clauses[0], &syms);
        assert_eq!(printed, "f(X,Y) :- (ground(X) | g(X) & h(Y)).");
        // and it parses back to the same structure
        let p2 = parse_program(&printed, &mut syms).unwrap();
        assert_eq!(p.clauses[0], p2.clauses[0]);
    }

    #[test]
    fn program_to_string_is_reparsable() {
        let src = "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).";
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        let printed = program_to_string(&p, &syms);
        let p2 = parse_program(&printed, &mut syms).unwrap();
        assert_eq!(p.clauses, p2.clauses);
    }

    #[test]
    fn empty_body_prints_true() {
        let syms = SymbolTable::new();
        assert_eq!(body_to_string(&Body::empty(), &syms), "true");
    }
}
