//! Atom interning.
//!
//! Prolog programs mention the same functor names over and over (`'.'`, `[]`,
//! the arithmetic operators, the predicate names of the program).  Interning
//! them once gives the compiler and the abstract machine a cheap `u32` handle
//! that can be stored directly inside a tagged heap cell, exactly as the WAM
//! stores functor/atom indices.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned atom (constant or functor name).
///
/// The numeric value is an index into the owning [`SymbolTable`].  Atoms from
/// different symbol tables must not be mixed; in this code base a single
/// table is created per loaded program/session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Atom(pub u32);

impl Atom {
    /// Raw index of the atom in its symbol table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

/// Well-known atoms that are pre-interned in every [`SymbolTable`] so that the
/// compiler and engine can refer to them without lookups.
#[derive(Debug, Clone, Copy)]
pub struct WellKnown {
    /// `[]` — the empty list.
    pub nil: Atom,
    /// `'.'` — the list constructor functor.
    pub dot: Atom,
    /// `true`
    pub truth: Atom,
    /// `fail`
    pub fail: Atom,
    /// `','`
    pub comma: Atom,
    /// `'&'` — parallel conjunction.
    pub amp: Atom,
    /// `'|'` — CGE condition separator.
    pub bar: Atom,
    /// `':-'`
    pub neck: Atom,
    /// `'!'`
    pub cut: Atom,
    /// `ground`
    pub ground: Atom,
    /// `indep`
    pub indep: Atom,
    /// `is`
    pub is: Atom,
    /// `-` (minus, also unary)
    pub minus: Atom,
    /// `+`
    pub plus: Atom,
    /// `*`
    pub star: Atom,
    /// `/`
    pub slash: Atom,
    /// `mod`
    pub modulo: Atom,
    /// `//` integer division
    pub int_div: Atom,
}

/// A bidirectional name ↔ [`Atom`] mapping.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Atom>,
}

impl SymbolTable {
    /// Create a table with the well-known atoms pre-interned.
    pub fn new() -> Self {
        let mut t = SymbolTable { names: Vec::new(), index: HashMap::new() };
        // Keep this order in sync with `well_known`.
        for name in [
            "[]", ".", "true", "fail", ",", "&", "|", ":-", "!", "ground", "indep", "is", "-", "+", "*", "/",
            "mod", "//",
        ] {
            t.intern(name);
        }
        t
    }

    /// Handles for the pre-interned atoms.
    pub fn well_known(&self) -> WellKnown {
        WellKnown {
            nil: Atom(0),
            dot: Atom(1),
            truth: Atom(2),
            fail: Atom(3),
            comma: Atom(4),
            amp: Atom(5),
            bar: Atom(6),
            neck: Atom(7),
            cut: Atom(8),
            ground: Atom(9),
            indep: Atom(10),
            is: Atom(11),
            minus: Atom(12),
            plus: Atom(13),
            star: Atom(14),
            slash: Atom(15),
            modulo: Atom(16),
            int_div: Atom(17),
        }
    }

    /// Intern `name`, returning the existing handle if already present.
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&a) = self.index.get(name) {
            return a;
        }
        let a = Atom(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), a);
        a
    }

    /// Look up an already-interned atom without creating it.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.index.get(name).copied()
    }

    /// The textual name of an atom.  Panics if the atom does not belong to
    /// this table.
    pub fn name(&self, atom: Atom) -> &str {
        &self.names[atom.index()]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the table only contains the well-known atoms.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Atom, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Atom(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "foo");
    }

    #[test]
    fn distinct_names_get_distinct_atoms() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
    }

    #[test]
    fn well_known_atoms_resolve_to_their_names() {
        let t = SymbolTable::new();
        let wk = t.well_known();
        assert_eq!(t.name(wk.nil), "[]");
        assert_eq!(t.name(wk.dot), ".");
        assert_eq!(t.name(wk.cut), "!");
        assert_eq!(t.name(wk.indep), "indep");
        assert_eq!(t.name(wk.int_div), "//");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.lookup("zork").is_none());
        let n = t.len();
        let _ = t.lookup("zork");
        assert_eq!(t.len(), n);
        t.intern("zork");
        assert!(t.lookup("zork").is_some());
    }

    #[test]
    fn iter_respects_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let names: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names.last().unwrap(), "alpha");
        assert_eq!(t.iter().count(), a.index() + 1);
    }
}
