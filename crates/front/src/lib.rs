//! # pwam-front — Prolog front-end for the RAP-WAM reproduction
//!
//! This crate implements the source-language layer that the ICPP'88 paper assumes:
//! a Prolog reader (tokenizer + operator-precedence parser), interned atoms,
//! a source-level term representation, and the **Conditional Graph Expression**
//! (CGE) syntax used to annotate goal-independence AND-parallelism:
//!
//! ```prolog
//! f(X,Y,Z) :- ( indep(X,Z), ground(Y) | g(X,Y) & h(Y,Z) ).
//! ```
//!
//! The output of this crate is a [`clause::Program`]: a list of clauses whose
//! bodies are sequences of goals, cuts, and CGEs, ready for compilation to
//! WAM / RAP-WAM code by `pwam-compiler`.
//!
//! ## Quick example
//!
//! ```
//! use pwam_front::{atoms::SymbolTable, parser::parse_program};
//!
//! let mut syms = SymbolTable::new();
//! let program = parse_program(
//!     "app([],L,L).\n\
//!      app([H|T],L,[H|R]) :- app(T,L,R).",
//!     &mut syms,
//! ).unwrap();
//! assert_eq!(program.clauses.len(), 2);
//! ```

pub mod atoms;
pub mod clause;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod term;

pub use atoms::{Atom, SymbolTable};
pub use clause::{Body, Cge, CgeCondition, Clause, Program};
pub use error::{FrontError, FrontResult};
pub use parser::{parse_program, parse_query, parse_term};
pub use term::Term;
