//! Error type shared by the lexer and parser.

use std::fmt;

/// Result alias used throughout the front-end.
pub type FrontResult<T> = Result<T, FrontError>;

/// A front-end (read-time) error with positional information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// Human readable description of the problem.
    pub message: String,
    /// 1-based line on which the error was detected.
    pub line: usize,
    /// 1-based column on which the error was detected.
    pub column: usize,
}

impl FrontError {
    /// Create a new error at the given position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        FrontError { message: message.into(), line, column }
    }

    /// Create an error without a meaningful position (e.g. end of input).
    pub fn unpositioned(message: impl Into<String>) -> Self {
        FrontError { message: message.into(), line: 0, column: 0 }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "syntax error: {}", self.message)
        } else {
            write!(f, "syntax error at {}:{}: {}", self.line, self.column, self.message)
        }
    }
}

impl std::error::Error for FrontError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_position() {
        let e = FrontError::new("unexpected token", 3, 7);
        assert_eq!(e.to_string(), "syntax error at 3:7: unexpected token");
    }

    #[test]
    fn display_without_position() {
        let e = FrontError::unpositioned("unexpected end of input");
        assert_eq!(e.to_string(), "syntax error: unexpected end of input");
    }
}
