//! Prolog tokenizer.
//!
//! Produces a flat token stream with source positions.  The token set covers
//! what the ICPP'88 benchmarks and the CGE annotation syntax need: atoms
//! (identifier, quoted and symbolic), variables, integers, punctuation, the
//! clause terminator, and comments (`%` line comments and `/* ... */`).

use crate::error::{FrontError, FrontResult};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An atom name (unquoted identifier, quoted atom or symbolic atom).
    Atom(String),
    /// A variable name (starts with an uppercase letter or `_`).
    Var(String),
    /// An integer literal.
    Int(i64),
    /// `(` that immediately follows an atom with no intervening layout —
    /// i.e. the opening of a compound term's argument list.
    OpenCall,
    /// `(` used for grouping.
    Open,
    /// `)`
    Close,
    /// `[`
    OpenList,
    /// `]`
    CloseList,
    /// `,`
    Comma,
    /// `|`
    Bar,
    /// `!`
    Cut,
    /// End of clause: `.` followed by layout or end of input.
    End,
}

/// A token together with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub column: usize,
}

/// True for characters that can form symbolic atoms such as `=..`, `=<`, `->`.
fn is_symbol_char(c: char) -> bool {
    matches!(
        c,
        '+' | '-' | '*' | '/' | '\\' | '^' | '<' | '>' | '=' | '~' | ':' | '.' | '?' | '@' | '#' | '&' | '$'
    )
}

/// Tokenize a complete source string.
pub fn tokenize(src: &str) -> FrontResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, column: 1, src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> FrontError {
        FrontError::new(msg, self.line, self.column)
    }

    fn run(mut self) -> FrontResult<Vec<Token>> {
        let mut out = Vec::new();
        // True when the previous token was an atom/var and no layout has been
        // seen since; used to classify `(` as OpenCall.
        let mut adjacent_to_name = false;
        while let Some(c) = self.peek() {
            let (line, column) = (self.line, self.column);
            if c.is_whitespace() {
                self.bump();
                adjacent_to_name = false;
                continue;
            }
            if c == '%' {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                adjacent_to_name = false;
                continue;
            }
            if c == '/' && self.peek2() == Some('*') {
                self.bump();
                self.bump();
                loop {
                    match self.bump() {
                        Some('*') if self.peek() == Some('/') => {
                            self.bump();
                            break;
                        }
                        Some(_) => {}
                        None => return Err(self.error("unterminated block comment")),
                    }
                }
                adjacent_to_name = false;
                continue;
            }

            let kind = if c.is_ascii_digit() {
                adjacent_to_name = false;
                TokenKind::Int(self.lex_integer()?)
            } else if c == '_' || c.is_uppercase() {
                adjacent_to_name = true;
                TokenKind::Var(self.lex_name())
            } else if c.is_lowercase() {
                adjacent_to_name = true;
                TokenKind::Atom(self.lex_name())
            } else if c == '\'' {
                adjacent_to_name = true;
                TokenKind::Atom(self.lex_quoted()?)
            } else if c == '(' {
                self.bump();
                let k = if adjacent_to_name { TokenKind::OpenCall } else { TokenKind::Open };
                adjacent_to_name = false;
                k
            } else if c == ')' {
                self.bump();
                adjacent_to_name = false;
                TokenKind::Close
            } else if c == '[' {
                self.bump();
                adjacent_to_name = false;
                TokenKind::OpenList
            } else if c == ']' {
                self.bump();
                adjacent_to_name = true; // `[]` may be followed by nothing special
                TokenKind::CloseList
            } else if c == ',' {
                self.bump();
                adjacent_to_name = false;
                TokenKind::Comma
            } else if c == '|' {
                self.bump();
                adjacent_to_name = false;
                TokenKind::Bar
            } else if c == '!' {
                self.bump();
                adjacent_to_name = false;
                TokenKind::Cut
            } else if c == ';' {
                self.bump();
                adjacent_to_name = false;
                TokenKind::Atom(";".to_string())
            } else if is_symbol_char(c) {
                // `.` terminates a clause when followed by layout or EOF.
                if c == '.' {
                    let next = self.peek2();
                    if next.is_none() || next.map(|n| n.is_whitespace() || n == '%').unwrap_or(false) {
                        self.bump();
                        adjacent_to_name = false;
                        out.push(Token { kind: TokenKind::End, line, column });
                        continue;
                    }
                }
                adjacent_to_name = true;
                TokenKind::Atom(self.lex_symbolic())
            } else {
                return Err(self.error(format!("unexpected character {c:?}")));
            };
            out.push(Token { kind, line, column });
        }
        let _ = self.src;
        Ok(out)
    }

    fn lex_integer(&mut self) -> FrontResult<i64> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s.parse::<i64>().map_err(|_| self.error(format!("integer literal out of range: {s}")))
    }

    fn lex_name(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn lex_symbolic(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if is_symbol_char(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn lex_quoted(&mut self) -> FrontResult<String> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        s.push('\'');
                        self.bump();
                    } else {
                        return Ok(s);
                    }
                }
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('\'') => s.push('\''),
                    Some(other) => s.push(other),
                    None => return Err(self.error("unterminated quoted atom")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated quoted atom")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            kinds("foo(bar, 42)."),
            vec![
                TokenKind::Atom("foo".into()),
                TokenKind::OpenCall,
                TokenKind::Atom("bar".into()),
                TokenKind::Comma,
                TokenKind::Int(42),
                TokenKind::Close,
                TokenKind::End,
            ]
        );
    }

    #[test]
    fn variables_and_anonymous() {
        assert_eq!(
            kinds("X _Y _"),
            vec![TokenKind::Var("X".into()), TokenKind::Var("_Y".into()), TokenKind::Var("_".into()),]
        );
    }

    #[test]
    fn symbolic_atoms_and_end() {
        assert_eq!(
            kinds("X =< Y."),
            vec![
                TokenKind::Var("X".into()),
                TokenKind::Atom("=<".into()),
                TokenKind::Var("Y".into()),
                TokenKind::End,
            ]
        );
    }

    #[test]
    fn neck_is_a_symbolic_atom() {
        assert_eq!(
            kinds("a :- b."),
            vec![
                TokenKind::Atom("a".into()),
                TokenKind::Atom(":-".into()),
                TokenKind::Atom("b".into()),
                TokenKind::End,
            ]
        );
    }

    #[test]
    fn grouping_paren_vs_call_paren() {
        let k = kinds("f(X), (a & b)");
        assert_eq!(k[1], TokenKind::OpenCall);
        assert!(k.contains(&TokenKind::Open));
    }

    #[test]
    fn list_and_bar() {
        assert_eq!(
            kinds("[H|T]"),
            vec![
                TokenKind::OpenList,
                TokenKind::Var("H".into()),
                TokenKind::Bar,
                TokenKind::Var("T".into()),
                TokenKind::CloseList,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a. % line comment\n/* block\ncomment */ b."),
            vec![TokenKind::Atom("a".into()), TokenKind::End, TokenKind::Atom("b".into()), TokenKind::End,]
        );
    }

    #[test]
    fn quoted_atoms() {
        assert_eq!(
            kinds("'hello world' 'it''s'"),
            vec![TokenKind::Atom("hello world".into()), TokenKind::Atom("it's".into())]
        );
    }

    #[test]
    fn cut_token() {
        assert_eq!(kinds("!, a"), vec![TokenKind::Cut, TokenKind::Comma, TokenKind::Atom("a".into())]);
    }

    #[test]
    fn dot_inside_symbolic_atom_is_not_end() {
        // `=..` is a single symbolic atom, not a clause terminator.
        assert_eq!(
            kinds("X =.. L."),
            vec![
                TokenKind::Var("X".into()),
                TokenKind::Atom("=..".into()),
                TokenKind::Var("L".into()),
                TokenKind::End,
            ]
        );
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn huge_integer_is_an_error() {
        assert!(tokenize("99999999999999999999999999").is_err());
    }
}
