//! Clauses, bodies and Conditional Graph Expressions (CGEs).
//!
//! The parser produces raw operator terms; this module gives them the
//! structure the compiler works with:
//!
//! * a [`Clause`] is `head :- body` (facts have an empty body),
//! * a [`Body`] is a sequence of [`Goal`]s,
//! * a [`Goal`] is an ordinary call, a cut, or a [`Cge`],
//! * a [`Cge`] is `( conditions | branch1 & branch2 & ... )` — the
//!   goal-independence annotation of the RAP-WAM model.  An unconditional
//!   parallel conjunction `( g & h )` is a CGE whose condition list is empty
//!   (always true).

use crate::atoms::{Atom, SymbolTable};
use crate::error::{FrontError, FrontResult};
use crate::term::Term;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// A single goal in a clause body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Goal {
    /// An ordinary predicate call (atom or compound term).
    Call(Term),
    /// The cut (`!`).
    Cut,
    /// A Conditional Graph Expression — candidate AND-parallel execution.
    Cge(Cge),
}

/// A sequential conjunction of goals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Body {
    pub goals: Vec<Goal>,
}

impl Body {
    /// An empty (always-true) body.
    pub fn empty() -> Self {
        Body { goals: Vec::new() }
    }

    /// The set of variable names mentioned in the body.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for g in &self.goals {
            match g {
                Goal::Call(t) => out.extend(t.variables()),
                Goal::Cut => {}
                Goal::Cge(cge) => out.extend(cge.variables()),
            }
        }
        out
    }

    /// Total number of `Call` goals, descending into CGE branches.
    pub fn call_count(&self) -> usize {
        self.goals
            .iter()
            .map(|g| match g {
                Goal::Call(_) => 1,
                Goal::Cut => 0,
                Goal::Cge(c) => c.branches.iter().map(Body::call_count).sum(),
            })
            .sum()
    }
}

/// A run-time independence condition guarding a CGE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgeCondition {
    /// `ground(T)` — T must be bound to a ground term.
    Ground(Term),
    /// `indep(A, B)` — the terms bound to A and B must share no variables.
    Indep(Term, Term),
    /// `true` — no run-time check (compile-time analysis proved independence).
    True,
}

/// A Conditional Graph Expression: `( Cond1, ..., CondN | B1 & B2 & ... & BM )`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cge {
    /// Run-time checks; all must succeed for parallel execution.  If any
    /// fails, the branches are executed sequentially (left to right), which
    /// preserves the don't-know non-deterministic semantics.
    pub conditions: Vec<CgeCondition>,
    /// Parallel branches.  Each branch is itself a sequential body.
    pub branches: Vec<Body>,
}

impl Cge {
    /// Variables mentioned anywhere in the CGE.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for c in &self.conditions {
            match c {
                CgeCondition::Ground(t) => out.extend(t.variables()),
                CgeCondition::Indep(a, b) => {
                    out.extend(a.variables());
                    out.extend(b.variables());
                }
                CgeCondition::True => {}
            }
        }
        for b in &self.branches {
            out.extend(b.variables());
        }
        out
    }

    /// True if the CGE has no run-time checks.
    pub fn is_unconditional(&self) -> bool {
        self.conditions.iter().all(|c| matches!(c, CgeCondition::True)) || self.conditions.is_empty()
    }
}

/// A program clause `Head :- Body` (or a fact, with an empty body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    pub head: Term,
    pub body: Body,
}

impl Clause {
    /// The functor/arity of the clause head.
    pub fn predicate(&self) -> FrontResult<(Atom, usize)> {
        self.head
            .functor()
            .ok_or_else(|| FrontError::unpositioned("clause head must be an atom or compound term"))
    }

    /// All variable names in the clause (head and body).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = self.head.variables();
        out.extend(self.body.variables());
        out
    }
}

/// A parsed program: clause list plus an index from predicate (functor,
/// arity) to the clauses defining it, in source order.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub clauses: Vec<Clause>,
    pub predicates: HashMap<(Atom, usize), Vec<usize>>,
    /// Predicate definition order (first-clause order), for stable iteration.
    pub predicate_order: Vec<(Atom, usize)>,
}

impl Program {
    /// Append a clause, maintaining the predicate index.
    pub fn push(&mut self, clause: Clause, _syms: &SymbolTable) {
        if let Ok(key) = clause.predicate() {
            let entry = self.predicates.entry(key).or_default();
            if entry.is_empty() {
                self.predicate_order.push(key);
            }
            entry.push(self.clauses.len());
        }
        self.clauses.push(clause);
    }

    /// The clauses defining `pred/arity`, in source order.
    pub fn clauses_for(&self, pred: Atom, arity: usize) -> Vec<&Clause> {
        self.predicates
            .get(&(pred, arity))
            .map(|idxs| idxs.iter().map(|&i| &self.clauses[i]).collect())
            .unwrap_or_default()
    }

    /// Merge another program into this one (used to combine benchmark
    /// libraries with driver clauses).
    pub fn extend_from(&mut self, other: &Program, syms: &SymbolTable) {
        for c in &other.clauses {
            self.push(c.clone(), syms);
        }
    }

    /// Number of CGEs across all clauses (a measure of annotated parallelism).
    pub fn cge_count(&self) -> usize {
        fn count_body(b: &Body) -> usize {
            b.goals
                .iter()
                .map(|g| match g {
                    Goal::Cge(c) => 1 + c.branches.iter().map(count_body).sum::<usize>(),
                    _ => 0,
                })
                .sum()
        }
        self.clauses.iter().map(|c| count_body(&c.body)).sum()
    }
}

/// Convert a parsed operator term into a [`Clause`].
pub fn term_to_clause(term: &Term, syms: &SymbolTable) -> FrontResult<Clause> {
    let wk = syms.well_known();
    match term {
        Term::Struct(f, args) if *f == wk.neck && args.len() == 2 => {
            let head = args[0].clone();
            validate_head(&head)?;
            let body = term_to_goal_sequence(&args[1], syms)?;
            Ok(Clause { head, body })
        }
        _ => {
            validate_head(term)?;
            Ok(Clause { head: term.clone(), body: Body::empty() })
        }
    }
}

fn validate_head(head: &Term) -> FrontResult<()> {
    match head {
        Term::Atom(_) | Term::Struct(_, _) => Ok(()),
        other => Err(FrontError::unpositioned(format!(
            "clause head must be an atom or compound term, found {other:?}"
        ))),
    }
}

/// Convert a body term (a `','`/`'&'`/`'|'` tree) into a flat [`Body`].
pub fn term_to_goal_sequence(term: &Term, syms: &SymbolTable) -> FrontResult<Body> {
    let mut body = Body::empty();
    flatten_conj(term, syms, &mut body)?;
    Ok(body)
}

fn flatten_conj(term: &Term, syms: &SymbolTable, out: &mut Body) -> FrontResult<()> {
    let wk = syms.well_known();
    match term {
        Term::Struct(f, args) if *f == wk.comma && args.len() == 2 => {
            flatten_conj(&args[0], syms, out)?;
            flatten_conj(&args[1], syms, out)
        }
        _ => {
            out.goals.push(term_to_goal(term, syms)?);
            Ok(())
        }
    }
}

fn term_to_goal(term: &Term, syms: &SymbolTable) -> FrontResult<Goal> {
    let wk = syms.well_known();
    match term {
        Term::Atom(a) if *a == wk.cut => Ok(Goal::Cut),
        Term::Atom(a) if *a == wk.truth => Ok(Goal::Call(term.clone())),
        Term::Struct(f, args) if *f == wk.bar && args.len() == 2 => {
            // ( Conditions | Goals )
            let conditions = parse_conditions(&args[0], syms)?;
            let branches = parse_branches(&args[1], syms)?;
            if branches.len() < 2 {
                return Err(FrontError::unpositioned(
                    "a CGE must contain at least two parallel branches joined by '&'",
                ));
            }
            Ok(Goal::Cge(Cge { conditions, branches }))
        }
        Term::Struct(f, args) if *f == wk.amp && args.len() == 2 => {
            // Unconditional parallel conjunction ( G1 & G2 & ... ).
            let branches = parse_branches(term, syms)?;
            let _ = args;
            Ok(Goal::Cge(Cge { conditions: Vec::new(), branches }))
        }
        Term::Atom(_) | Term::Struct(_, _) => Ok(Goal::Call(term.clone())),
        Term::Var(v) => {
            Err(FrontError::unpositioned(format!("meta-call of a plain variable ({v}) is not supported")))
        }
        Term::Int(n) => Err(FrontError::unpositioned(format!("an integer ({n}) cannot be a goal"))),
    }
}

fn parse_conditions(term: &Term, syms: &SymbolTable) -> FrontResult<Vec<CgeCondition>> {
    let wk = syms.well_known();
    let mut flat = Vec::new();
    fn walk(t: &Term, comma: Atom, out: &mut Vec<Term>) {
        match t {
            Term::Struct(f, args) if *f == comma && args.len() == 2 => {
                walk(&args[0], comma, out);
                walk(&args[1], comma, out);
            }
            _ => out.push(t.clone()),
        }
    }
    walk(term, wk.comma, &mut flat);
    let mut out = Vec::new();
    for t in flat {
        match &t {
            Term::Atom(a) if *a == wk.truth => out.push(CgeCondition::True),
            Term::Struct(f, args) if *f == wk.ground && args.len() == 1 => {
                out.push(CgeCondition::Ground(args[0].clone()))
            }
            Term::Struct(f, args) if *f == wk.indep && args.len() == 2 => {
                out.push(CgeCondition::Indep(args[0].clone(), args[1].clone()))
            }
            other => {
                return Err(FrontError::unpositioned(format!(
                    "unsupported CGE condition {other:?}: expected ground/1, indep/2 or true"
                )))
            }
        }
    }
    Ok(out)
}

fn parse_branches(term: &Term, syms: &SymbolTable) -> FrontResult<Vec<Body>> {
    let wk = syms.well_known();
    let mut branch_terms = Vec::new();
    fn walk(t: &Term, amp: Atom, out: &mut Vec<Term>) {
        match t {
            Term::Struct(f, args) if *f == amp && args.len() == 2 => {
                walk(&args[0], amp, out);
                walk(&args[1], amp, out);
            }
            _ => out.push(t.clone()),
        }
    }
    walk(term, wk.amp, &mut branch_terms);
    branch_terms.iter().map(|t| term_to_goal_sequence(t, syms)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_term};

    fn program(src: &str) -> (Program, SymbolTable) {
        let mut syms = SymbolTable::new();
        let p = parse_program(src, &mut syms).unwrap();
        (p, syms)
    }

    #[test]
    fn fact_has_empty_body() {
        let (p, _) = program("parent(tom, bob).");
        assert_eq!(p.clauses[0].body.goals.len(), 0);
    }

    #[test]
    fn rule_body_is_flattened() {
        let (p, _) = program("a :- b, c, d.");
        assert_eq!(p.clauses[0].body.goals.len(), 3);
        assert!(p.clauses[0].body.goals.iter().all(|g| matches!(g, Goal::Call(_))));
    }

    #[test]
    fn cut_is_recognised() {
        let (p, _) = program("a :- b, !, c.");
        assert!(matches!(p.clauses[0].body.goals[1], Goal::Cut));
    }

    #[test]
    fn cge_with_conditions() {
        let (p, _) = program("f(X,Y,Z) :- (ground(Y), indep(X,Z) | g(X,Y) & h(Y,Z)).");
        let body = &p.clauses[0].body;
        assert_eq!(body.goals.len(), 1);
        match &body.goals[0] {
            Goal::Cge(cge) => {
                assert_eq!(cge.conditions.len(), 2);
                assert_eq!(cge.branches.len(), 2);
                assert!(!cge.is_unconditional());
            }
            other => panic!("expected CGE, got {other:?}"),
        }
    }

    #[test]
    fn unconditional_parallel_conjunction() {
        let (p, _) = program("f(X,Y) :- (g(X) & h(Y)).");
        match &p.clauses[0].body.goals[0] {
            Goal::Cge(cge) => {
                assert!(cge.is_unconditional());
                assert_eq!(cge.branches.len(), 2);
            }
            other => panic!("expected CGE, got {other:?}"),
        }
    }

    #[test]
    fn three_way_parallel_branches() {
        let (p, _) = program("f :- (a & b & c).");
        match &p.clauses[0].body.goals[0] {
            Goal::Cge(cge) => assert_eq!(cge.branches.len(), 3),
            other => panic!("expected CGE, got {other:?}"),
        }
    }

    #[test]
    fn sequential_goals_inside_a_branch() {
        let (p, _) = program("f(X,Y) :- (true | (g(X), g2(X)) & h(Y)).");
        match &p.clauses[0].body.goals[0] {
            Goal::Cge(cge) => {
                assert_eq!(cge.branches.len(), 2);
                assert_eq!(cge.branches[0].goals.len(), 2);
            }
            other => panic!("expected CGE, got {other:?}"),
        }
    }

    #[test]
    fn predicate_index_groups_clauses() {
        let (p, mut syms) = program("app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).\nfoo.");
        let (_, syms_ref) = (&p, &mut syms);
        let app = syms_ref.intern("app");
        assert_eq!(p.clauses_for(app, 3).len(), 2);
        assert_eq!(p.predicate_order.len(), 2);
    }

    #[test]
    fn cge_count_counts_nested() {
        // The second clause has a CGE whose second branch contains another
        // CGE nested inside a sequential conjunction.
        let (p, _) = program("f :- (a & b).\ng :- (h & (x, (i & j))).");
        assert_eq!(p.cge_count(), 3);
    }

    #[test]
    fn adjacent_parallel_conjunctions_flatten_into_one_cge() {
        // `(h & i) & j` is the same three-way parallel conjunction as
        // `h & i & j`; the parentheses do not introduce nesting.
        let (p, _) = program("g :- (true | (h & i) & j).");
        assert_eq!(p.cge_count(), 1);
        match &p.clauses[0].body.goals[0] {
            Goal::Cge(cge) => assert_eq!(cge.branches.len(), 3),
            other => panic!("expected CGE, got {other:?}"),
        }
    }

    #[test]
    fn integer_goal_is_rejected() {
        let mut syms = SymbolTable::new();
        let t = parse_term("f :- 3", &mut syms).unwrap();
        assert!(term_to_clause(&t, &syms).is_err());
    }

    #[test]
    fn variable_head_is_rejected() {
        let mut syms = SymbolTable::new();
        assert!(parse_program("X :- a.", &mut syms).is_err());
    }

    #[test]
    fn bad_cge_condition_is_rejected() {
        let mut syms = SymbolTable::new();
        assert!(parse_program("f(X) :- (weird(X) | a & b).", &mut syms).is_err());
    }

    #[test]
    fn single_branch_cge_is_rejected() {
        let mut syms = SymbolTable::new();
        assert!(parse_program("f(X) :- (ground(X) | a).", &mut syms).is_err());
    }
}
