//! Operator-precedence Prolog parser.
//!
//! The parser is a classic precedence-climbing reader over the token stream
//! produced by [`crate::lexer`].  It supports the operator table required by
//! the ICPP'88 benchmarks and the CGE annotation syntax:
//!
//! | priority | type | operators |
//! |---------:|------|-----------|
//! | 1200     | xfx  | `:-` |
//! | 1100     | xfy  | `;`, `|` |
//! | 1050     | xfy  | `->` |
//! | 1025     | xfy  | `&` (parallel conjunction) |
//! | 1000     | xfy  | `,` |
//! | 900      | fy   | `\+` |
//! | 700      | xfx  | `=`, `\=`, `==`, `\==`, `is`, `=:=`, `=\=`, `<`, `>`, `=<`, `>=`, `=..` |
//! | 500      | yfx  | `+`, `-` |
//! | 400      | yfx  | `*`, `/`, `//`, `mod`, `rem` |
//! | 200      | xfy / fy | `^` / `-`, `+` |

use crate::atoms::SymbolTable;
use crate::clause::{term_to_clause, term_to_goal_sequence, Program};
use crate::error::{FrontError, FrontResult};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::term::Term;

/// Operator fixity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fixity {
    Xfx,
    Xfy,
    Yfx,
}

/// Look up an infix operator: `(priority, fixity)`.
fn infix_op(name: &str) -> Option<(u16, Fixity)> {
    use Fixity::*;
    Some(match name {
        ":-" => (1200, Xfx),
        ";" => (1100, Xfy),
        "|" => (1100, Xfy),
        "->" => (1050, Xfy),
        "&" => (1025, Xfy),
        "," => (1000, Xfy),
        "=" | "\\=" | "==" | "\\==" | "is" | "=:=" | "=\\=" | "<" | ">" | "=<" | ">=" | "@<" | "@>"
        | "@=<" | "@>=" | "=.." => (700, Xfx),
        "+" | "-" => (500, Yfx),
        "*" | "/" | "//" | "mod" | "rem" => (400, Yfx),
        "^" => (200, Xfy),
        _ => return None,
    })
}

/// Look up a prefix operator: `(priority, argument max priority)`.
fn prefix_op(name: &str) -> Option<(u16, u16)> {
    Some(match name {
        "\\+" => (900, 900),
        "-" | "+" => (200, 200),
        ":-" => (1200, 1199),
        _ => return None,
    })
}

/// Parse a complete program (a sequence of clauses each terminated by `.`).
pub fn parse_program(src: &str, syms: &mut SymbolTable) -> FrontResult<Program> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(&tokens, syms);
    let mut program = Program::default();
    while !parser.at_end() {
        let term = parser.parse(1200)?;
        parser.expect_end()?;
        let clause = term_to_clause(&term, parser.syms)?;
        program.push(clause, parser.syms);
    }
    Ok(program)
}

/// Parse a query (a goal or conjunction of goals, with or without the
/// trailing `.`), e.g. `"qsort([3,1,2], S, [])"`.
pub fn parse_query(src: &str, syms: &mut SymbolTable) -> FrontResult<crate::clause::Body> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(&tokens, syms);
    let term = parser.parse(1200)?;
    if !parser.at_end() {
        parser.expect_end()?;
    }
    if !parser.at_end() {
        return Err(FrontError::unpositioned("trailing tokens after query"));
    }
    term_to_goal_sequence(&term, parser.syms)
}

/// Parse a single term (no trailing `.` expected).
pub fn parse_term(src: &str, syms: &mut SymbolTable) -> FrontResult<Term> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(&tokens, syms);
    let term = parser.parse(1200)?;
    if !parser.at_end() {
        return Err(FrontError::unpositioned("trailing tokens after term"));
    }
    Ok(term)
}

struct Parser<'a, 'b> {
    tokens: &'a [Token],
    pos: usize,
    syms: &'b mut SymbolTable,
    anon_counter: usize,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn new(tokens: &'a [Token], syms: &'b mut SymbolTable) -> Self {
        Parser { tokens, pos: 0, syms, anon_counter: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> FrontError {
        match self.peek() {
            Some(t) => FrontError::new(msg, t.line, t.column),
            None => FrontError::unpositioned(msg),
        }
    }

    fn expect_end(&mut self) -> FrontResult<()> {
        match self.bump() {
            Some(Token { kind: TokenKind::End, .. }) => Ok(()),
            Some(t) => Err(FrontError::new(format!("expected '.' but found {:?}", t.kind), t.line, t.column)),
            None => Err(FrontError::unpositioned("expected '.' but found end of input")),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> FrontResult<()> {
        match self.bump() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => {
                Err(FrontError::new(format!("expected {:?} but found {:?}", kind, t.kind), t.line, t.column))
            }
            None => Err(FrontError::unpositioned(format!("expected {kind:?} but found end of input"))),
        }
    }

    fn fresh_anon(&mut self) -> String {
        let name = format!("_G{}", self.anon_counter);
        self.anon_counter += 1;
        name
    }

    /// Parse a term with priority at most `max_prec`.
    fn parse(&mut self, max_prec: u16) -> FrontResult<Term> {
        let (mut left, mut left_prec) = self.parse_primary(max_prec)?;
        while let Some(tok) = self.peek() {
            let op_name: Option<String> = match &tok.kind {
                TokenKind::Atom(a) => Some(a.clone()),
                TokenKind::Comma => Some(",".to_string()),
                TokenKind::Bar => Some("|".to_string()),
                _ => None,
            };
            let Some(op_name) = op_name else { break };
            let Some((prec, fixity)) = infix_op(&op_name) else { break };
            if prec > max_prec {
                break;
            }
            let left_max = match fixity {
                Fixity::Yfx => prec,
                _ => prec - 1,
            };
            if left_prec > left_max {
                break;
            }
            self.bump();
            let right_max = match fixity {
                Fixity::Xfy => prec,
                _ => prec - 1,
            };
            let right = self.parse(right_max)?;
            let f = self.syms.intern(&op_name);
            left = Term::Struct(f, vec![left, right]);
            left_prec = prec;
        }
        Ok(left)
    }

    /// Parse a primary term; returns the term and its priority (0 for plain
    /// terms, the operator priority for prefix-operator applications).
    fn parse_primary(&mut self, max_prec: u16) -> FrontResult<(Term, u16)> {
        let tok = match self.peek() {
            Some(t) => t.clone(),
            None => return Err(FrontError::unpositioned("unexpected end of input")),
        };
        match tok.kind {
            TokenKind::Int(n) => {
                self.bump();
                Ok((Term::Int(n), 0))
            }
            TokenKind::Var(name) => {
                self.bump();
                let name = if name == "_" { self.fresh_anon() } else { name };
                Ok((Term::Var(name), 0))
            }
            TokenKind::Cut => {
                self.bump();
                let cut = self.syms.well_known().cut;
                Ok((Term::Atom(cut), 0))
            }
            TokenKind::Open | TokenKind::OpenCall => {
                self.bump();
                let inner = self.parse(1200)?;
                self.expect(&TokenKind::Close)?;
                Ok((inner, 0))
            }
            TokenKind::OpenList => {
                self.bump();
                let term = self.parse_list()?;
                Ok((term, 0))
            }
            TokenKind::Atom(name) => {
                self.bump();
                // Compound term: atom immediately followed by '('.
                if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::OpenCall)) {
                    self.bump();
                    let args = self.parse_arglist()?;
                    let f = self.syms.intern(&name);
                    return Ok((Term::Struct(f, args), 0));
                }
                // Prefix operator application.
                if let Some((prec, arg_max)) = prefix_op(&name) {
                    if prec <= max_prec && self.starts_term() {
                        // Special case: -N is a negative integer literal.
                        if name == "-" {
                            if let Some(Token { kind: TokenKind::Int(n), .. }) = self.peek() {
                                let n = *n;
                                self.bump();
                                return Ok((Term::Int(-n), 0));
                            }
                        }
                        let arg = self.parse(arg_max)?;
                        let f = self.syms.intern(&name);
                        return Ok((Term::Struct(f, vec![arg]), prec));
                    }
                }
                let a = self.syms.intern(&name);
                Ok((Term::Atom(a), 0))
            }
            TokenKind::CloseList | TokenKind::Close | TokenKind::Comma | TokenKind::Bar | TokenKind::End => {
                Err(self.error_here(format!("unexpected token {:?}", tok.kind)))
            }
        }
    }

    /// True if the next token can start a term (used to decide whether a
    /// prefix operator is being applied or stands alone as an atom).
    fn starts_term(&self) -> bool {
        matches!(
            self.peek().map(|t| &t.kind),
            Some(
                TokenKind::Int(_)
                    | TokenKind::Var(_)
                    | TokenKind::Atom(_)
                    | TokenKind::Open
                    | TokenKind::OpenCall
                    | TokenKind::OpenList
                    | TokenKind::Cut
            )
        )
    }

    fn parse_arglist(&mut self) -> FrontResult<Vec<Term>> {
        let mut args = Vec::new();
        loop {
            args.push(self.parse(999)?);
            match self.bump() {
                Some(Token { kind: TokenKind::Comma, .. }) => continue,
                Some(Token { kind: TokenKind::Close, .. }) => break,
                Some(t) => {
                    return Err(FrontError::new(
                        format!("expected ',' or ')' in argument list, found {:?}", t.kind),
                        t.line,
                        t.column,
                    ))
                }
                None => return Err(FrontError::unpositioned("unterminated argument list")),
            }
        }
        Ok(args)
    }

    fn parse_list(&mut self) -> FrontResult<Term> {
        let wk_nil = self.syms.well_known().nil;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::CloseList)) {
            self.bump();
            return Ok(Term::Atom(wk_nil));
        }
        let mut items = Vec::new();
        let tail;
        loop {
            items.push(self.parse(999)?);
            match self.bump() {
                Some(Token { kind: TokenKind::Comma, .. }) => continue,
                Some(Token { kind: TokenKind::CloseList, .. }) => {
                    tail = Term::Atom(wk_nil);
                    break;
                }
                Some(Token { kind: TokenKind::Bar, .. }) => {
                    tail = self.parse(999)?;
                    self.expect(&TokenKind::CloseList)?;
                    break;
                }
                Some(t) => {
                    return Err(FrontError::new(
                        format!("expected ',', '|' or ']' in list, found {:?}", t.kind),
                        t.line,
                        t.column,
                    ))
                }
                None => return Err(FrontError::unpositioned("unterminated list")),
            }
        }
        Ok(Term::list(items, tail, self.syms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::term_to_string;

    fn parse_ok(src: &str) -> (Term, SymbolTable) {
        let mut syms = SymbolTable::new();
        let t = parse_term(src, &mut syms).unwrap();
        (t, syms)
    }

    fn roundtrip(src: &str) -> String {
        let (t, syms) = parse_ok(src);
        term_to_string(&t, &syms)
    }

    #[test]
    fn parses_simple_structure() {
        let (t, syms) = parse_ok("foo(bar, X, 42)");
        match t {
            Term::Struct(f, args) => {
                assert_eq!(syms.name(f), "foo");
                assert_eq!(args.len(), 3);
                assert_eq!(args[2], Term::Int(42));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(roundtrip("1+2*3"), "1+2*3");
        assert_eq!(roundtrip("(1+2)*3"), "(1+2)*3");
        assert_eq!(roundtrip("1-2-3"), "1-2-3"); // left associative
    }

    #[test]
    fn left_associativity_structure() {
        let (t, syms) = parse_ok("1-2-3");
        // Must be -(-(1,2),3)
        if let Term::Struct(minus, args) = t {
            assert_eq!(syms.name(minus), "-");
            assert!(matches!(&args[0], Term::Struct(_, inner) if inner[0] == Term::Int(1)));
            assert_eq!(args[1], Term::Int(3));
        } else {
            panic!("not a struct");
        }
    }

    #[test]
    fn comparison_is_xfx() {
        assert!(parse_term("1 < 2 < 3", &mut SymbolTable::new()).is_err());
    }

    #[test]
    fn negative_literals() {
        let (t, _) = parse_ok("-5");
        assert_eq!(t, Term::Int(-5));
        let (t, syms) = parse_ok("-X");
        assert!(matches!(t, Term::Struct(f, _) if syms.name(f) == "-"));
    }

    #[test]
    fn lists_parse_and_print() {
        assert_eq!(roundtrip("[1,2,3]"), "[1,2,3]");
        assert_eq!(roundtrip("[H|T]"), "[H|T]");
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("[a,b|T]"), "[a,b|T]");
    }

    #[test]
    fn cge_shape() {
        let (t, syms) = parse_ok("(ground(Y), indep(X,Z) | g(X,Y) & h(Y,Z))");
        // top functor must be '|'
        if let Term::Struct(bar, args) = &t {
            assert_eq!(syms.name(*bar), "|");
            assert_eq!(args.len(), 2);
            // right side is '&'
            if let Term::Struct(amp, _) = &args[1] {
                assert_eq!(syms.name(*amp), "&");
            } else {
                panic!("rhs of | is not &");
            }
        } else {
            panic!("not a CGE term: {t:?}");
        }
    }

    #[test]
    fn clause_term_shape() {
        let (t, syms) = parse_ok("f(X) :- g(X), h(X)");
        if let Term::Struct(neck, args) = &t {
            assert_eq!(syms.name(*neck), ":-");
            assert_eq!(args.len(), 2);
        } else {
            panic!("not a clause term");
        }
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let (t, _) = parse_ok("f(_, _)");
        if let Term::Struct(_, args) = t {
            assert_ne!(args[0], args[1]);
        } else {
            panic!("not a struct");
        }
    }

    #[test]
    fn program_parses_multiple_clauses() {
        let mut syms = SymbolTable::new();
        let p = parse_program("a.\nb :- a.\nc :- a, b.", &mut syms).unwrap();
        assert_eq!(p.clauses.len(), 3);
    }

    #[test]
    fn query_parses_conjunction() {
        let mut syms = SymbolTable::new();
        let q = parse_query("a, b, c", &mut syms).unwrap();
        assert_eq!(q.goals.len(), 3);
    }

    #[test]
    fn missing_end_is_an_error() {
        let mut syms = SymbolTable::new();
        assert!(parse_program("a :- b", &mut syms).is_err());
    }

    #[test]
    fn is_operator_parses() {
        let (t, syms) = parse_ok("X is Y + 1");
        if let Term::Struct(is, args) = &t {
            assert_eq!(syms.name(*is), "is");
            assert!(matches!(&args[1], Term::Struct(_, _)));
        } else {
            panic!("not an is/2 term");
        }
    }

    #[test]
    fn quoted_atom_functor() {
        let (t, syms) = parse_ok("'my pred'(a)");
        assert!(matches!(t, Term::Struct(f, _) if syms.name(f) == "my pred"));
    }
}
