//! Source-level Prolog terms.
//!
//! These are the terms produced by the reader and consumed by the compiler.
//! They are *not* the run-time representation (the engine uses tagged heap
//! cells, see `rapwam::cell`); keeping the two separate mirrors the paper's
//! distinction between the compiler input and the WAM storage model.

use crate::atoms::{Atom, SymbolTable};
use std::collections::BTreeSet;

/// A source-level Prolog term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// An atom (constant), e.g. `foo`, `[]`.
    Atom(Atom),
    /// An integer constant.
    Int(i64),
    /// A named variable.  Anonymous variables (`_`) are given unique names by
    /// the parser (`_G<n>`), so every `Var` is identified by its name string.
    Var(String),
    /// A compound term `functor(arg1, ..., argN)` with `N >= 1`.
    Struct(Atom, Vec<Term>),
}

impl Term {
    /// Build a list term out of `items`, terminated by `tail`.
    pub fn list(items: Vec<Term>, tail: Term, syms: &SymbolTable) -> Term {
        let dot = syms.well_known().dot;
        items.into_iter().rev().fold(tail, |acc, item| Term::Struct(dot, vec![item, acc]))
    }

    /// Build a proper (nil-terminated) list.
    pub fn proper_list(items: Vec<Term>, syms: &SymbolTable) -> Term {
        let nil = Term::Atom(syms.well_known().nil);
        Term::list(items, nil, syms)
    }

    /// If this term is a proper list, return its elements.
    pub fn as_proper_list(&self, syms: &SymbolTable) -> Option<Vec<&Term>> {
        let wk = syms.well_known();
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Atom(a) if *a == wk.nil => return Some(out),
                Term::Struct(f, args) if *f == wk.dot && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// The functor name and arity of this term.  Atoms have arity 0;
    /// integers and variables have no functor and return `None`.
    pub fn functor(&self) -> Option<(Atom, usize)> {
        match self {
            Term::Atom(a) => Some((*a, 0)),
            Term::Struct(a, args) => Some((*a, args.len())),
            _ => None,
        }
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Atom(_) | Term::Int(_) => true,
            Term::Var(_) => false,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// The set of variable names occurring in the term, in sorted order.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.collect_variables(&mut set);
        set
    }

    fn collect_variables(&self, set: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                set.insert(v.clone());
            }
            Term::Struct(_, args) => {
                for a in args {
                    a.collect_variables(set);
                }
            }
            _ => {}
        }
    }

    /// Number of sub-terms (including the term itself); a rough size measure
    /// used by tests and by the benchmark input generators.
    pub fn node_count(&self) -> usize {
        match self {
            Term::Struct(_, args) => 1 + args.iter().map(Term::node_count).sum::<usize>(),
            _ => 1,
        }
    }

    /// Maximum nesting depth of the term.
    pub fn depth(&self) -> usize {
        match self {
            Term::Struct(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn proper_list_round_trip() {
        let mut s = syms();
        let a = s.intern("a");
        let b = s.intern("b");
        let list = Term::proper_list(vec![Term::Atom(a), Term::Atom(b), Term::Int(3)], &s);
        let elems = list.as_proper_list(&s).expect("should be a proper list");
        assert_eq!(elems.len(), 3);
        assert_eq!(*elems[2], Term::Int(3));
    }

    #[test]
    fn partial_list_is_not_proper() {
        let s = syms();
        let list = Term::list(vec![Term::Int(1)], Term::Var("T".into()), &s);
        assert!(list.as_proper_list(&s).is_none());
    }

    #[test]
    fn groundness() {
        let mut s = syms();
        let f = s.intern("f");
        let ground = Term::Struct(f, vec![Term::Int(1), Term::Atom(s.well_known().nil)]);
        let non_ground = Term::Struct(f, vec![Term::Int(1), Term::Var("X".into())]);
        assert!(ground.is_ground());
        assert!(!non_ground.is_ground());
    }

    #[test]
    fn variable_collection_is_sorted_and_deduplicated() {
        let mut s = syms();
        let f = s.intern("f");
        let t = Term::Struct(f, vec![Term::Var("B".into()), Term::Var("A".into()), Term::Var("B".into())]);
        let vars: Vec<_> = t.variables().into_iter().collect();
        assert_eq!(vars, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn functor_and_sizes() {
        let mut s = syms();
        let f = s.intern("f");
        let t = Term::Struct(f, vec![Term::Int(1), Term::Struct(f, vec![Term::Int(2)])]);
        assert_eq!(t.functor(), Some((f, 2)));
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(Term::Int(7).functor(), None);
    }
}
