//! Property-based tests: the pretty printer and the parser are inverses on
//! randomly generated terms, and groundness/variable collection behave
//! consistently under substitution of structure.

use proptest::prelude::*;
use pwam_front::parser::parse_term;
use pwam_front::pretty::term_to_string;
use pwam_front::term::Term;
use pwam_front::SymbolTable;

/// Generate a random term over a fixed safe alphabet (plain atoms that never
/// need quoting or collide with operators).
fn arb_term() -> impl Strategy<Value = TermSpec> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(TermSpec::Atom),
        (-(1000i64)..1000).prop_map(TermSpec::Int),
        (0u8..4).prop_map(TermSpec::Var),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (0u8..5, prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(f, args)| TermSpec::Struct(f, args)),
            prop::collection::vec(inner, 0..4).prop_map(TermSpec::List),
        ]
    })
}

/// A host-side term description, turned into a real [`Term`] against a
/// symbol table.
#[derive(Debug, Clone)]
enum TermSpec {
    Atom(u8),
    Int(i64),
    Var(u8),
    Struct(u8, Vec<TermSpec>),
    List(Vec<TermSpec>),
}

const ATOMS: [&str; 5] = ["foo", "bar", "baz", "quux", "zip"];
const FUNCTORS: [&str; 5] = ["f", "g", "h", "point", "pair"];
const VARS: [&str; 4] = ["X", "Y", "Z", "Acc"];

impl TermSpec {
    fn build(&self, syms: &mut SymbolTable) -> Term {
        match self {
            TermSpec::Atom(i) => Term::Atom(syms.intern(ATOMS[*i as usize])),
            TermSpec::Int(n) => Term::Int(*n),
            TermSpec::Var(i) => Term::Var(VARS[*i as usize].to_string()),
            TermSpec::Struct(f, args) => {
                let functor = syms.intern(FUNCTORS[*f as usize]);
                let args = args.iter().map(|a| a.build(syms)).collect();
                Term::Struct(functor, args)
            }
            TermSpec::List(items) => {
                let items: Vec<Term> = items.iter().map(|a| a.build(syms)).collect();
                Term::proper_list(items, syms)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_is_identity(spec in arb_term()) {
        let mut syms = SymbolTable::new();
        let term = spec.build(&mut syms);
        let text = term_to_string(&term, &syms);
        let reparsed = parse_term(&text, &mut syms)
            .unwrap_or_else(|e| panic!("could not reparse {text:?}: {e}"));
        prop_assert_eq!(reparsed, term);
    }

    #[test]
    fn groundness_is_absence_of_variables(spec in arb_term()) {
        let mut syms = SymbolTable::new();
        let term = spec.build(&mut syms);
        prop_assert_eq!(term.is_ground(), term.variables().is_empty());
    }

    #[test]
    fn node_count_bounds_depth(spec in arb_term()) {
        let mut syms = SymbolTable::new();
        let term = spec.build(&mut syms);
        prop_assert!(term.depth() <= term.node_count());
        prop_assert!(term.node_count() >= 1);
    }

    #[test]
    fn printed_terms_parse_as_single_clause_heads(spec in arb_term()) {
        // Wrapping any term as the argument of a fact must give a program
        // with exactly one clause whose head round-trips.
        let mut syms = SymbolTable::new();
        let term = spec.build(&mut syms);
        let text = format!("wrapper({}).", term_to_string(&term, &syms));
        let program = pwam_front::parser::parse_program(&text, &mut syms)
            .unwrap_or_else(|e| panic!("could not parse {text:?}: {e}"));
        prop_assert_eq!(program.clauses.len(), 1);
        match &program.clauses[0].head {
            Term::Struct(_, args) => prop_assert_eq!(&args[0], &term),
            other => prop_assert!(false, "unexpected head {:?}", other),
        }
    }
}
