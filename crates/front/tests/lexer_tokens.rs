//! Lexer unit tests: every `TokenKind` variant is produced by the expected
//! surface syntax, positions are tracked, and comments/layout are skipped.

use pwam_front::lexer::{tokenize, Token, TokenKind};

fn kinds(src: &str) -> Vec<TokenKind> {
    tokenize(src).unwrap_or_else(|e| panic!("tokenize {src:?}: {e}")).into_iter().map(|t| t.kind).collect()
}

#[test]
fn every_token_kind_is_covered() {
    use TokenKind::*;
    let toks = kinds("f(X, [1|T]) :- !, g.\n");
    assert_eq!(
        toks,
        vec![
            Atom("f".into()),
            OpenCall,
            Var("X".into()),
            Comma,
            OpenList,
            Int(1),
            Bar,
            Var("T".into()),
            CloseList,
            Close,
            Atom(":-".into()),
            Cut,
            Comma,
            Atom("g".into()),
            End,
        ]
    );
    // Grouping `(` (after layout) lexes as Open, not OpenCall.
    assert_eq!(kinds("a :- (b).")[2], Open);
}

#[test]
fn atoms_identifier_quoted_and_symbolic() {
    assert_eq!(kinds("foo.")[0], TokenKind::Atom("foo".into()));
    assert_eq!(kinds("'hello world'.")[0], TokenKind::Atom("hello world".into()));
    assert_eq!(kinds("X =< Y.")[1], TokenKind::Atom("=<".into()));
    assert_eq!(kinds("a =.. L.")[1], TokenKind::Atom("=..".into()));
    // A symbolic atom stops before a clause-terminating dot.
    let toks = kinds("X = Y.");
    assert_eq!(toks[1], TokenKind::Atom("=".into()));
    assert_eq!(toks[3], TokenKind::End);
}

#[test]
fn variables_and_integers() {
    assert_eq!(kinds("X.")[0], TokenKind::Var("X".into()));
    assert_eq!(kinds("_Acc.")[0], TokenKind::Var("_Acc".into()));
    assert_eq!(kinds("42.")[0], TokenKind::Int(42));
    let negative = kinds("X is -3.");
    assert!(
        negative.contains(&TokenKind::Int(-3))
            || (negative.contains(&TokenKind::Atom("-".into())) && negative.contains(&TokenKind::Int(3))),
        "got {negative:?}"
    );
}

#[test]
fn comments_and_layout_are_skipped() {
    let toks = kinds("% line comment\nfoo. /* block\ncomment */ bar.");
    assert_eq!(
        toks,
        vec![TokenKind::Atom("foo".into()), TokenKind::End, TokenKind::Atom("bar".into()), TokenKind::End,]
    );
}

#[test]
fn positions_are_one_based_lines_and_columns() {
    let toks: Vec<Token> = tokenize("a.\n  b.").unwrap();
    assert_eq!((toks[0].line, toks[0].column), (1, 1));
    let b = toks.iter().find(|t| t.kind == TokenKind::Atom("b".into())).unwrap();
    assert_eq!((b.line, b.column), (2, 3));
}

#[test]
fn cge_annotation_tokens() {
    // `( cond | g1 & g2 )` — the CGE surface syntax must tokenize; `&` is a
    // symbolic atom, `|` is Bar.
    let toks = kinds("p :- ( ground(X) | q(X) & r(X) ).");
    assert!(toks.contains(&TokenKind::Bar));
    assert!(toks.contains(&TokenKind::Atom("&".into())));
    assert!(toks.contains(&TokenKind::Open));
}

#[test]
fn unterminated_quote_is_an_error() {
    assert!(tokenize("'oops.").is_err());
}
