//! Parse → pretty-print → re-parse round-trips over the four benchmark
//! programs of the paper: pretty-printing a parsed program and parsing it
//! again must reproduce the same clauses, and printing must be idempotent.

use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_front::parser::parse_program;
use pwam_front::pretty::program_to_string;
use pwam_front::SymbolTable;

#[test]
fn benchmark_programs_round_trip() {
    for id in BenchmarkId::ALL {
        let bench = benchmark(id, Scale::Small);
        let mut syms = SymbolTable::new();
        let program = parse_program(&bench.program, &mut syms)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", id.name()));
        assert!(!program.clauses.is_empty(), "{}: no clauses", id.name());

        let printed = program_to_string(&program, &syms);
        let reparsed = parse_program(&printed, &mut syms)
            .unwrap_or_else(|e| panic!("{}: re-parse of pretty output failed: {e}\n{printed}", id.name()));
        assert_eq!(
            program.clauses,
            reparsed.clauses,
            "{}: pretty-printed program parsed differently",
            id.name()
        );
    }
}

#[test]
fn pretty_printing_is_idempotent_on_benchmarks() {
    for id in BenchmarkId::ALL {
        let bench = benchmark(id, Scale::Small);
        let mut syms = SymbolTable::new();
        let program = parse_program(&bench.program, &mut syms).unwrap();
        let once = program_to_string(&program, &syms);
        let again = program_to_string(&parse_program(&once, &mut syms).unwrap(), &syms);
        assert_eq!(once, again, "{}: pretty output not a fixed point", id.name());
    }
}

#[test]
fn benchmark_queries_parse() {
    for id in BenchmarkId::ALL {
        for scale in [Scale::Small, Scale::Paper] {
            let bench = benchmark(id, scale);
            let mut syms = SymbolTable::new();
            pwam_front::parser::parse_query(&bench.query, &mut syms)
                .unwrap_or_else(|e| panic!("{} {scale:?}: query failed to parse: {e}", id.name()));
        }
    }
}

#[test]
fn cge_annotations_survive_the_round_trip() {
    // All four paper benchmarks are annotated; their CGEs must survive
    // printing and re-parsing.
    for id in BenchmarkId::ALL {
        let bench = benchmark(id, Scale::Small);
        let mut syms = SymbolTable::new();
        let program = parse_program(&bench.program, &mut syms).unwrap();
        let cges = program.cge_count();
        assert!(cges > 0, "{}: benchmark program has no CGE annotations", id.name());
        let reparsed = parse_program(&program_to_string(&program, &syms), &mut syms).unwrap();
        assert_eq!(cges, reparsed.cge_count(), "{}: CGE count changed", id.name());
    }
}
