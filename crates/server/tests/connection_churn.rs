//! Fault-injection churn: connections that die at the worst moments.
//!
//! The serving tier's resource accounting is all RAII — connection slots,
//! pool slots, tenant quota holds, parked cursors — so every abrupt
//! disconnect, however badly timed, must drain back to a clean baseline:
//! the active-connection gauge at zero, the pool queue empty, no tenant
//! holding phantom quota, and no cursor parked forever.  These tests
//! slam the server with exactly those disconnects (mid-query, mid-cursor
//! stream, mid-response, and the slowloris stall) and then assert the
//! gauges say what a freshly started server would say.

use pwam_server::protocol::{self, QueryRequest, Request, Response};
use pwam_server::{Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const PROGRAM: &str = "\
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
p(1).
p(2).
p(3).
";

fn frame(payload: &str) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

fn query(q: &str) -> Request {
    Request::Query(Box::new(QueryRequest {
        program: PROGRAM.to_string(),
        query: q.to_string(),
        ..QueryRequest::default()
    }))
}

/// Poll `stats` until every churn-sensitive gauge is back to its idle
/// value (or fail loudly with the offender).
fn assert_baseline(server: &Server, expect_parked: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        let offenders: Vec<(&str, u64)> = [
            ("connections_active", stats.get("connections_active").unwrap()),
            ("pool_queue_depth", stats.get("pool_queue_depth").unwrap()),
            ("tenants_active", stats.get("tenants_active").unwrap()),
            ("parked_cursors", stats.get("parked_cursors").unwrap().saturating_sub(expect_parked)),
        ]
        .into_iter()
        .filter(|(_, v)| *v != 0)
        .collect();
        if offenders.is_empty() {
            return;
        }
        assert!(Instant::now() < deadline, "gauges never returned to baseline: {offenders:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Abrupt disconnects at every phase of a one-shot query: before the
/// response, while it is (likely) being written, and mid-read of it.
/// Whatever the timing, every slot drains and the server keeps serving.
#[test]
fn abrupt_disconnects_mid_query_release_every_slot() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..24)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let payload =
                    protocol::encode_request(&query("nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16], R)"));
                stream.write_all(&frame(&payload)).unwrap();
                match i % 3 {
                    // Hang up before the engine can possibly have answered.
                    0 => drop(stream),
                    // Give the response time to be in flight, then vanish.
                    1 => {
                        std::thread::sleep(Duration::from_millis(10));
                        drop(stream);
                    }
                    // Read a few response bytes, then vanish mid-frame.
                    _ => {
                        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                        let mut partial = [0u8; 3];
                        let _ = stream.read(&mut partial);
                        drop(stream);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_baseline(&server, 0);
    // The pool is intact: a straight query still answers.
    let mut client = Client::connect(addr).unwrap();
    match client.query(QueryRequest {
        program: PROGRAM.to_string(),
        query: "p(X)".to_string(),
        ..QueryRequest::default()
    }) {
        Ok(Response::Answer(a)) => assert!(a.success),
        other => panic!("post-churn query: {other:?}"),
    }
    server.shutdown();
}

/// A client that opens a cursor, pulls one answer, and vanishes.  The
/// parked cursor must NOT leak a connection or tenant slot, and idle
/// eviction must reclaim the cursor itself.
#[test]
fn disconnect_mid_cursor_stream_parks_then_evicts() {
    let server = Server::start(ServerConfig {
        cursor_idle_timeout: Duration::from_millis(200),
        tenant_max_active: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    for _ in 0..4 {
        let mut client = Client::connect(addr).unwrap();
        let cursor = client
            .query_open(QueryRequest {
                program: PROGRAM.to_string(),
                query: "p(X)".to_string(),
                tenant: Some("churn".to_string()),
                ..QueryRequest::default()
            })
            .unwrap();
        let first = client.query_next(cursor).unwrap().expect("first answer");
        assert!(first.success);
        drop(client); // vanish with the cursor mid-stream
    }
    // Parked cursors are a *deliberate* survivor of a disconnect (another
    // connection may resume them); everything else must drain now.
    assert_baseline(&server, server.stats().get("parked_cursors").unwrap());
    // ...and the idle sweep reclaims the orphans themselves.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.get("parked_cursors").unwrap() == 0 {
            assert!(stats.get("cursors_evicted").unwrap() >= 4, "orphans must be evicted, not closed");
            break;
        }
        assert!(Instant::now() < deadline, "orphaned cursors were never evicted");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_baseline(&server, 0);
    server.shutdown();
}

/// Slowloris: connections that park themselves mid-frame (or entirely
/// silent with a part-written length prefix) are reaped by the idle
/// deadline rather than holding slots forever.
#[test]
fn slowloris_connections_are_reaped() {
    let server = Server::start(ServerConfig {
        io_idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut stalled: Vec<TcpStream> = (0..8)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Dribble out part of a frame, then stall forever: half a
            // length prefix, or a prefix promising bytes that never come.
            if i % 2 == 0 {
                stream.write_all(&[0x00, 0x00]).unwrap();
            } else {
                stream.write_all(&64u32.to_be_bytes()).unwrap();
                stream.write_all(b"ping").unwrap();
            }
            stream
        })
        .collect();
    // Every stalled connection gets closed on the server's side.
    for stream in &mut stalled {
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut scratch = [0u8; 64];
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("expected the reaper to close us, got {e}"),
            }
        }
    }
    drop(stalled);
    assert_baseline(&server, 0);
    // A live client with an empty buffer is NOT a slowloris: sitting idle
    // far past the deadline must not get it reaped.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    std::thread::sleep(Duration::from_millis(800));
    client.ping().expect("idle-but-clean connection must survive the reaper");
    server.shutdown();
}

/// Arrivals beyond `max_connections` get a well-framed `rejected` error
/// (not a bare RST), and shedding frees up as soon as a held slot closes.
#[test]
fn connections_beyond_the_cap_are_shed_with_a_framed_error() {
    let server = Server::start(ServerConfig { max_connections: 4, ..ServerConfig::default() }).unwrap();
    let addr = server.addr();
    let mut held: Vec<Client> = (0..4)
        .map(|_| {
            let mut client = Client::connect(addr).unwrap();
            client.ping().unwrap();
            client
        })
        .collect();
    // The fifth connection is turned away with a framed error.
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let payload = protocol::read_frame(&mut shed).unwrap().expect("a shed frame, not a bare close");
    match protocol::decode_response(&payload).unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind.name(), "rejected");
            assert!(message.contains("connection limit"), "{message}");
        }
        other => panic!("shed connection got {other:?}"),
    }
    drop(shed);
    // Releasing one admitted connection reopens the door.
    held.pop();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = Client::connect(addr).unwrap();
        if retry.ping().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed after a close");
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(held);
    assert_baseline(&server, 0);
    server.shutdown();
}

/// The combined storm: pipelined queries, partial frames, cursor opens and
/// instant deaths, all concurrently — then everything drains.
#[test]
fn mixed_churn_storm_returns_to_baseline() {
    let server = Server::start(ServerConfig {
        io_idle_timeout: Duration::from_millis(300),
        cursor_idle_timeout: Duration::from_millis(200),
        tenant_max_active: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..20)
        .map(|i| {
            std::thread::spawn(move || match i % 4 {
                // Pipelined pair, read both, clean close.
                0 => {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    let mut bytes = frame(&protocol::encode_request(&Request::Ping));
                    bytes.extend_from_slice(&frame(&protocol::encode_request(&query("p(X)"))));
                    stream.write_all(&bytes).unwrap();
                    for _ in 0..2 {
                        let payload = protocol::read_frame(&mut stream).unwrap().unwrap();
                        protocol::decode_response(&payload).unwrap();
                    }
                }
                // Tenant-tagged query, dropped before the answer.
                1 => {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let req = Request::Query(Box::new(QueryRequest {
                        program: PROGRAM.to_string(),
                        query: "nrev([1,2,3,4,5,6,7,8], R)".to_string(),
                        tenant: Some(format!("storm-{}", i % 2)),
                        ..QueryRequest::default()
                    }));
                    stream.write_all(&frame(&protocol::encode_request(&req))).unwrap();
                    drop(stream);
                }
                // Cursor opened, owner dies instantly.
                2 => {
                    let mut client = Client::connect(addr).unwrap();
                    let _ = client.query_open(QueryRequest {
                        program: PROGRAM.to_string(),
                        query: "p(X)".to_string(),
                        ..QueryRequest::default()
                    });
                    drop(client);
                }
                // Partial frame, then death (no stall: dies immediately).
                _ => {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.write_all(&[0x00, 0x00, 0x01]).unwrap();
                    drop(stream);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // Orphaned cursors evict on their idle deadline; all other gauges
    // must drain regardless.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.stats().get("parked_cursors").unwrap() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "storm cursors never evicted");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_baseline(&server, 0);
    // The metrics plane agrees with the stats plane.
    let metrics = server.metrics_text();
    assert!(metrics.contains("pwam_connections_active 0"), "metrics gauge should read zero after the storm");
    server.shutdown();
}
