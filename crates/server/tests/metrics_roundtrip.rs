//! End-to-end tests of the observability plane: a real `Server` scraped
//! through the `metrics` and `events` verbs over the wire.

use pwam_obs::{parse_sample, sum_family};
use pwam_server::{Client, PoolConfig, QueryRequest, Server, ServerConfig};
use std::time::Duration;

fn start(pool_size: usize) -> Server {
    Server::start(ServerConfig {
        pool: PoolConfig { size: pool_size, max_queue: 8, queue_timeout: Duration::from_millis(500) },
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

const NREV: &str = "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).\n\
                    nrev([],[]).\nnrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).";

fn nrev_query() -> QueryRequest {
    QueryRequest {
        program: NREV.to_string(),
        query: "nrev([1,2,3,4,5,6,7,8],R)".to_string(),
        ..QueryRequest::default()
    }
}

#[test]
fn metrics_exposition_covers_every_layer() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        client.query(nrev_query()).unwrap();
    }
    let text = client.metrics().unwrap();

    // Mirrored server counters.
    assert_eq!(parse_sample(&text, "pwam_queries_total"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_connections_total"), Some(1));
    assert!(parse_sample(&text, "pwam_instructions_total").unwrap() > 0);

    // Pool mirrors and gauges: one slot built cold, the rest ran warm,
    // and nothing is executing at scrape time.
    assert_eq!(parse_sample(&text, "pwam_pool_requests_total"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_pool_cold_builds_total"), Some(1));
    assert_eq!(parse_sample(&text, "pwam_pool_warm_hits_total"), Some(2));
    assert_eq!(parse_sample(&text, "pwam_pool_busy_slots"), Some(0));
    assert_eq!(parse_sample(&text, "pwam_cache_programs"), Some(1));

    // Latency histograms: every query observed once into each family.
    assert_eq!(parse_sample(&text, "pwam_query_request_us_count"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_query_execute_us_count"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_query_queue_wait_us_count"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_query_compile_us_count"), Some(3));
    // Execute time is part of each request, so the request sum dominates.
    let req_sum = parse_sample(&text, "pwam_query_request_us_sum").unwrap();
    let exec_sum = parse_sample(&text, "pwam_query_execute_us_sum").unwrap();
    assert!(req_sum >= exec_sum, "request {req_sum} < execute {exec_sum}");

    // Per-predicate attribution folded from the runs: the profile is
    // call-exact, so the per-predicate total equals the instruction total.
    let profiled = sum_family(&text, "pwam_predicate_instructions_total");
    let instructions = parse_sample(&text, "pwam_instructions_total").unwrap();
    assert_eq!(profiled, instructions);
    assert!(
        parse_sample(&text, "pwam_predicate_instructions_total{predicate=\"app/3\"}").unwrap() > 0,
        "app/3 missing from: {text}"
    );

    // Per-PE scheduler telemetry: a sequential run still reports its
    // batch exits (at least the final parking one per run).
    assert!(sum_family(&text, "pwam_pe_batch_exits_park_total") >= 3);

    server.shutdown();
}

#[test]
fn parallel_queries_surface_pe_telemetry() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let req = QueryRequest {
        program: format!("{NREV}\nmain(A,B) :- nrev([1,2,3,4,5],A) & nrev([6,7,8,9],B)."),
        query: "main(A,B)".to_string(),
        parallel: true,
        workers: 2,
        ..QueryRequest::default()
    };
    for _ in 0..4 {
        client.query(req.clone()).unwrap();
    }
    let text = client.metrics().unwrap();
    // Two PEs ran: the steal-scan family has a series per PE and the
    // second PE (which starts idle) must have scanned at least once.
    assert!(
        parse_sample(&text, "pwam_pe_steal_attempts_total{pe=\"1\"}").unwrap() > 0,
        "PE 1 never scanned for work: {text}"
    );
    assert!(sum_family(&text, "pwam_pe_steals_total") > 0, "no goal was ever stolen: {text}");
    server.shutdown();
}

#[test]
fn flight_recorder_traces_query_and_cursor_lifecycles() {
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();
    client.query(nrev_query()).unwrap();

    let cursor = client
        .query_open(QueryRequest {
            program: "p(1).\np(2).".to_string(),
            query: "p(X)".to_string(),
            ..QueryRequest::default()
        })
        .unwrap();
    assert!(client.query_next(cursor).unwrap().is_some());
    assert!(client.query_next(cursor).unwrap().is_some());
    assert!(client.query_next(cursor).unwrap().is_none(), "two answers then exhaustion");

    let events = client.events(None).unwrap();
    let lines: Vec<&str> = events.lines().collect();
    assert!(lines.iter().any(|l| l.contains("query status=success")), "one-shot query missing: {events}");
    assert!(lines.iter().any(|l| l.contains(&format!("open cursor={cursor}"))), "{events}");
    assert_eq!(
        lines.iter().filter(|l| l.contains(&format!("resume cursor={cursor} status=answer"))).count(),
        2,
        "{events}"
    );
    assert!(
        lines.iter().any(|l| l.contains(&format!("resume cursor={cursor} status=exhausted"))),
        "{events}"
    );

    // Limited reads return the newest events only.
    let tail = client.events(Some(1)).unwrap();
    assert_eq!(tail.lines().count(), 1);
    assert_eq!(tail.trim_end(), *lines.last().unwrap());

    // Exhaustion folded the cursor's run into the registry: the cursor's
    // instructions are attributed per predicate too.
    let text = client.metrics().unwrap();
    assert_eq!(parse_sample(&text, "pwam_query_resume_us_count"), Some(3));
    let profiled = sum_family(&text, "pwam_predicate_instructions_total");
    let instructions = parse_sample(&text, "pwam_instructions_total").unwrap();
    assert_eq!(profiled, instructions);

    server.shutdown();
}

#[test]
fn evicted_cursors_hit_the_recorder_and_the_gauges() {
    let server = Server::start(ServerConfig {
        pool: PoolConfig { size: 1, max_queue: 8, queue_timeout: Duration::from_millis(500) },
        cursor_idle_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client
        .query_open(QueryRequest {
            program: "p(1).".to_string(),
            query: "p(X)".to_string(),
            ..QueryRequest::default()
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // Any metrics scrape runs the lazy eviction sweep.
    let text = client.metrics().unwrap();
    assert_eq!(parse_sample(&text, "pwam_cursors_evicted_total"), Some(1));
    assert_eq!(parse_sample(&text, "pwam_cursors_parked"), Some(0));
    let events = client.events(None).unwrap();
    assert!(events.lines().any(|l| l.contains(&format!("evict cursor={cursor}"))), "{events}");
    server.shutdown();
}
