//! End-to-end tests of the observability plane: a real `Server` scraped
//! through the `metrics` and `events` verbs over the wire.

use pwam_obs::{parse_sample, sum_family};
use pwam_server::{Client, ErrorKind, PoolConfig, QueryRequest, Request, Response, Server, ServerConfig};
use std::time::Duration;

fn start(pool_size: usize) -> Server {
    Server::start(ServerConfig {
        pool: PoolConfig { size: pool_size, max_queue: 8, queue_timeout: Duration::from_millis(500) },
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

const NREV: &str = "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).\n\
                    nrev([],[]).\nnrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).";

fn nrev_query() -> QueryRequest {
    QueryRequest {
        program: NREV.to_string(),
        query: "nrev([1,2,3,4,5,6,7,8],R)".to_string(),
        ..QueryRequest::default()
    }
}

#[test]
fn metrics_exposition_covers_every_layer() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        client.query(nrev_query()).unwrap();
    }
    let text = client.metrics().unwrap();

    // Mirrored server counters.
    assert_eq!(parse_sample(&text, "pwam_queries_total"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_connections_total"), Some(1));
    assert!(parse_sample(&text, "pwam_instructions_total").unwrap() > 0);

    // Pool mirrors and gauges: one slot built cold, the rest ran warm,
    // and nothing is executing at scrape time.
    assert_eq!(parse_sample(&text, "pwam_pool_requests_total"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_pool_cold_builds_total"), Some(1));
    assert_eq!(parse_sample(&text, "pwam_pool_warm_hits_total"), Some(2));
    assert_eq!(parse_sample(&text, "pwam_pool_busy_slots"), Some(0));
    assert_eq!(parse_sample(&text, "pwam_cache_programs"), Some(1));

    // Latency histograms: every query observed once into each family.
    assert_eq!(parse_sample(&text, "pwam_query_request_us_count"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_query_execute_us_count"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_query_queue_wait_us_count"), Some(3));
    assert_eq!(parse_sample(&text, "pwam_query_compile_us_count"), Some(3));
    // Execute time is part of each request, so the request sum dominates.
    let req_sum = parse_sample(&text, "pwam_query_request_us_sum").unwrap();
    let exec_sum = parse_sample(&text, "pwam_query_execute_us_sum").unwrap();
    assert!(req_sum >= exec_sum, "request {req_sum} < execute {exec_sum}");

    // Per-predicate attribution folded from the runs: the profile is
    // call-exact, so the per-predicate total equals the instruction total.
    let profiled = sum_family(&text, "pwam_predicate_instructions_total");
    let instructions = parse_sample(&text, "pwam_instructions_total").unwrap();
    assert_eq!(profiled, instructions);
    assert!(
        parse_sample(&text, "pwam_predicate_instructions_total{predicate=\"app/3\"}").unwrap() > 0,
        "app/3 missing from: {text}"
    );

    // Per-PE scheduler telemetry: a sequential run still reports its
    // batch exits (at least the final parking one per run).
    assert!(sum_family(&text, "pwam_pe_batch_exits_park_total") >= 3);

    server.shutdown();
}

#[test]
fn parallel_queries_surface_pe_telemetry() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let req = QueryRequest {
        program: format!("{NREV}\nmain(A,B) :- nrev([1,2,3,4,5],A) & nrev([6,7,8,9],B)."),
        query: "main(A,B)".to_string(),
        parallel: true,
        workers: 2,
        ..QueryRequest::default()
    };
    for _ in 0..4 {
        client.query(req.clone()).unwrap();
    }
    let text = client.metrics().unwrap();
    // Two PEs ran: the steal-scan family has a series per PE and the
    // second PE (which starts idle) must have scanned at least once.
    assert!(
        parse_sample(&text, "pwam_pe_steal_attempts_total{pe=\"1\"}").unwrap() > 0,
        "PE 1 never scanned for work: {text}"
    );
    assert!(sum_family(&text, "pwam_pe_steals_total") > 0, "no goal was ever stolen: {text}");
    server.shutdown();
}

#[test]
fn flight_recorder_traces_query_and_cursor_lifecycles() {
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();
    client.query(nrev_query()).unwrap();

    let cursor = client
        .query_open(QueryRequest {
            program: "p(1).\np(2).".to_string(),
            query: "p(X)".to_string(),
            ..QueryRequest::default()
        })
        .unwrap();
    assert!(client.query_next(cursor).unwrap().is_some());
    assert!(client.query_next(cursor).unwrap().is_some());
    assert!(client.query_next(cursor).unwrap().is_none(), "two answers then exhaustion");

    let events = client.events(None).unwrap();
    let lines: Vec<&str> = events.lines().collect();
    assert!(lines.iter().any(|l| l.contains("query status=success")), "one-shot query missing: {events}");
    assert!(lines.iter().any(|l| l.contains(&format!("open cursor={cursor}"))), "{events}");
    assert_eq!(
        lines.iter().filter(|l| l.contains(&format!("resume cursor={cursor} status=answer"))).count(),
        2,
        "{events}"
    );
    assert!(
        lines.iter().any(|l| l.contains(&format!("resume cursor={cursor} status=exhausted"))),
        "{events}"
    );

    // Limited reads return the newest events only.
    let tail = client.events(Some(1)).unwrap();
    assert_eq!(tail.lines().count(), 1);
    assert_eq!(tail.trim_end(), *lines.last().unwrap());

    // Exhaustion folded the cursor's run into the registry: the cursor's
    // instructions are attributed per predicate too.
    let text = client.metrics().unwrap();
    assert_eq!(parse_sample(&text, "pwam_query_resume_us_count"), Some(3));
    let profiled = sum_family(&text, "pwam_predicate_instructions_total");
    let instructions = parse_sample(&text, "pwam_instructions_total").unwrap();
    assert_eq!(profiled, instructions);

    server.shutdown();
}

#[test]
fn preemption_counters_distinguish_deadline_from_fuel() {
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();

    // One-shot fuel exhaustion: terminal for the request, reason="fuel".
    let starved = QueryRequest {
        query: "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],R)".to_string(),
        fuel: Some(50),
        ..nrev_query()
    };
    match client.query(starved).unwrap() {
        Response::Error { kind: ErrorKind::Fuel, .. } => {}
        other => panic!("starved query should exhaust its fuel: {other:?}"),
    }

    // Wall-clock kill: divergent recursion against a real deadline,
    // reason="deadline".
    let diverging = QueryRequest {
        program: "loop :- loop.".to_string(),
        query: "loop".to_string(),
        deadline_ms: Some(50),
        ..QueryRequest::default()
    };
    match client.query(diverging).unwrap() {
        Response::Error { kind: ErrorKind::Deadline, .. } => {}
        other => panic!("divergent query should hit its deadline: {other:?}"),
    }

    // Cursor legs: fuel re-arms per `query-next`, so a starved cursor is
    // preempted some number of times and then *completes* — every
    // preempted leg counts, the cursor survives each one.
    let cursor = client
        .query_open(QueryRequest {
            query: "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],R)".to_string(),
            fuel: Some(300),
            ..nrev_query()
        })
        .unwrap();
    let mut fuel_legs = 0u64;
    loop {
        match client.request(&Request::QueryNext { cursor }).unwrap() {
            Response::Error { kind: ErrorKind::Fuel, .. } => fuel_legs += 1,
            Response::Answer(a) => {
                assert!(a.success, "the starved cursor must still reach its answer");
                break;
            }
            other => panic!("unexpected cursor step: {other:?}"),
        }
        assert!(fuel_legs < 10_000, "cursor never finished under fuel");
    }
    assert!(fuel_legs >= 1, "fuel 300 must preempt nrev/16 at least once");
    client.query_close(cursor).unwrap();

    let text = client.metrics().unwrap();
    // The preemption family splits by reason and reconciles exactly with
    // the per-kind counters.
    assert_eq!(parse_sample(&text, "pwam_query_preempted_total{reason=\"fuel\"}"), Some(1 + fuel_legs));
    assert_eq!(parse_sample(&text, "pwam_query_preempted_total{reason=\"deadline\"}"), Some(1));
    assert_eq!(sum_family(&text, "pwam_query_preempted_total"), 2 + fuel_legs);
    assert_eq!(parse_sample(&text, "pwam_fuel_errors_total"), Some(1));
    assert_eq!(parse_sample(&text, "pwam_fuel_preemptions_total"), Some(fuel_legs));
    assert_eq!(parse_sample(&text, "pwam_deadline_errors_total"), Some(1));

    // The stats plane tells the same story.
    let stats = server.stats();
    assert_eq!(stats.get("fuel_errors"), Some(1));
    assert_eq!(stats.get("fuel_preemptions"), Some(fuel_legs));
    assert_eq!(stats.get("deadline_errors"), Some(1));

    // The flight recorder saw the preempted legs as scheduling events.
    let events = client.events(None).unwrap();
    assert_eq!(events.lines().filter(|l| l.contains("status=fuel")).count() as u64, fuel_legs, "{events}");
    server.shutdown();
}

#[test]
fn quota_rejections_surface_in_metrics_and_stats() {
    let server = Server::start(ServerConfig {
        pool: PoolConfig { size: 2, max_queue: 8, queue_timeout: Duration::from_millis(500) },
        tenant_max_active: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // Occupy the tenant's single slot with a query that runs until its
    // deadline, then collide with it from another connection.
    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(QueryRequest {
            program: "loop :- loop.".to_string(),
            query: "loop".to_string(),
            deadline_ms: Some(1_000),
            tenant: Some("acme".to_string()),
            ..QueryRequest::default()
        })
    });
    std::thread::sleep(Duration::from_millis(200));
    let mut client = Client::connect(addr).unwrap();
    // While the holder runs, the tenant gauge shows it...
    let text = client.metrics().unwrap();
    assert_eq!(parse_sample(&text, "pwam_tenant_active_queries{tenant=\"acme\"}"), Some(1));
    // ...and a second request for the same tenant bounces at admission.
    let response = client
        .query(QueryRequest {
            program: "p(1).".to_string(),
            query: "p(X)".to_string(),
            tenant: Some("acme".to_string()),
            ..QueryRequest::default()
        })
        .unwrap();
    match response {
        Response::Error { kind: ErrorKind::Quota, message } => {
            assert!(message.contains("acme"), "message names the tenant: {message}");
        }
        other => panic!("expected a quota rejection: {other:?}"),
    }
    // A different tenant is unaffected by acme's saturation.
    match client
        .query(QueryRequest {
            program: "p(1).".to_string(),
            query: "p(X)".to_string(),
            tenant: Some("globex".to_string()),
            ..QueryRequest::default()
        })
        .unwrap()
    {
        Response::Answer(a) => assert!(a.success),
        other => panic!("other tenants must still be served: {other:?}"),
    }
    holder.join().unwrap().unwrap();

    let text = client.metrics().unwrap();
    assert_eq!(parse_sample(&text, "pwam_quota_rejections_total"), Some(1));
    assert!(parse_sample(&text, "pwam_tenants_admitted_total").unwrap() >= 2);
    // Idle tenants drop out of the gauge entirely (no stale zero series).
    assert_eq!(parse_sample(&text, "pwam_tenant_active_queries{tenant=\"acme\"}"), None);
    let stats = server.stats();
    assert_eq!(stats.get("quota_rejections"), Some(1));
    assert_eq!(stats.get("tenants_active"), Some(0));
    server.shutdown();
}

#[test]
fn evicted_cursors_hit_the_recorder_and_the_gauges() {
    let server = Server::start(ServerConfig {
        pool: PoolConfig { size: 1, max_queue: 8, queue_timeout: Duration::from_millis(500) },
        cursor_idle_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client
        .query_open(QueryRequest {
            program: "p(1).".to_string(),
            query: "p(X)".to_string(),
            ..QueryRequest::default()
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // Any metrics scrape runs the lazy eviction sweep.
    let text = client.metrics().unwrap();
    assert_eq!(parse_sample(&text, "pwam_cursors_evicted_total"), Some(1));
    assert_eq!(parse_sample(&text, "pwam_cursors_parked"), Some(0));
    let events = client.events(None).unwrap();
    assert!(events.lines().any(|l| l.contains(&format!("evict cursor={cursor}"))), "{events}");
    server.shutdown();
}
