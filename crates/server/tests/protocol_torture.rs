//! Protocol-torture suite: the wire layer under adversarial framing.
//!
//! Every test here speaks to the server over raw sockets — no
//! [`pwam_server::Client`] — so the byte stream can be split, coalesced,
//! truncated, and corrupted in ways a well-behaved client never would.
//! The server's contract under torture is narrow and absolute:
//!
//! * it never panics and never wedges;
//! * every complete, well-formed frame gets exactly one well-framed
//!   response, in request order, no matter how the bytes arrived;
//! * a malformed *request* in an intact frame gets a framed `protocol`
//!   error and the connection survives;
//! * an unframeable byte stream (oversized length prefix, non-UTF-8
//!   payload) gets one final framed error and then a close;
//! * no connection, however it dies, leaks its accounting slot.

use proptest::prelude::*;
use pwam_server::protocol::{self, ErrorKind, QueryRequest, Request, Response, MAX_FRAME_BYTES};
use pwam_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const PROGRAM: &str = "p(1).\np(2).\nq(a).";

/// One shared server for the whole suite: cases differ in the bytes they
/// send, not in server configuration, and pool startup is the expensive
/// part.  Never shut down (the process exit reaps it).
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::start(ServerConfig {
            default_deadline: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        })
        .expect("start torture server")
    })
}

fn connect() -> TcpStream {
    let stream = TcpStream::connect(server().addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// Frame a payload exactly as the protocol does.
fn frame(payload: &str) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Read one framed response, decoded.
fn read_response(stream: &mut TcpStream) -> Response {
    let payload = protocol::read_frame(stream).expect("read frame").expect("unexpected EOF");
    protocol::decode_response(&payload).expect("well-formed response")
}

/// The server must close the connection (EOF) after at most a few stray
/// bytes; a read timeout here means it wrongly kept the connection alive.
fn expect_eof(stream: &mut TcpStream) {
    let mut scratch = [0u8; 256];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(_) => continue, // draining whatever was in flight
            Err(e) => panic!("expected clean EOF, got error: {e}"),
        }
    }
}

/// Wait for the active-connection gauge to drain back to zero: closed
/// connections must always return their slot, whatever killed them.
fn assert_connections_drain() {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server().stats();
        let active = stats.get("connections_active").unwrap();
        // This probe's own connection is gone by the time stats() runs
        // in-process, so fully drained really is zero.
        if active == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "connection slots leaked: {active} still active");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A scripted request and the response shape it must produce.
#[derive(Debug, Clone)]
enum Scripted {
    Ping,
    Query,
    BadVerb,
    BadHeader,
}

impl Scripted {
    fn payload(&self) -> String {
        match self {
            Scripted::Ping => protocol::encode_request(&Request::Ping),
            Scripted::Query => protocol::encode_request(&Request::Query(Box::new(QueryRequest {
                program: PROGRAM.to_string(),
                query: "p(X)".to_string(),
                ..QueryRequest::default()
            }))),
            Scripted::BadVerb => "transmogrify\nurgency high\n\n".to_string(),
            Scripted::BadHeader => "query\nworkers lots\nprogram-bytes 0\nquery-bytes 0\n\n".to_string(),
        }
    }

    fn check(&self, response: &Response) {
        match self {
            Scripted::Ping => assert!(matches!(response, Response::Pong), "ping → {response:?}"),
            Scripted::Query => match response {
                Response::Answer(a) => assert!(a.success, "p(X) must succeed"),
                other => panic!("query → {other:?}"),
            },
            Scripted::BadVerb | Scripted::BadHeader => match response {
                Response::Error { kind: ErrorKind::Protocol, .. } => {}
                other => panic!("malformed request → {other:?}"),
            },
        }
    }
}

fn arb_script() -> impl Strategy<Value = Vec<Scripted>> {
    prop::collection::vec(
        prop_oneof![
            Just(Scripted::Ping),
            Just(Scripted::Query),
            Just(Scripted::BadVerb),
            Just(Scripted::BadHeader),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fundamental framing property: however the byte stream is cut
    /// into TCP writes — mid-length-prefix, mid-payload, many frames
    /// coalesced into one write — every request gets its response, in
    /// order.
    #[test]
    fn responses_survive_arbitrary_write_boundaries(
        script in arb_script(),
        cuts in prop::collection::vec(1usize..4096, 0..12),
    ) {
        let bytes: Vec<u8> = script.iter().flat_map(|s| frame(&s.payload())).collect();
        // Turn the cut lengths into a partition of the byte stream.
        let mut stream = connect();
        let mut sent = 0;
        for cut in cuts {
            if sent >= bytes.len() {
                break;
            }
            let end = (sent + cut).min(bytes.len());
            stream.write_all(&bytes[sent..end]).unwrap();
            stream.flush().unwrap();
            sent = end;
        }
        stream.write_all(&bytes[sent..]).unwrap();
        for scripted in &script {
            scripted.check(&read_response(&mut stream));
        }
        drop(stream);
        assert_connections_drain();
    }

    /// Pipelining: the whole script lands in one write before anything is
    /// read back.  Responses must come back exactly in request order
    /// (the reorder buffer under the heaviest interleaving).
    #[test]
    fn pipelined_requests_answer_in_order(script in arb_script()) {
        let bytes: Vec<u8> = script.iter().flat_map(|s| frame(&s.payload())).collect();
        let mut stream = connect();
        stream.write_all(&bytes).unwrap();
        for scripted in &script {
            scripted.check(&read_response(&mut stream));
        }
        drop(stream);
        assert_connections_drain();
    }

    /// Garbage payloads inside intact frames: the connection survives
    /// with a framed protocol error each time, and still answers a real
    /// request afterwards.
    #[test]
    fn garbage_in_a_well_formed_frame_is_recoverable(
        garbage in prop::collection::vec(
            // Printable-ish ASCII so the payload stays valid UTF-8: UTF-8
            // violations are frame-fatal and tested separately.
            prop::collection::vec(0x20u8..0x7f, 0..64),
            1..5,
        ),
    ) {
        let mut stream = connect();
        for junk in &garbage {
            let payload = String::from_utf8(junk.clone()).unwrap();
            stream.write_all(&frame(&payload)).unwrap();
            match read_response(&mut stream) {
                Response::Error { kind: ErrorKind::Protocol, .. } => {}
                other => panic!("garbage frame → {other:?}"),
            }
        }
        stream.write_all(&frame(&protocol::encode_request(&Request::Ping))).unwrap();
        assert!(matches!(read_response(&mut stream), Response::Pong));
        drop(stream);
        assert_connections_drain();
    }

    /// Truncation at every possible byte boundary, then an abrupt close:
    /// the server must treat it as a clean disconnect — no response owed,
    /// no panic, no leaked slot — and keep serving others.
    #[test]
    fn truncated_streams_never_leak(cut in 0usize..64) {
        let bytes = frame(&protocol::encode_request(&Request::Query(Box::new(QueryRequest {
            program: PROGRAM.to_string(),
            query: "q(X)".to_string(),
            ..QueryRequest::default()
        }))));
        let cut = cut.min(bytes.len().saturating_sub(1));
        let mut stream = connect();
        stream.write_all(&bytes[..cut]).unwrap();
        drop(stream); // mid-length-prefix when cut < 4, mid-payload after
        assert_connections_drain();
        // The server is still healthy.
        let mut probe = connect();
        probe.write_all(&frame(&protocol::encode_request(&Request::Ping))).unwrap();
        assert!(matches!(read_response(&mut probe), Response::Pong));
    }

    /// Oversized length prefixes: there is no frame boundary to trust any
    /// more, so the server sends one final framed error and closes.
    #[test]
    fn oversized_length_prefix_errors_then_closes(extra in 1u32..u32::MAX - MAX_FRAME_BYTES) {
        let len = MAX_FRAME_BYTES + extra;
        let mut stream = connect();
        stream.write_all(&len.to_be_bytes()).unwrap();
        match read_response(&mut stream) {
            Response::Error { kind: ErrorKind::Protocol, message } => {
                assert!(message.contains("exceeds"), "unexpected message: {message}");
            }
            other => panic!("oversized frame → {other:?}"),
        }
        expect_eof(&mut stream);
        assert_connections_drain();
    }
}

/// Non-UTF-8 payload bytes inside a "valid" frame: frame-fatal — one
/// framed error, then close.
#[test]
fn non_utf8_payload_errors_then_closes() {
    let mut stream = connect();
    let junk = [0xffu8, 0xfe, 0x00, 0x80, 0xc3];
    let mut bytes = (junk.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&junk);
    stream.write_all(&bytes).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::Protocol, message } => {
            assert!(message.contains("UTF-8"), "unexpected message: {message}");
        }
        other => panic!("non-UTF-8 frame → {other:?}"),
    }
    expect_eof(&mut stream);
    assert_connections_drain();
}

/// A zero-length frame is a well-formed frame holding a malformed (empty)
/// request: framed error, connection survives.
#[test]
fn empty_frame_is_a_recoverable_protocol_error() {
    let mut stream = connect();
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    match read_response(&mut stream) {
        Response::Error { kind: ErrorKind::Protocol, .. } => {}
        other => panic!("empty frame → {other:?}"),
    }
    stream.write_all(&frame(&protocol::encode_request(&Request::Ping))).unwrap();
    assert!(matches!(read_response(&mut stream), Response::Pong));
}

/// Heavy pipelining across many simultaneous connections: every
/// connection gets its full, ordered response stream, and the gauge
/// drains to zero afterwards.
#[test]
fn interleaved_connections_each_keep_their_order() {
    let handles: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = connect();
                let script = [Scripted::Ping, Scripted::Query, Scripted::BadVerb, Scripted::Ping];
                let mut bytes = Vec::new();
                for s in &script {
                    bytes.extend_from_slice(&frame(&s.payload()));
                }
                // Vary the write pattern per thread: one big write, byte
                // dribble, or two halves.
                match i % 3 {
                    0 => stream.write_all(&bytes).unwrap(),
                    1 => {
                        for chunk in bytes.chunks(7) {
                            stream.write_all(chunk).unwrap();
                        }
                    }
                    _ => {
                        let mid = bytes.len() / 2;
                        stream.write_all(&bytes[..mid]).unwrap();
                        std::thread::sleep(Duration::from_millis(5));
                        stream.write_all(&bytes[mid..]).unwrap();
                    }
                }
                for s in &script {
                    s.check(&read_response(&mut stream));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("torture thread panicked");
    }
    assert_connections_drain();
}
