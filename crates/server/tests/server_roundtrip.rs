//! End-to-end tests of the serving subsystem: a real `Server` on an
//! ephemeral port, driven through the wire protocol by `Client`s.

use pwam_benchmarks::{benchmark, BenchmarkId, Scale};
use pwam_server::{Client, ErrorKind, PoolConfig, QueryRequest, Response, Server, ServerConfig};
use rapwam::{DeterminismMode, SchedulerKind};
use std::time::Duration;

fn start(pool_size: usize, max_queue: usize) -> Server {
    Server::start(ServerConfig {
        pool: PoolConfig { size: pool_size, max_queue, queue_timeout: Duration::from_millis(500) },
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn answer(resp: Response) -> pwam_server::AnswerResponse {
    match resp {
        Response::Answer(a) => a,
        other => panic!("expected an answer, got {other:?}"),
    }
}

#[test]
fn ping_stats_and_simple_query() {
    let server = start(2, 8);
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let a = answer(
        client
            .query(QueryRequest {
                program: "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).".to_string(),
                query: "app([1,2], [3], X)".to_string(),
                ..QueryRequest::default()
            })
            .unwrap(),
    );
    assert!(a.success);
    assert_eq!(a.bindings, vec![("X".to_string(), "[1,2,3]".to_string())]);
    assert!(a.instructions > 0);

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("queries"), Some(1));
    assert_eq!(stats.get("cache_programs"), Some(1));
    // The stats verb reports cumulative executed instructions and the
    // derived cumulative throughput: after one successful query the
    // instruction counter must equal that query's answer-level count (and
    // the MLIPS figure is present — 0 only if the run was faster than the
    // microsecond clock).
    assert_eq!(stats.get("instructions"), Some(a.instructions));
    assert!(stats.get("engine_micros").is_some());
    assert!(stats.get("mlips_x1000").is_some());
    server.shutdown();
}

#[test]
fn repeated_queries_reuse_engines_and_compilations() {
    let server = start(1, 8);
    let mut client = Client::connect(server.addr()).unwrap();
    let req = || QueryRequest {
        program: "p(1).\np(2).\np(3).".to_string(),
        query: "p(X)".to_string(),
        ..QueryRequest::default()
    };
    let first = answer(client.query(req()).unwrap());
    assert!(!first.warm, "first run builds cold");
    for _ in 0..5 {
        let a = answer(client.query(req()).unwrap());
        assert!(a.warm, "subsequent runs must reuse the slot's arenas");
        assert_eq!(a.bindings, first.bindings);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("pool_cold_builds"), Some(1));
    assert_eq!(stats.get("pool_warm_hits"), Some(5));
    assert_eq!(stats.get("cache_program_misses"), Some(1));
    assert_eq!(stats.get("cache_program_hits"), Some(5));
    assert_eq!(stats.get("cache_compiled_queries"), Some(1));
    server.shutdown();
}

#[test]
fn failures_compile_errors_and_protocol_limits_are_reported() {
    let server = start(1, 8);
    let mut client = Client::connect(server.addr()).unwrap();

    // A failing query is an answer, not an error.
    let a = answer(
        client
            .query(QueryRequest {
                program: "p(1).".to_string(),
                query: "p(2)".to_string(),
                ..QueryRequest::default()
            })
            .unwrap(),
    );
    assert!(!a.success);
    assert!(a.bindings.is_empty());

    // Unparsable program.
    match client
        .query(QueryRequest {
            program: "p(1".to_string(),
            query: "p(X)".to_string(),
            ..QueryRequest::default()
        })
        .unwrap()
    {
        Response::Error { kind: ErrorKind::Compile, .. } => {}
        other => panic!("expected a compile error, got {other:?}"),
    }

    // Absurd worker counts are refused before touching the pool.
    match client
        .query(QueryRequest {
            program: "p(1).".to_string(),
            query: "p(X)".to_string(),
            workers: 10_000,
            ..QueryRequest::default()
        })
        .unwrap()
    {
        Response::Error { kind: ErrorKind::Protocol, .. } => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn runaway_queries_hit_their_deadline() {
    let server = start(1, 8);
    let mut client = Client::connect(server.addr()).unwrap();
    match client
        .query(QueryRequest {
            program: "loop :- loop.".to_string(),
            query: "loop".to_string(),
            deadline_ms: Some(150),
            ..QueryRequest::default()
        })
        .unwrap()
    {
        Response::Error { kind: ErrorKind::Deadline, .. } => {}
        other => panic!("expected a deadline error, got {other:?}"),
    }
    // The slot must be usable again afterwards (cold, since the erroring
    // engine's memory is discarded).
    let a = answer(
        client
            .query(QueryRequest {
                program: "p(1).".to_string(),
                query: "p(X)".to_string(),
                ..QueryRequest::default()
            })
            .unwrap(),
    );
    assert!(a.success);
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("deadline_errors"), Some(1));
    assert_eq!(stats.get("pool_run_errors"), Some(1));
    server.shutdown();
}

#[test]
fn saturated_pool_sheds_load() {
    // One slot, no queueing: while a slow query holds the slot, a second
    // request must be rejected immediately.
    let server = Server::start(ServerConfig {
        pool: PoolConfig { size: 1, max_queue: 0, queue_timeout: Duration::from_millis(100) },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    std::thread::scope(|s| {
        let slow = s.spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            // Roughly a second of engine work at debug speeds; backtracking
            // over `memb × memb` burns instructions in constant heap space.
            c.query(QueryRequest {
                program: "range(N, N, [N]) :- !.\n\
                          range(I, N, [I|T]) :- I < N, J is I + 1, range(J, N, T).\n\
                          memb(X, [X|_]).\n\
                          memb(X, [_|T]) :- memb(X, T).\n\
                          burn(L) :- memb(_, L), memb(_, L), fail.\n\
                          burn(_).\n\
                          slow(N) :- range(1, N, L), burn(L).\n"
                    .to_string(),
                query: "slow(700)".to_string(),
                deadline_ms: Some(30_000),
                ..QueryRequest::default()
            })
            .unwrap()
        });
        // Give the slow query time to claim the slot, then collide.
        std::thread::sleep(Duration::from_millis(150));
        let mut c = Client::connect(addr).unwrap();
        let colliding = c
            .query(QueryRequest {
                program: "p(1).".to_string(),
                query: "p(X)".to_string(),
                ..QueryRequest::default()
            })
            .unwrap();
        match colliding {
            Response::Error { kind: ErrorKind::Rejected, .. } => {}
            other => panic!("expected an admission rejection while the slot was held, got {other:?}"),
        }
        let slow_result = slow.join().unwrap();
        assert!(matches!(slow_result, Response::Answer(_)), "slow query result: {slow_result:?}");
        assert_eq!(server.stats().get("pool_rejections"), Some(1));
    });
    server.shutdown();
}

#[test]
fn registry_benchmarks_run_through_the_server_in_every_mode() {
    let server = start(2, 16);
    let mut client = Client::connect(server.addr()).unwrap();
    for id in [BenchmarkId::Deriv, BenchmarkId::Tak, BenchmarkId::Queens] {
        let b = benchmark(id, Scale::Small);
        for (scheduler, determinism, workers) in [
            (SchedulerKind::Interleaved, DeterminismMode::Strict, 2),
            (SchedulerKind::Threaded, DeterminismMode::Strict, 2),
            (SchedulerKind::Threaded, DeterminismMode::Relaxed, 4),
        ] {
            let a = answer(
                client
                    .query(QueryRequest {
                        program: b.program.clone(),
                        query: b.query.clone(),
                        workers,
                        scheduler,
                        determinism,
                        deadline_ms: Some(60_000),
                        ..QueryRequest::default()
                    })
                    .unwrap(),
            );
            assert!(a.success, "{} failed on {scheduler:?}/{determinism:?}", id.name());
            assert!(a.parcalls > 0, "{} executed no parallel calls", id.name());
        }
    }
    // Same program across modes: the program cache sees one entry per
    // benchmark, and the pool reuses arenas whenever the worker count of
    // the previous run matches.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("cache_programs"), Some(3));
    assert!(stats.get("pool_warm_hits").unwrap() > 0, "no warm reuse across benchmark runs");
    server.shutdown();
}

#[test]
fn shutdown_request_stops_the_server() {
    let server = start(1, 4);
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    server.wait();
    // New connections are now refused (or reset before a response).
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.ping().is_err(),
    };
    assert!(refused, "server still serving after shutdown");
}
