//! End-to-end tests of the cursor verbs: all-solutions streaming over the
//! wire, cursor lifetime across pool-slot churn, idle eviction, and the
//! parked-cursor stats.

use pwam_server::{Client, ErrorKind, PoolConfig, QueryRequest, Request, Response, Server, ServerConfig};
use rapwam::{DeterminismMode, SchedulerKind};
use std::time::Duration;

fn start_with(pool_size: usize, cursor_idle_timeout: Duration) -> Server {
    Server::start(ServerConfig {
        pool: PoolConfig { size: pool_size, max_queue: 8, queue_timeout: Duration::from_millis(500) },
        cursor_idle_timeout,
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn start(pool_size: usize) -> Server {
    start_with(pool_size, Duration::from_secs(60))
}

fn three_p() -> QueryRequest {
    QueryRequest {
        program: "p(1).\np(2).\np(3).".to_string(),
        query: "p(X)".to_string(),
        ..QueryRequest::default()
    }
}

#[test]
fn open_next_exhaust_closes_the_cursor() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client.query_open(three_p()).unwrap();

    let mut seen = Vec::new();
    while let Some(a) = client.query_next(cursor).unwrap() {
        assert_eq!(a.bindings.len(), 1);
        seen.push(a.bindings[0].1.clone());
    }
    assert_eq!(seen, ["1", "2", "3"]);

    // Exhaustion auto-closed the cursor: another step is a cursor error.
    match client.request(&Request::QueryNext { cursor }).unwrap() {
        Response::Error { kind: ErrorKind::Cursor, .. } => {}
        other => panic!("expected a cursor error after exhaustion, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("cursors_opened"), Some(1));
    assert_eq!(stats.get("cursors_closed"), Some(1));
    assert_eq!(stats.get("parked_cursors"), Some(0));
    server.shutdown();
}

#[test]
fn explicit_close_discards_a_mid_stream_cursor() {
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client.query_open(three_p()).unwrap();
    let first = client.query_next(cursor).unwrap().expect("first answer");
    assert_eq!(first.bindings[0].1, "1");
    client.query_close(cursor).unwrap();
    // Closed means gone — both next and a second close are cursor errors.
    match client.request(&Request::QueryNext { cursor }).unwrap() {
        Response::Error { kind: ErrorKind::Cursor, .. } => {}
        other => panic!("expected a cursor error after close, got {other:?}"),
    }
    match client.request(&Request::QueryClose { cursor }).unwrap() {
        Response::Error { kind: ErrorKind::Cursor, .. } => {}
        other => panic!("expected a cursor error on double close, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("cursors_closed"), Some(1));
    assert_eq!(stats.get("parked_cursors"), Some(0));
    server.shutdown();
}

#[test]
fn cursor_survives_slot_churn() {
    // One slot: while the cursor is parked, other queries take and recycle
    // that slot freely; the suspended engine must be unaffected.
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client.query_open(three_p()).unwrap();
    assert_eq!(client.query_next(cursor).unwrap().unwrap().bindings[0].1, "1");
    for _ in 0..4 {
        match client
            .query(QueryRequest {
                program: "q(a).\nq(b).".to_string(),
                query: "q(Z)".to_string(),
                ..QueryRequest::default()
            })
            .unwrap()
        {
            Response::Answer(a) => assert!(a.success),
            other => panic!("interleaved query failed: {other:?}"),
        }
    }
    assert_eq!(client.query_next(cursor).unwrap().unwrap().bindings[0].1, "2");
    assert_eq!(client.query_next(cursor).unwrap().unwrap().bindings[0].1, "3");
    assert_eq!(client.query_next(cursor).unwrap(), None);
    server.shutdown();
}

#[test]
fn exhausted_cursor_warms_the_pool() {
    // The auto-close on exhaustion recycles the cursor's arenas into the
    // slot held for that `query-next`, so the following plain query (same
    // worker count) runs warm.
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client.query_open(three_p()).unwrap();
    while client.query_next(cursor).unwrap().is_some() {}
    match client.query(three_p()).unwrap() {
        Response::Answer(a) => assert!(a.warm, "plain query after cursor exhaustion ran cold"),
        other => panic!("expected an answer, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_cursors_are_evicted() {
    let server = start_with(2, Duration::from_millis(100));
    let mut client = Client::connect(server.addr()).unwrap();
    let cursor = client.query_open(three_p()).unwrap();
    assert!(client.query_next(cursor).unwrap().is_some());
    std::thread::sleep(Duration::from_millis(300));
    // The first touch past the deadline sweeps the cursor out.
    match client.request(&Request::QueryNext { cursor }).unwrap() {
        Response::Error { kind: ErrorKind::Cursor, .. } => {}
        other => panic!("expected the evicted cursor to be unknown, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("cursors_evicted"), Some(1));
    assert_eq!(stats.get("parked_cursors"), Some(0));
    assert_eq!(stats.get("cursors_closed"), Some(0), "eviction is not a close");
    server.shutdown();
}

#[test]
fn stats_report_parked_cursors() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    let a = client.query_open(three_p()).unwrap();
    let b = client.query_open(three_p()).unwrap();
    assert_ne!(a, b, "cursor ids must be distinct");
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("parked_cursors"), Some(2));
    assert_eq!(stats.get("cursors_opened"), Some(2));
    client.query_close(a).unwrap();
    assert_eq!(client.stats().unwrap().get("parked_cursors"), Some(1));
    server.shutdown();
}

#[test]
fn cursors_stream_under_parallel_backends_over_the_wire() {
    let server = start(2);
    let mut client = Client::connect(server.addr()).unwrap();
    for (scheduler, determinism, workers) in [
        (SchedulerKind::Interleaved, DeterminismMode::Strict, 2),
        (SchedulerKind::Threaded, DeterminismMode::Strict, 2),
        (SchedulerKind::Threaded, DeterminismMode::Relaxed, 2),
    ] {
        let cursor = client
            .query_open(QueryRequest {
                scheduler,
                determinism,
                workers,
                deadline_ms: Some(30_000),
                ..three_p()
            })
            .unwrap();
        let mut seen = Vec::new();
        while let Some(a) = client.query_next(cursor).unwrap() {
            seen.push(a.bindings[0].1.clone());
        }
        assert_eq!(seen, ["1", "2", "3"], "stream differs under {scheduler:?}/{determinism:?}");
    }
    server.shutdown();
}
