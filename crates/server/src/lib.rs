//! # pwam-server — the concurrent query-serving subsystem
//!
//! The RAP-WAM engine's per-PE Stack Sets are long-lived resources whose
//! locality is the paper's whole performance story — yet a naive service
//! would re-parse, re-compile and re-allocate them for every query.  This
//! crate keeps all three warm:
//!
//! * a **program cache** ([`cache::ProgramCache`]) holds one
//!   [`rapwam::Session`] per distinct program, with its compiled queries,
//!   so repeated requests skip the front end and the compiler entirely;
//! * a **warm engine pool** ([`pool::EnginePool`]) bounds concurrency,
//!   recycles each slot's arenas across runs ([`rapwam::Engine::
//!   with_recycled_memory`]) and doubles as the admission controller
//!   (bounded queueing, per-request deadlines, load shedding);
//! * a **length-prefixed text protocol** ([`protocol`]) served over
//!   `std::net::TcpListener` by a readiness-driven event loop
//!   ([`event_loop`]) that multiplexes every connection through one poller
//!   thread with pipelined, order-preserving responses — or, behind
//!   [`server::ServingMode::ThreadPerConnection`], the thread-per-connection
//!   baseline it is benchmarked against — plus a small blocking
//!   [`client::Client`];
//! * **admission and preemption controls**: per-tenant concurrency quotas
//!   ([`tenant::TenantTable`]) and deterministic instruction fuel (the
//!   `fuel` header) so one client can neither hog the pool nor wedge an
//!   engine;
//! * an **observability plane** ([`metrics`]): a lock-free metric
//!   registry spanning every layer — request-latency histograms, per-PE
//!   scheduler telemetry, per-predicate instruction profiles, pool and
//!   cursor gauges — scraped through the `metrics` verb, and a bounded
//!   flight recorder of query lifecycle events behind `events`.
//!
//! Start a server in-process:
//!
//! ```
//! use pwam_server::{Client, QueryRequest, Response, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let response = client
//!     .query(QueryRequest {
//!         program: "p(1).\np(2).".to_string(),
//!         query: "p(X)".to_string(),
//!         ..QueryRequest::default()
//!     })
//!     .unwrap();
//! match response {
//!     Response::Answer(a) => assert_eq!(a.bindings, vec![("X".to_string(), "1".to_string())]),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! server.shutdown();
//! ```

pub mod cache;
pub mod client;
#[cfg(unix)]
pub mod event_loop;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use cache::{CacheStats, ProgramCache};
pub use client::Client;
pub use metrics::{FlightRecorder, FLIGHT_RECORDER_CAP};
pub use pool::{AcquireError, CursorStats, CursorTable, EnginePool, ParkedQuery, PoolConfig, PoolStats};
pub use protocol::{AnswerResponse, ErrorKind, QueryRequest, Request, Response, StatsResponse};
pub use server::{Server, ServerConfig, ServingMode, THREAD_MODE_MAX_CONNECTIONS};
pub use tenant::{TenantStats, TenantTable};
