//! `pwam-serve` — serve RAP-WAM queries over TCP.
//!
//! ```text
//! pwam-serve [--addr 127.0.0.1:0] [--pool N] [--max-queue N]
//!            [--queue-timeout-ms N] [--deadline-ms N] [--max-workers N]
//! ```
//!
//! Prints `pwam-serve listening on <addr>` once the socket is bound (port 0
//! resolves to an ephemeral port — scripts parse this line), then serves
//! until a `shutdown` request arrives (e.g. `pwam-load --shutdown`).

use pwam_server::{PoolConfig, Server, ServerConfig};
use std::time::Duration;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn num_arg(args: &[String], key: &str) -> Option<u64> {
    arg_value(args, key).map(|v| match v.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("invalid argument: {key} {v} (expected a number)");
            std::process::exit(2);
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pwam-serve [--addr HOST:PORT] [--pool N] [--max-queue N]\n\
             \x20                 [--queue-timeout-ms N] [--deadline-ms N] [--max-workers N]"
        );
        return;
    }
    let mut config = ServerConfig::default();
    let mut pool = PoolConfig::default();
    if let Some(addr) = arg_value(&args, "--addr") {
        config.addr = addr;
    }
    if let Some(n) = num_arg(&args, "--pool") {
        pool.size = n.max(1) as usize;
    }
    if let Some(n) = num_arg(&args, "--max-queue") {
        pool.max_queue = n as usize;
    }
    if let Some(n) = num_arg(&args, "--queue-timeout-ms") {
        pool.queue_timeout = Duration::from_millis(n);
    }
    if let Some(n) = num_arg(&args, "--deadline-ms") {
        config.default_deadline = Some(Duration::from_millis(n));
    }
    if let Some(n) = num_arg(&args, "--max-workers") {
        config.max_workers = n.max(1) as usize;
    }
    config.pool = pool;

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pwam-serve: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("pwam-serve listening on {}", server.addr());
    server.wait();
    println!("pwam-serve: shut down");
}
