//! `pwam-serve` — serve RAP-WAM queries over TCP.
//!
//! ```text
//! pwam-serve [--addr 127.0.0.1:0] [--pool N] [--max-queue N]
//!            [--queue-timeout-ms N] [--deadline-ms N] [--max-workers N]
//!            [--mode event-loop|threads] [--event-workers N]
//!            [--max-connections N] [--default-fuel N]
//!            [--tenant-max-active N] [--io-idle-timeout-ms N]
//! ```
//!
//! Prints `pwam-serve listening on <addr>` once the socket is bound (port 0
//! resolves to an ephemeral port — scripts parse this line), then serves
//! until a `shutdown` request arrives (e.g. `pwam-load --shutdown`).

use pwam_server::{PoolConfig, Server, ServerConfig, ServingMode};
use std::time::Duration;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn num_arg(args: &[String], key: &str) -> Option<u64> {
    arg_value(args, key).map(|v| match v.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("invalid argument: {key} {v} (expected a number)");
            std::process::exit(2);
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pwam-serve [--addr HOST:PORT] [--pool N] [--max-queue N]\n\
             \x20                 [--queue-timeout-ms N] [--deadline-ms N] [--max-workers N]\n\
             \x20                 [--mode event-loop|threads] [--event-workers N]\n\
             \x20                 [--max-connections N] [--default-fuel N]\n\
             \x20                 [--tenant-max-active N] [--io-idle-timeout-ms N]"
        );
        return;
    }
    let mut config = ServerConfig::default();
    let mut pool = PoolConfig::default();
    if let Some(addr) = arg_value(&args, "--addr") {
        config.addr = addr;
    }
    if let Some(n) = num_arg(&args, "--pool") {
        pool.size = n.max(1) as usize;
    }
    if let Some(n) = num_arg(&args, "--max-queue") {
        pool.max_queue = n as usize;
    }
    if let Some(n) = num_arg(&args, "--queue-timeout-ms") {
        pool.queue_timeout = Duration::from_millis(n);
    }
    if let Some(n) = num_arg(&args, "--deadline-ms") {
        config.default_deadline = Some(Duration::from_millis(n));
    }
    if let Some(n) = num_arg(&args, "--max-workers") {
        config.max_workers = n.max(1) as usize;
    }
    if let Some(mode) = arg_value(&args, "--mode") {
        config.mode = match ServingMode::parse(&mode) {
            Some(m) => m,
            None => {
                eprintln!("invalid argument: --mode {mode} (expected event-loop or threads)");
                std::process::exit(2);
            }
        };
    }
    if let Some(n) = num_arg(&args, "--event-workers") {
        config.event_workers = n.max(1) as usize;
    }
    if let Some(n) = num_arg(&args, "--max-connections") {
        config.max_connections = n.max(1) as usize;
    }
    if let Some(n) = num_arg(&args, "--default-fuel") {
        config.default_fuel = Some(n);
    }
    if let Some(n) = num_arg(&args, "--tenant-max-active") {
        config.tenant_max_active = n as usize;
    }
    if let Some(n) = num_arg(&args, "--io-idle-timeout-ms") {
        config.io_idle_timeout = Duration::from_millis(n);
    }
    config.pool = pool;

    let mode = config.mode;
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pwam-serve: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("pwam-serve listening on {} ({} mode)", server.addr(), mode.name());
    server.wait();
    println!("pwam-serve: shut down");
}
