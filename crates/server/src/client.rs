//! A small blocking client for the wire protocol (used by `pwam-load`,
//! the integration tests and the examples).

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, AnswerResponse, QueryRequest, Request,
    Response, StatsResponse,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a `pwam-serve` instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection"))?;
        decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Run a query.
    pub fn query(&mut self, q: QueryRequest) -> io::Result<Response> {
        self.request(&Request::Query(Box::new(q)))
    }

    /// Open an all-solutions cursor; returns its id.  Server-side errors
    /// (rejection, compile failure) surface as `InvalidData` — use
    /// [`Client::request`] directly to inspect the error kind.
    pub fn query_open(&mut self, q: QueryRequest) -> io::Result<u64> {
        match self.request(&Request::QueryOpen(Box::new(q)))? {
            Response::CursorOpened { cursor } => Ok(cursor),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected cursor-opened, got {other:?}"),
            )),
        }
    }

    /// Step a cursor to its next answer.  `Ok(Some(answer))` at an answer,
    /// `Ok(None)` once the stream is exhausted (the cursor is auto-closed).
    pub fn query_next(&mut self, cursor: u64) -> io::Result<Option<AnswerResponse>> {
        match self.request(&Request::QueryNext { cursor })? {
            Response::Answer(a) if a.success => Ok(Some(a)),
            Response::Answer(_) => Ok(None),
            other => {
                Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected an answer, got {other:?}")))
            }
        }
    }

    /// Discard a cursor before exhausting it.
    pub fn query_close(&mut self, cursor: u64) -> io::Result<()> {
        match self.request(&Request::QueryClose { cursor })? {
            Response::CursorClosed => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected cursor-closed, got {other:?}"),
            )),
        }
    }

    /// Fetch server statistics.
    pub fn stats(&mut self) -> io::Result<StatsResponse> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => {
                Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected stats, got {other:?}")))
            }
        }
    }

    /// Fetch the Prometheus-style metrics exposition.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => {
                Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected metrics, got {other:?}")))
            }
        }
    }

    /// Fetch the flight recorder's newest `limit` lifecycle events (all
    /// retained events when `None`), one per line, oldest first.
    pub fn events(&mut self, limit: Option<u64>) -> io::Result<String> {
        match self.request(&Request::Events { limit })? {
            Response::Events { text } => Ok(text),
            other => {
                Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected events, got {other:?}")))
            }
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected pong, got {other:?}"))),
        }
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected bye, got {other:?}"))),
        }
    }
}
