//! Per-tenant admission quotas.
//!
//! The engine pool bounds *global* concurrency; this table bounds how much
//! of that capacity any one tenant may hold at once, so a single noisy
//! client cannot starve everyone else out of the pool.  A request that
//! carries a `tenant` header is admitted only while the tenant's in-flight
//! count is below the quota; anonymous requests bypass the table entirely
//! (single-user deployments never pay for it).
//!
//! Admission is scoped by an RAII guard: the count is held exactly while
//! the handler runs and drops with the guard on every exit path, including
//! panics unwinding out of an engine run.  A parked cursor does *not*
//! count against its tenant — parked means "not executing", which is the
//! same reason it does not hold a pool slot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A point-in-time view of the admission counters.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Tenant-carrying requests admitted.
    pub admitted: u64,
    /// Tenant-carrying requests turned away at quota.
    pub rejected: u64,
    /// In-flight tenant-carrying requests right now, summed over tenants.
    pub active: u64,
}

/// The per-tenant in-flight table.
pub struct TenantTable {
    /// Per-tenant concurrent-request quota; `0` disables the quota (every
    /// tenant is admitted, counts are still kept for the gauges).
    max_active: usize,
    active: Mutex<HashMap<String, u64>>,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

impl TenantTable {
    /// A table admitting at most `max_active` concurrent requests per
    /// tenant (`0` = unlimited).
    pub fn new(max_active: usize) -> Self {
        TenantTable {
            max_active,
            active: Mutex::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured quota (`0` = unlimited).
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// Admit a request.  `Ok` returns the guard holding the tenant's slot;
    /// `Err` carries the tenant's current in-flight count for the error
    /// message.  Anonymous requests always get a (no-op) guard.
    pub fn admit(&self, tenant: Option<&str>) -> Result<TenantGuard<'_>, u64> {
        let Some(name) = tenant else {
            return Ok(TenantGuard { table: self, tenant: None });
        };
        let mut active = self.active.lock().unwrap();
        let count = active.entry(name.to_string()).or_insert(0);
        if self.max_active != 0 && *count as usize >= self.max_active {
            let now = *count;
            if now == 0 {
                active.remove(name);
            }
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(now);
        }
        *count += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(TenantGuard { table: self, tenant: Some(name.to_string()) })
    }

    /// Every tenant with in-flight work right now, with its count.
    pub fn active_snapshot(&self) -> Vec<(String, u64)> {
        let active = self.active.lock().unwrap();
        let mut out: Vec<(String, u64)> = active.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort();
        out
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            active: self.active.lock().unwrap().values().sum(),
        }
    }

    fn release(&self, name: &str) {
        let mut active = self.active.lock().unwrap();
        if let Some(count) = active.get_mut(name) {
            *count -= 1;
            // Idle tenants leave the table (and the exposition) entirely.
            if *count == 0 {
                active.remove(name);
            }
        }
    }
}

/// An admitted request's hold on its tenant's quota.  Dropping it releases
/// the slot; the anonymous variant holds nothing.
pub struct TenantGuard<'a> {
    table: &'a TenantTable,
    tenant: Option<String>,
}

impl Drop for TenantGuard<'_> {
    fn drop(&mut self) {
        if let Some(name) = self.tenant.take() {
            self.table.release(&name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_admits_up_to_the_cap_and_releases_on_drop() {
        let table = TenantTable::new(2);
        let a1 = table.admit(Some("a")).unwrap();
        let _a2 = table.admit(Some("a")).unwrap();
        assert_eq!(table.admit(Some("a")).err(), Some(2), "third concurrent request is over quota");
        // Another tenant is unaffected by a's saturation.
        let _b1 = table.admit(Some("b")).unwrap();
        drop(a1);
        let a3 = table.admit(Some("a"));
        assert!(a3.is_ok(), "released slot is reusable");
        let stats = table.stats();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.active, 3);
    }

    #[test]
    fn anonymous_requests_bypass_the_quota() {
        let table = TenantTable::new(1);
        let guards: Vec<_> = (0..8).map(|_| table.admit(None).unwrap()).collect();
        assert_eq!(table.stats().active, 0, "anonymous requests hold nothing");
        assert_eq!(table.stats().admitted, 0);
        drop(guards);
    }

    #[test]
    fn zero_quota_means_unlimited() {
        let table = TenantTable::new(0);
        let guards: Vec<_> = (0..16).map(|_| table.admit(Some("a")).unwrap()).collect();
        assert_eq!(table.stats().active, 16);
        drop(guards);
        assert_eq!(table.stats().active, 0);
    }

    #[test]
    fn idle_tenants_leave_the_snapshot() {
        let table = TenantTable::new(4);
        let a = table.admit(Some("a")).unwrap();
        let _b = table.admit(Some("b")).unwrap();
        assert_eq!(table.active_snapshot(), vec![("a".to_string(), 1), ("b".to_string(), 1)]);
        drop(a);
        assert_eq!(table.active_snapshot(), vec![("b".to_string(), 1)]);
    }

    #[test]
    fn rejected_admission_does_not_leak_a_zero_entry() {
        let table = TenantTable::new(0);
        let _ = table.admit(Some("ghost"));
        // max_active 0 admits; use a real cap to exercise the reject path.
        let table = TenantTable::new(1);
        let _held = table.admit(Some("a")).unwrap();
        assert!(table.admit(Some("a")).is_err());
        drop(_held);
        assert!(table.active_snapshot().is_empty(), "no stale entries after release");
    }
}
