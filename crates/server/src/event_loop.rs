//! The readiness-driven serving tier: one poller thread multiplexing every
//! connection, a small worker pool running engine requests off the loop.
//!
//! ## Why not thread-per-connection?
//!
//! The baseline server (`accept_loop` in the `server` module) pins a full OS
//! thread per connection.  A thread costs a stack and a scheduler slot
//! even while its connection sits idle between requests, which is most of
//! the time for interactive clients — so the baseline's connection
//! ceiling is set by thread memory, hundreds at best, while actual engine
//! concurrency is bounded far lower by the pool.  This module inverts the
//! structure: connections are *state machines* (a read buffer, a write
//! buffer, a pipeline of outstanding requests) owned by one event loop,
//! and only the bounded engine work runs on threads.  Ten thousand idle
//! connections cost ten thousand buffers, not ten thousand stacks.
//!
//! ## Structure
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!   accept ──▶ │  poll loop (vendored epoll/poll stand-in)  │
//!              │  · parse frames from readable conns        │
//!              │  · answer cheap verbs inline               │
//!              │  · queue engine verbs to the worker pool   │
//!              │  · splice completed responses, in order,   │
//!              │    into each conn's write buffer           │
//!              └──────────────┬────────────▲────────────────┘
//!                       jobs  │            │  self-pipe wakeup
//!              ┌──────────────▼────────────┴────────────────┐
//!              │ worker pool (config.event_workers threads) │
//!              │ handle_query / open / next / close —       │
//!              │ admission still happens in the EnginePool  │
//!              └────────────────────────────────────────────┘
//! ```
//!
//! ## Per-connection state machine
//!
//! A connection is always in a combination of: **reading** (buffering
//! bytes until a complete frame arrives), **executing** (one or more
//! decoded requests in the worker pool), and **writing** (flushing framed
//! responses).  Requests pipeline: a client may send many frames without
//! waiting, and responses always return in request order — each parsed
//! request takes a sequence number, completions park in a reorder slot
//! until every earlier response has been spliced into the write buffer.
//!
//! Backpressure is structural: a connection with `MAX_PIPELINE` requests
//! in flight (or an oversized unparsed backlog) simply stops being read
//! until completions drain, which eventually fills the client's send
//! buffer — TCP does the rest.
//!
//! ## Fault containment
//!
//! * A garbage verb or malformed body gets a well-framed `protocol` error
//!   and the connection lives on.
//! * A frame that cannot be framed out of (oversized length prefix,
//!   non-UTF-8 payload) gets a final framed error, then the connection is
//!   closed once the error flushes.
//! * A peer that vanishes mid-anything is torn down immediately; responses
//!   still in flight for it are discarded on completion.
//! * A connection that stalls mid-frame, or stops draining its responses,
//!   for longer than `config.io_idle_timeout` is closed (the slowloris
//!   guard).  Fully idle connections with empty buffers are free and are
//!   left alone.

use crate::protocol::{self, ErrorKind, Request, Response, MAX_FRAME_BYTES};
use crate::server::{
    handle_query, handle_query_close, handle_query_next, handle_query_open, stats_response,
    sweep_idle_cursors, ServerState,
};
use polling::{Event, Interest, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Engine requests one connection may have in the worker pool at once;
/// beyond this the connection stops being read until completions drain.
const MAX_PIPELINE: usize = 32;

/// Unparsed-bytes ceiling per connection before reads pause (a client
/// streaming frames faster than the engine drains them).
const READ_PAUSE_BYTES: usize = 1 << 20;

/// Poll timeout: the cadence of the slowloris sweep and the shutdown
/// check; readiness and completions wake the loop immediately regardless.
const POLL_TICK: Duration = Duration::from_millis(250);

/// After shutdown is requested, how long the loop keeps flushing in-flight
/// responses (the `bye` frame among them) before tearing down.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// One engine-bound request queued off the loop.
struct Job {
    token: u64,
    seq: u64,
    request: Request,
    /// When the frame was parsed.  The request clock (the `request_us`
    /// histogram and the deadline budget) starts here, not when a worker
    /// picks the job up — queue wait is part of the request, and the
    /// client-vs-server latency cross-check in `pwam-load` would diverge
    /// by whole buckets under load otherwise.
    arrived: Instant,
}

/// One finished request on its way back to the loop.
struct Completion {
    token: u64,
    seq: u64,
    payload: String,
}

/// Everything the loop and the workers share.
struct WorkerShared {
    state: Arc<ServerState>,
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    done: Mutex<Vec<Completion>>,
    /// Write half of the self-pipe; one byte per completion batch wakes
    /// the poll loop.  `WouldBlock` just means a wakeup is already queued.
    waker_tx: Mutex<UnixStream>,
    stop: AtomicBool,
}

fn worker_loop(shared: Arc<WorkerShared>) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                jobs = shared.jobs_cv.wait(jobs).unwrap();
            }
        };
        let response = match job.request {
            Request::Query(q) => handle_query(&shared.state, *q, job.arrived),
            Request::QueryOpen(q) => handle_query_open(&shared.state, *q),
            Request::QueryNext { cursor } => handle_query_next(&shared.state, cursor),
            Request::QueryClose { cursor } => handle_query_close(&shared.state, cursor),
            // The loop only queues engine verbs; everything else is
            // answered inline.
            _ => Response::Error {
                kind: ErrorKind::Protocol,
                message: "internal: non-engine verb reached the worker pool".to_string(),
            },
        };
        let payload = protocol::encode_response(&response);
        shared.done.lock().unwrap().push(Completion { token: job.token, seq: job.seq, payload });
        let _ = shared.waker_tx.lock().unwrap().write(&[1]);
    }
}

// ---------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into frames.
    read_buf: Vec<u8>,
    /// Framed responses not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Sequence number the next parsed request will take.
    next_seq: u64,
    /// Sequence number whose response must be written next (pipelined
    /// responses go out strictly in request order).
    next_to_send: u64,
    /// Out-of-order completions parked until their turn.
    ready: HashMap<u64, String>,
    /// Requests currently in the worker pool.
    inflight: usize,
    /// The connection ends once the write buffer drains.
    close_after_flush: bool,
    /// Interest currently registered with the poller (avoids redundant
    /// `reregister` syscalls).
    interest: Interest,
    /// Last moment bytes moved in either direction; the slowloris clock.
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            next_seq: 0,
            next_to_send: 0,
            ready: HashMap::new(),
            inflight: 0,
            close_after_flush: false,
            interest: Interest::READ,
            last_progress: Instant::now(),
        }
    }

    /// Park a completed response at its sequence slot, then splice every
    /// consecutively-ready response into the write buffer.
    fn complete(&mut self, seq: u64, payload: String) {
        self.ready.insert(seq, payload);
        while let Some(payload) = self.ready.remove(&self.next_to_send) {
            self.write_buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            self.write_buf.extend_from_slice(payload.as_bytes());
            self.next_to_send += 1;
        }
    }

    /// The interest this connection currently wants from the poller.  No
    /// read interest while backpressured or dying; no write interest with
    /// nothing buffered.  Both may be false — a connection waiting purely
    /// on engine completions needs no readiness at all (the self-pipe
    /// wakes the loop when its responses land).
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.close_after_flush
                && self.inflight < MAX_PIPELINE
                && self.read_buf.len() < READ_PAUSE_BYTES,
            writable: !self.write_buf.is_empty(),
        }
    }

    /// Flush as much of the write buffer as the socket accepts.
    /// `Ok(true)` when the connection should be torn down (fatal write
    /// error, or close-after-flush with an empty buffer).
    fn try_write(&mut self) -> bool {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => return true,
                Ok(n) => {
                    self.write_buf.drain(..n);
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        self.write_buf.is_empty() && self.close_after_flush
    }

    /// Whether the slowloris guard should end this connection: bytes are
    /// stuck mid-frame or mid-response past the deadline while nothing is
    /// executing on its behalf.
    fn is_stalled(&self, now: Instant, timeout: Duration) -> bool {
        let has_stuck_bytes = !self.read_buf.is_empty() || !self.write_buf.is_empty();
        has_stuck_bytes && self.inflight == 0 && now.duration_since(self.last_progress) > timeout
    }
}

// ---------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------

/// Serve `listener` with the event loop until shutdown.  If the poller or
/// the self-pipe cannot be built (exotic platform), falls back to the
/// thread-per-connection loop so the server still works.
pub(crate) fn serve(listener: TcpListener, state: Arc<ServerState>) {
    match EventLoop::new(&listener, Arc::clone(&state)) {
        Ok(event_loop) => event_loop.run(),
        Err(_) => crate::server::accept_loop_fallback(listener, state),
    }
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    waker_rx: UnixStream,
    state: Arc<ServerState>,
    shared: Arc<WorkerShared>,
    workers: Vec<JoinHandle<()>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl EventLoop {
    fn new(listener: &TcpListener, state: Arc<ServerState>) -> io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let listener = listener.try_clone()?;
        listener.set_nonblocking(true)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        let shared = Arc::new(WorkerShared {
            state: Arc::clone(&state),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            done: Mutex::new(Vec::new()),
            waker_tx: Mutex::new(waker_tx),
            stop: AtomicBool::new(false),
        });
        let workers = (0..state.config.event_workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new().name(format!("pwam-worker-{i}")).spawn(move || worker_loop(shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(EventLoop {
            poller,
            listener,
            waker_rx,
            state,
            shared,
            workers,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut shutdown_at: Option<Instant> = None;
        loop {
            let _ = self.poller.poll(&mut events, Some(POLL_TICK));
            let drained = std::mem::take(&mut events);
            for event in &drained {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_completions(),
                    token => self.conn_ready(token, event.readable, event.writable),
                }
            }
            events = drained;
            // Completions can land between poll timeouts; drain them every
            // pass so a lost wakeup byte can only delay, never strand.
            self.drain_completions();
            self.sweep_stalled();
            if self.state.shutdown.load(Ordering::Acquire) {
                let deadline = *shutdown_at.get_or_insert_with(|| Instant::now() + SHUTDOWN_GRACE);
                let pending = self
                    .conns
                    .values()
                    .any(|c| c.inflight > 0 || !c.write_buf.is_empty() || !c.ready.is_empty());
                if !pending || Instant::now() >= deadline {
                    break;
                }
            }
        }
        // Tear down: workers first (they may still be finishing a run the
        // grace period gave up on), then the connections.
        self.shared.stop.store(true, Ordering::Release);
        self.shared.jobs_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let open = self.conns.len() as u64;
        self.state.counters.connections_active.fetch_sub(open, Ordering::AcqRel);
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.state.shutdown.load(Ordering::Acquire) {
                continue; // drained only to clear readiness; shutting down
            }
            if self.conns.len() >= self.state.config.max_connections {
                // Shed with a well-framed error rather than a bare RST: a
                // fresh socket's send buffer takes one small frame even in
                // non-blocking mode, and a client that races the write
                // just sees a close — either way it learns quickly.
                let payload = protocol::encode_response(&Response::Error {
                    kind: ErrorKind::Rejected,
                    message: format!(
                        "server is at its connection limit ({})",
                        self.state.config.max_connections
                    ),
                });
                let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                frame.extend_from_slice(payload.as_bytes());
                let _ = stream.set_nonblocking(true);
                let mut stream = stream;
                let _ = stream.write(&frame);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.register(stream.as_raw_fd(), token, Interest::READ).is_err() {
                continue;
            }
            self.state.counters.connections.fetch_add(1, Ordering::Relaxed);
            self.state.counters.connections_active.fetch_add(1, Ordering::AcqRel);
            self.conns.insert(token, Conn::new(stream));
        }
    }

    /// Handle readiness on one connection.
    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut dead = false;
        if readable {
            dead = read_into(conn);
        }
        if !dead {
            self.parse_frames(token);
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if !dead && (writable || !conn.write_buf.is_empty()) {
            dead = conn.try_write();
        }
        if dead {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Parse every complete frame buffered on `token` and dispatch the
    /// requests (inline for cheap verbs, to the worker pool for engine
    /// verbs).
    fn parse_frames(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.close_after_flush || conn.inflight >= MAX_PIPELINE || conn.read_buf.len() < 4 {
                return;
            }
            let len = u32::from_be_bytes(conn.read_buf[..4].try_into().unwrap());
            if len > MAX_FRAME_BYTES {
                // Unframeable: there is no trustworthy frame boundary to
                // resynchronise at.  One last well-framed error, then the
                // connection closes after the flush.
                self.state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let payload = protocol::encode_response(&Response::Error {
                    kind: ErrorKind::Protocol,
                    message: format!("frame of {len} bytes exceeds limit"),
                });
                conn.complete(seq, payload);
                conn.close_after_flush = true;
                return;
            }
            let total = 4 + len as usize;
            if conn.read_buf.len() < total {
                return;
            }
            let payload_bytes: Vec<u8> = conn.read_buf[4..total].to_vec();
            conn.read_buf.drain(..total);
            let seq = conn.next_seq;
            conn.next_seq += 1;
            let Ok(payload) = String::from_utf8(payload_bytes) else {
                self.state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = protocol::encode_response(&Response::Error {
                    kind: ErrorKind::Protocol,
                    message: "frame is not UTF-8".to_string(),
                });
                conn.complete(seq, reply);
                conn.close_after_flush = true;
                return;
            };
            match protocol::decode_request(&payload) {
                // Cheap verbs never touch the engine: answer them on the
                // loop.  They still flow through the sequence slots so
                // pipelined responses keep request order.
                Ok(Request::Ping) => {
                    let reply = protocol::encode_response(&Response::Pong);
                    conn.complete(seq, reply);
                }
                Ok(Request::Stats) => {
                    let reply = protocol::encode_response(&Response::Stats(stats_response(&self.state)));
                    let Some(conn) = self.conns.get_mut(&token) else { return };
                    conn.complete(seq, reply);
                }
                Ok(Request::Metrics) => {
                    sweep_idle_cursors(&self.state);
                    let text = self.state.metrics.render(&self.state);
                    let Some(conn) = self.conns.get_mut(&token) else { return };
                    conn.complete(seq, protocol::encode_response(&Response::Metrics { text }));
                }
                Ok(Request::Events { limit }) => {
                    let text = self.state.flight.render(limit);
                    conn.complete(seq, protocol::encode_response(&Response::Events { text }));
                }
                Ok(Request::Shutdown) => {
                    self.state.shutdown.store(true, Ordering::Release);
                    let reply = protocol::encode_response(&Response::Bye);
                    let Some(conn) = self.conns.get_mut(&token) else { return };
                    conn.complete(seq, reply);
                    conn.close_after_flush = true;
                    return;
                }
                Ok(request) => {
                    conn.inflight += 1;
                    self.shared.jobs.lock().unwrap().push_back(Job {
                        token,
                        seq,
                        request,
                        arrived: Instant::now(),
                    });
                    self.shared.jobs_cv.notify_one();
                }
                Err(e) => {
                    // A malformed *request* inside a well-formed frame is
                    // recoverable: answer with a protocol error and keep
                    // the connection (framing is still in sync).
                    self.state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = protocol::encode_response(&Response::Error {
                        kind: ErrorKind::Protocol,
                        message: e.to_string(),
                    });
                    conn.complete(seq, reply);
                }
            }
        }
    }

    /// Drain the self-pipe and splice finished responses into their
    /// connections (discarding those whose connection is gone).
    fn drain_completions(&mut self) {
        let mut byte = [0u8; 64];
        while matches!(self.waker_rx.read(&mut byte), Ok(n) if n > 0) {}
        let completions = std::mem::take(&mut *self.shared.done.lock().unwrap());
        let mut touched: Vec<u64> = Vec::new();
        for completion in completions {
            let Some(conn) = self.conns.get_mut(&completion.token) else { continue };
            conn.inflight -= 1;
            conn.complete(completion.seq, completion.payload);
            touched.push(completion.token);
        }
        for token in touched {
            // Completions may have unblocked parsing (pipeline backlog) as
            // well as produced bytes to write.
            self.parse_frames(token);
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.try_write() {
                    self.close_conn(token);
                } else {
                    self.update_interest(token);
                }
            }
        }
    }

    /// Close connections the slowloris guard has given up on.
    fn sweep_stalled(&mut self) {
        let timeout = self.state.config.io_idle_timeout;
        let now = Instant::now();
        let stalled: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.is_stalled(now, timeout))
            .map(|(token, _)| *token)
            .collect();
        for token in stalled {
            self.state.flight.record("io-timeout", &format!("conn={token}"));
            self.close_conn(token);
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let desired = conn.desired_interest();
        if desired != conn.interest && self.poller.reregister(conn.stream.as_raw_fd(), token, desired).is_ok()
        {
            conn.interest = desired;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.state.counters.connections_active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Pull every byte the socket currently has into the connection's read
/// buffer.  Returns `true` when the connection is finished (EOF or a
/// fatal read error).
fn read_into(conn: &mut Conn) -> bool {
    let mut scratch = [0u8; 16 * 1024];
    loop {
        if conn.read_buf.len() >= READ_PAUSE_BYTES {
            return false; // backpressure: leave the rest in the kernel
        }
        match conn.stream.read(&mut scratch) {
            Ok(0) => return true,
            Ok(n) => {
                conn.read_buf.extend_from_slice(&scratch[..n]);
                conn.last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}
