//! The warm engine pool: a fixed number of execution slots, each keeping
//! the arenas ([`rapwam::Memory`]) of its last run alive for reuse.
//!
//! The paper's whole performance story is that per-PE Stack Sets are
//! long-lived resources with strong locality; a serving layer that
//! reallocates them per query throws that away.  The pool keeps one
//! recyclable memory per slot: a request that acquires a slot whose memory
//! matches its shape (area sizes × worker count) runs *warm* — the arenas
//! are reset in place, which costs proportional to what the previous query
//! touched, not to their capacity.
//!
//! Slots are recycled in **LIFO order, preferring warm slots**: a release
//! pushes onto a stack and an acquire takes the most recently used slot
//! that still holds arenas (falling back to the newest cold one).  The old
//! FIFO recycle order rotated through every slot, so a large pool took
//! `size` requests before *any* slot ran warm twice; with LIFO a
//! low-concurrency trickle keeps hitting the same hot arenas — the pool
//! warms up at the speed of its actual concurrency, not its capacity.
//!
//! The pool doubles as the admission controller: at most `size` queries
//! execute concurrently, at most `max_queue` more may wait (bounded
//! queueing), and a waiter gives up when its deadline or the queue timeout
//! passes.  Everything beyond that is rejected immediately — under
//! overload the server sheds load instead of collapsing.

use crate::cache::CacheEntry;
use rapwam::{Memory, QueryCursor};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pool sizing and queueing policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of engine slots (concurrent queries).
    pub size: usize,
    /// Maximum number of requests allowed to wait for a slot; the rest are
    /// rejected outright.
    pub max_queue: usize,
    /// Upper bound on how long a queued request waits for a slot (the
    /// request deadline applies too, whichever is sooner).
    pub queue_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { size: 4, max_queue: 32, queue_timeout: Duration::from_secs(5) }
    }
}

/// Why an acquisition failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// The wait queue is full (admission control).
    Rejected,
    /// No slot freed up within the wait budget.
    Timeout,
}

/// Monotonic pool counters.
#[derive(Debug, Default)]
struct PoolCounters {
    requests: AtomicU64,
    warm_hits: AtomicU64,
    cold_builds: AtomicU64,
    rejections: AtomicU64,
    queue_timeouts: AtomicU64,
    run_errors: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
}

/// A point-in-time view of the pool counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PoolStats {
    /// Slots acquired (successful admissions).
    pub requests: u64,
    /// Runs that reused a slot's warm arenas.
    pub warm_hits: u64,
    /// Runs that had to allocate fresh arenas (first use or shape change).
    pub cold_builds: u64,
    /// Requests turned away because the queue was full.
    pub rejections: u64,
    /// Requests that gave up waiting for a slot.
    pub queue_timeouts: u64,
    /// Runs that ended in an engine error (their memory is not recycled).
    pub run_errors: u64,
    /// Requests currently waiting for a slot.
    pub queue_depth: u64,
    /// High-water mark of the wait queue.
    pub max_queue_depth: u64,
}

/// The pool itself.  Free slots live on a stack under a mutex: releasing
/// pushes, acquiring pops the most recently used slot that still holds
/// recycled arenas (so warm slots are reused first), and waiters park on a
/// condvar.
pub struct EnginePool {
    config: PoolConfig,
    slots: Mutex<Vec<Option<Memory>>>,
    available: Condvar,
    counters: PoolCounters,
}

/// Pop the preferred free slot: the newest warm one, else the newest cold
/// one.  (`rposition` keeps it LIFO within each class.)
fn take_slot(slots: &mut Vec<Option<Memory>>) -> Option<Option<Memory>> {
    if slots.is_empty() {
        return None;
    }
    let pos = slots.iter().rposition(Option::is_some).unwrap_or(slots.len() - 1);
    Some(slots.remove(pos))
}

impl EnginePool {
    /// Create a pool with `config.size` empty (cold) slots.
    pub fn new(config: PoolConfig) -> Self {
        assert!(config.size >= 1, "pool needs at least one slot");
        let slots = (0..config.size).map(|_| None).collect();
        EnginePool {
            config,
            slots: Mutex::new(slots),
            available: Condvar::new(),
            counters: PoolCounters::default(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Slots currently executing a run (configured size minus the free
    /// stack).  A gauge reading for the telemetry plane.
    pub fn busy_slots(&self) -> usize {
        self.config.size - self.slots.lock().unwrap().len()
    }

    /// Acquire a slot.  A free slot is taken immediately; otherwise the
    /// request queues — unless `max_queue` requests are already waiting
    /// ([`AcquireError::Rejected`]) — and waits at most
    /// `min(queue_timeout, wait_budget)` ([`AcquireError::Timeout`]).
    pub fn acquire(&self, wait_budget: Option<Duration>) -> Result<SlotGuard<'_>, AcquireError> {
        // Fast path: a free slot means no queueing at all — but only while
        // nobody is parked waiting, otherwise a stream of newcomers could
        // barge released slots ahead of the queue and starve the waiters
        // into spurious timeouts.
        if self.counters.queue_depth.load(Ordering::Acquire) == 0 {
            if let Some(memory) = take_slot(&mut self.slots.lock().unwrap()) {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                return Ok(SlotGuard { pool: self, memory, returned: false });
            }
        }
        // Admission control: count ourselves into the wait queue, reject if
        // it is full.  `fetch_add` + check is one atomic op; the transient
        // overshoot it allows is bounded by the concurrently-arriving
        // requests, which is the precision admission control needs.
        let depth = self.counters.queue_depth.fetch_add(1, Ordering::AcqRel);
        if depth >= self.config.max_queue {
            self.counters.queue_depth.fetch_sub(1, Ordering::AcqRel);
            self.counters.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(AcquireError::Rejected);
        }
        self.counters.max_queue_depth.fetch_max(depth + 1, Ordering::Relaxed);
        let timeout = match wait_budget {
            Some(budget) => budget.min(self.config.queue_timeout),
            None => self.config.queue_timeout,
        };
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(memory) = take_slot(&mut slots) {
                drop(slots);
                self.counters.queue_depth.fetch_sub(1, Ordering::AcqRel);
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                return Ok(SlotGuard { pool: self, memory, returned: false });
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slots);
                self.counters.queue_depth.fetch_sub(1, Ordering::AcqRel);
                self.counters.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(AcquireError::Timeout);
            }
            let (guard, _timed_out) =
                self.available.wait_timeout(slots, deadline - now).expect("pool lock poisoned");
            slots = guard;
        }
    }

    /// Record whether a run reused warm arenas.
    pub fn record_run(&self, warm: bool) {
        if warm {
            self.counters.warm_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.cold_builds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a run that died with an engine error (its memory is lost).
    pub fn record_error(&self) {
        self.counters.run_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.counters;
        PoolStats {
            requests: c.requests.load(Ordering::Relaxed),
            warm_hits: c.warm_hits.load(Ordering::Relaxed),
            cold_builds: c.cold_builds.load(Ordering::Relaxed),
            rejections: c.rejections.load(Ordering::Relaxed),
            queue_timeouts: c.queue_timeouts.load(Ordering::Relaxed),
            run_errors: c.run_errors.load(Ordering::Relaxed),
            queue_depth: c.queue_depth.load(Ordering::Relaxed) as u64,
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed) as u64,
        }
    }
}

/// An acquired pool slot.  Take the recycled memory with
/// [`SlotGuard::take_memory`], hand the engine's memory back with
/// [`SlotGuard::put_memory`]; dropping the guard returns the slot to the
/// pool either way (empty if the run errored out).
pub struct SlotGuard<'a> {
    pool: &'a EnginePool,
    memory: Option<Memory>,
    returned: bool,
}

impl SlotGuard<'_> {
    /// The slot's recycled memory from a previous run, if any.
    pub fn take_memory(&mut self) -> Option<Memory> {
        self.memory.take()
    }

    /// Store the memory to recycle on this slot's next run.
    pub fn put_memory(&mut self, memory: Memory) {
        self.memory = Some(memory);
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if !self.returned {
            self.returned = true;
            // Push on top of the stack: the next acquire reuses this
            // (warmest) slot first.
            self.pool.slots.lock().unwrap().push(self.memory.take());
            self.pool.available.notify_one();
        }
    }
}

// ---------------------------------------------------------------------
// Parked cursors
// ---------------------------------------------------------------------

/// A suspended all-solutions query parked *out of* its pool slot.
///
/// The whole point of the resumable engine is that a query waiting for its
/// client to ask for the next answer should not occupy an execution slot:
/// the engine (with its full Stack Set) moves into this table, the slot
/// goes back to the pool, and a later `query-next` re-admits the cursor
/// through the normal acquire path like any other run.
pub struct ParkedQuery {
    /// The suspended engine + program bundle.
    pub cursor: QueryCursor,
    /// Keeps the program's session (and its symbol table, needed to render
    /// answer terms) alive even if the program cache evicts the entry.
    pub entry: Arc<CacheEntry>,
    /// Whether the cursor's engine was built on recycled arenas.
    pub warm: bool,
    /// Cumulative instruction count at the previous answer boundary, so
    /// each `query-next` leg can report a delta into the server counters.
    pub instructions_seen: u64,
    /// Engine wall-clock microseconds charged to the server counters so
    /// far.
    pub micros_seen: u64,
    /// Refreshed on every cursor operation; the eviction clock.
    pub last_used: Instant,
}

/// Counters of the cursor table.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CursorStats {
    /// Cursors currently parked.
    pub parked: u64,
    /// Cursors ever opened.
    pub opened: u64,
    /// Cursors closed by the client or auto-closed on exhaustion/error.
    pub closed: u64,
    /// Cursors reclaimed by the idle-eviction deadline.
    pub evicted: u64,
}

/// The parked-cursor table: id → [`ParkedQuery`], with lazy idle eviction.
///
/// There is no eviction thread; every cursor operation (and every stats
/// request) first sweeps out cursors idle past `idle_timeout`.  A client
/// that abandons a cursor therefore costs one engine's arenas for at most
/// the deadline plus the gap to the next cursor touch — and since an
/// abandoned cursor is only a parked struct, not a thread or a slot,
/// that is purely memory, never capacity.
pub struct CursorTable {
    idle_timeout: Duration,
    capacity: usize,
    next_id: AtomicU64,
    parked: Mutex<HashMap<u64, ParkedQuery>>,
    opened: AtomicU64,
    closed: AtomicU64,
    evicted: AtomicU64,
}

impl CursorTable {
    /// A table holding at most `capacity` parked cursors, each evictable
    /// after `idle_timeout` without a touch.
    pub fn new(idle_timeout: Duration, capacity: usize) -> Self {
        CursorTable {
            idle_timeout,
            capacity,
            next_id: AtomicU64::new(1),
            parked: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The configured idle deadline.
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    /// Drop every cursor idle past the deadline (their engines' arenas are
    /// freed with them).  Returns the ids of the evicted cursors so the
    /// caller can log each eviction to the flight recorder.
    pub fn evict_idle(&self) -> Vec<u64> {
        let now = Instant::now();
        let mut parked = self.parked.lock().unwrap();
        let mut evicted = Vec::new();
        parked.retain(|id, p| {
            let keep = now.duration_since(p.last_used) <= self.idle_timeout;
            if !keep {
                evicted.push(*id);
            }
            keep
        });
        if !evicted.is_empty() {
            self.evicted.fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
        evicted
    }

    /// Park a cursor, assigning its wire id.  `None` when the table is
    /// full — the caller reports an admission rejection and the cursor
    /// (with its arenas) is dropped.
    pub fn park(&self, parked: ParkedQuery) -> Option<u64> {
        let mut map = self.parked.lock().unwrap();
        if map.len() >= self.capacity {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert(id, parked);
        self.opened.fetch_add(1, Ordering::Relaxed);
        Some(id)
    }

    /// Remove a cursor for stepping or closing.  While it is out of the
    /// table a concurrent operation on the same id sees "unknown cursor" —
    /// one operation at a time per cursor, by construction.
    pub fn take(&self, id: u64) -> Option<ParkedQuery> {
        self.parked.lock().unwrap().remove(&id)
    }

    /// Put a stepped cursor back under its id with a fresh idle clock.
    pub fn repark(&self, id: u64, mut parked: ParkedQuery) {
        parked.last_used = Instant::now();
        self.parked.lock().unwrap().insert(id, parked);
    }

    /// Record a cursor closed (client `query-close`, exhaustion, or death
    /// by engine error).  The caller has already dropped or consumed it.
    pub fn note_closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CursorStats {
        CursorStats {
            parked: self.parked.lock().unwrap().len() as u64,
            opened: self.opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapwam::MemoryConfig;

    fn small_pool(size: usize, max_queue: usize) -> EnginePool {
        EnginePool::new(PoolConfig { size, max_queue, queue_timeout: Duration::from_millis(50) })
    }

    #[test]
    fn slots_start_cold_and_keep_memory_warm() {
        let pool = small_pool(1, 4);
        {
            let mut slot = pool.acquire(None).unwrap();
            assert!(slot.take_memory().is_none(), "first acquisition is cold");
            slot.put_memory(Memory::new(MemoryConfig::small(), 2, false));
        }
        let mut slot = pool.acquire(None).unwrap();
        let mem = slot.take_memory().expect("second acquisition sees the recycled memory");
        assert_eq!(mem.num_arenas(), 2);
    }

    #[test]
    fn acquire_prefers_the_warm_slot_over_untouched_cold_ones() {
        // A pool larger than the offered concurrency must warm up at the
        // speed of that concurrency: with LIFO recycle order the single
        // released (warm) slot is reused immediately, even though three
        // never-touched cold slots are also free.  The old FIFO channel
        // rotated through all four slots before any ran warm twice.
        let pool = small_pool(4, 4);
        {
            let mut slot = pool.acquire(None).unwrap();
            assert!(slot.take_memory().is_none(), "first acquisition is cold");
            slot.put_memory(Memory::new(MemoryConfig::small(), 2, false));
        }
        for round in 0..3 {
            let mut slot = pool.acquire(None).unwrap();
            let mem = slot
                .take_memory()
                .unwrap_or_else(|| panic!("round {round}: warm slot not preferred over cold ones"));
            slot.put_memory(mem);
        }
    }

    #[test]
    fn acquire_prefers_warm_even_below_a_cold_top_of_stack() {
        // Release order warm-then-cold leaves a cold slot on top of the
        // stack; the acquire must still dig out the newest *warm* slot
        // (an errored run returns its slot empty — that must not shadow a
        // good one).
        let pool = small_pool(2, 4);
        let mut a = pool.acquire(None).unwrap();
        let b = pool.acquire(None).unwrap();
        a.put_memory(Memory::new(MemoryConfig::small(), 2, false));
        drop(a); // warm
        drop(b); // cold, now on top
        let mut slot = pool.acquire(None).unwrap();
        assert!(slot.take_memory().is_some(), "warm slot must be preferred over the cold top");
    }

    #[test]
    fn exhausted_pool_times_out_waiters() {
        let pool = small_pool(1, 1);
        let _held = pool.acquire(None).unwrap();
        assert!(matches!(pool.acquire(Some(Duration::from_millis(10))), Err(AcquireError::Timeout)));
        let stats = pool.stats();
        assert_eq!(stats.queue_timeouts, 1);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.max_queue_depth, 1);
    }

    #[test]
    fn zero_queue_rejects_as_soon_as_the_pool_is_busy() {
        let pool = small_pool(1, 0);
        let _held = pool.acquire(None).unwrap();
        assert!(matches!(pool.acquire(None), Err(AcquireError::Rejected)));
        assert_eq!(pool.stats().rejections, 1);
    }

    #[test]
    fn overfull_queue_rejects_immediately() {
        let pool = small_pool(1, 1);
        let _held = pool.acquire(None).unwrap();
        std::thread::scope(|s| {
            // One thread parks in the queue; once it is inside, a second
            // arrival must be rejected without waiting.
            let waiter = s.spawn(|| pool.acquire(Some(Duration::from_millis(200))));
            while pool.stats().queue_depth == 0 {
                std::thread::yield_now();
            }
            let second = pool.acquire(Some(Duration::from_millis(200)));
            assert!(matches!(second, Err(AcquireError::Rejected)));
            assert!(matches!(waiter.join().unwrap(), Err(AcquireError::Timeout)));
        });
        assert_eq!(pool.stats().rejections, 1);
    }

    #[test]
    fn released_slot_unblocks_a_waiter() {
        let pool = small_pool(1, 4);
        let held = pool.acquire(None).unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| pool.acquire(Some(Duration::from_secs(5))).map(|_| ()));
            while pool.stats().queue_depth == 0 {
                std::thread::yield_now();
            }
            drop(held);
            assert!(waiter.join().unwrap().is_ok());
        });
    }

    #[test]
    fn run_accounting_reaches_the_stats() {
        let pool = small_pool(2, 2);
        pool.record_run(true);
        pool.record_run(true);
        pool.record_run(false);
        pool.record_error();
        let stats = pool.stats();
        assert_eq!(stats.warm_hits, 2);
        assert_eq!(stats.cold_builds, 1);
        assert_eq!(stats.run_errors, 1);
    }
}
