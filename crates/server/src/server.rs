//! The TCP server: one accept loop, one worker thread per connection, the
//! shared [`EnginePool`] + [`ProgramCache`] behind an `Arc`.

use crate::cache::ProgramCache;
use crate::pool::{AcquireError, EnginePool, PoolConfig};
use crate::protocol::{self, AnswerResponse, ErrorKind, QueryRequest, Request, Response, StatsResponse};
use rapwam::session::{QueryOptions, SessionError};
use rapwam::{EngineError, MemoryConfig, Outcome};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine-pool sizing and queueing policy.
    pub pool: PoolConfig,
    /// Maximum number of cached programs.
    pub max_programs: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Relaxed-mode stall-watchdog timeout passed to every engine.
    pub stall_timeout: Duration,
    /// Per-worker Stack Set sizes for every engine the server builds.  One
    /// fixed shape keeps the pool's recycled arenas reusable across
    /// requests (a request only builds cold when its *worker count*
    /// differs from the slot's previous run).
    pub memory: MemoryConfig,
    /// Upper bound on the per-request worker count (each worker is a full
    /// Stack Set of `memory` words).
    pub max_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            pool: PoolConfig::default(),
            max_programs: 64,
            default_deadline: Some(Duration::from_secs(10)),
            stall_timeout: Duration::from_secs(5),
            // Moderate Stack Sets (~350K words per worker): large enough
            // for every registry benchmark at small/paper scale, small
            // enough that a pool of warm engines stays cheap to hold.
            memory: MemoryConfig {
                heap_words: 1 << 18,
                local_words: 1 << 16,
                control_words: 1 << 16,
                trail_words: 1 << 14,
                pdl_words: 1 << 11,
                goal_stack_words: 1 << 12,
                message_words: 1 << 8,
            },
            max_workers: 16,
        }
    }
}

/// Per-server request counters (the pool and cache keep their own).
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    pub connections: AtomicU64,
    pub queries: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub compile_errors: AtomicU64,
    pub engine_errors: AtomicU64,
    pub deadline_errors: AtomicU64,
    /// Abstract-machine instructions retired by successful queries.
    pub instructions: AtomicU64,
    /// Wall-clock engine time of successful queries, in microseconds —
    /// the denominator of the cumulative-MLIPS figure in `stats`.
    pub engine_micros: AtomicU64,
}

/// State shared by every connection thread.
pub(crate) struct ServerState {
    pub config: ServerConfig,
    pub pool: EnginePool,
    pub cache: ProgramCache,
    pub counters: ServerCounters,
    pub shutdown: AtomicBool,
}

/// A running server.  Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send a `shutdown` request over the wire).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            pool: EnginePool::new(config.pool.clone()),
            cache: ProgramCache::new(config.max_programs),
            counters: ServerCounters::default(),
            shutdown: AtomicBool::new(false),
            config,
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = thread::Builder::new()
            .name("pwam-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(Server { addr, state, accept_thread: Some(accept_thread) })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Statistics as wire key/value pairs (same view the `stats` request
    /// returns).
    pub fn stats(&self) -> StatsResponse {
        stats_response(&self.state)
    }

    /// Stop accepting connections and join the accept loop.  In-flight
    /// connection threads finish their current request and exit when their
    /// client disconnects.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server shuts down (a `shutdown` request arrives).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        let conn = listener.accept();
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn_state = Arc::clone(&state);
                let _ = thread::Builder::new()
                    .name("pwam-conn".to_string())
                    .spawn(move || handle_connection(stream, conn_state));
            }
            Err(_) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept error: keep serving.
            }
        }
    }
}

/// Serve one connection: a sequence of framed requests.
fn handle_connection(mut stream: TcpStream, state: Arc<ServerState>) {
    loop {
        let payload = match protocol::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // client closed
            Err(_) => {
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let response = match protocol::decode_request(&payload) {
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(stats_response(&state)),
            Ok(Request::Shutdown) => {
                state.shutdown.store(true, Ordering::Release);
                let reply = protocol::encode_response(&Response::Bye);
                let _ = protocol::write_frame(&mut stream, &reply);
                // Unblock the accept loop so the server exits.
                if let Ok(addr) = stream.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            Ok(Request::Query(q)) => handle_query(&state, *q),
            Err(e) => {
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { kind: ErrorKind::Protocol, message: e.to_string() }
            }
        };
        let reply = protocol::encode_response(&response);
        if protocol::write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// Execute one query request against the cache + pool.
fn handle_query(state: &ServerState, req: QueryRequest) -> Response {
    state.counters.queries.fetch_add(1, Ordering::Relaxed);
    if req.workers == 0 || req.workers > state.config.max_workers {
        state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            kind: ErrorKind::Protocol,
            message: format!("workers must be 1..={}", state.config.max_workers),
        };
    }
    let arrived = Instant::now();
    let deadline = req.deadline_ms.map(Duration::from_millis).or(state.config.default_deadline);

    // Program + query compilation (cached).
    let entry = match state.cache.entry(&req.program) {
        Ok(e) => e,
        Err(e) => return compile_error(state, e),
    };
    let compiled = match entry.prepared(&req.query, req.parallel) {
        Ok(c) => c,
        Err(e) => return compile_error(state, e),
    };

    // Admission: one pool slot per running engine.
    let mut slot = match state.pool.acquire(deadline) {
        Ok(s) => s,
        Err(AcquireError::Rejected) => {
            return Response::Error {
                kind: ErrorKind::Rejected,
                message: "server is at capacity (wait queue full)".to_string(),
            }
        }
        Err(AcquireError::Timeout) => {
            return Response::Error {
                kind: ErrorKind::QueueTimeout,
                message: "no engine slot freed up within the wait budget".to_string(),
            }
        }
    };

    // The deadline covers the whole request: compile + queue wait eat into
    // the engine's remaining time budget.
    let remaining = deadline.map(|d| d.saturating_sub(arrived.elapsed()));
    if remaining.is_some_and(|r| r.is_zero()) {
        state.counters.deadline_errors.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            kind: ErrorKind::Deadline,
            message: "deadline exhausted before the engine could start".to_string(),
        };
    }
    let options = QueryOptions {
        parallel: req.parallel,
        workers: req.workers,
        memory: state.config.memory,
        scheduler: req.scheduler,
        determinism: req.determinism,
        stall_timeout: state.config.stall_timeout,
        time_budget: remaining,
        ..QueryOptions::default()
    };

    let recycled = slot.take_memory();
    let started = Instant::now();
    let session = entry.session.read().unwrap();
    match session.run_prepared_reusing(&compiled, &options, recycled) {
        Ok((result, memory, warm)) => {
            slot.put_memory(memory);
            state.pool.record_run(warm);
            let bindings = match &result.outcome {
                Outcome::Success(b) => b.iter().map(|(n, t)| (n.clone(), session.render(t))).collect(),
                Outcome::Failure => Vec::new(),
            };
            let elapsed_us = started.elapsed().as_micros() as u64;
            state.counters.instructions.fetch_add(result.stats.instructions, Ordering::Relaxed);
            state.counters.engine_micros.fetch_add(elapsed_us, Ordering::Relaxed);
            Response::Answer(AnswerResponse {
                success: result.outcome.is_success(),
                bindings,
                warm,
                elapsed_us,
                instructions: result.stats.instructions,
                inferences: result.stats.inferences,
                parcalls: result.stats.parcalls,
            })
        }
        Err(e) => {
            state.pool.record_error();
            let (kind, counter) = match &e {
                SessionError::Engine(EngineError::DeadlineExceeded { .. }) => {
                    (ErrorKind::Deadline, &state.counters.deadline_errors)
                }
                _ => (ErrorKind::Engine, &state.counters.engine_errors),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            Response::Error { kind, message: e.to_string() }
        }
    }
}

fn compile_error(state: &ServerState, e: SessionError) -> Response {
    state.counters.compile_errors.fetch_add(1, Ordering::Relaxed);
    Response::Error { kind: ErrorKind::Compile, message: e.to_string() }
}

/// Flatten pool + cache + server counters into the wire stats shape.
fn stats_response(state: &ServerState) -> StatsResponse {
    let pool = state.pool.stats();
    let cache = state.cache.stats();
    let c = &state.counters;
    let instructions = c.instructions.load(Ordering::Relaxed);
    let engine_micros = c.engine_micros.load(Ordering::Relaxed);
    let mlips_x1000 = (instructions * 1000).checked_div(engine_micros).unwrap_or(0);
    StatsResponse {
        fields: vec![
            ("pool_size".to_string(), state.config.pool.size as u64),
            ("pool_requests".to_string(), pool.requests),
            ("pool_warm_hits".to_string(), pool.warm_hits),
            ("pool_cold_builds".to_string(), pool.cold_builds),
            ("pool_rejections".to_string(), pool.rejections),
            ("pool_queue_timeouts".to_string(), pool.queue_timeouts),
            ("pool_run_errors".to_string(), pool.run_errors),
            ("pool_queue_depth".to_string(), pool.queue_depth),
            ("pool_max_queue_depth".to_string(), pool.max_queue_depth),
            ("cache_program_hits".to_string(), cache.program_hits),
            ("cache_program_misses".to_string(), cache.program_misses),
            ("cache_evictions".to_string(), cache.evictions),
            ("cache_programs".to_string(), cache.programs),
            ("cache_compiled_queries".to_string(), cache.compiled_queries),
            ("connections".to_string(), c.connections.load(Ordering::Relaxed)),
            ("queries".to_string(), c.queries.load(Ordering::Relaxed)),
            ("protocol_errors".to_string(), c.protocol_errors.load(Ordering::Relaxed)),
            ("compile_errors".to_string(), c.compile_errors.load(Ordering::Relaxed)),
            ("engine_errors".to_string(), c.engine_errors.load(Ordering::Relaxed)),
            ("deadline_errors".to_string(), c.deadline_errors.load(Ordering::Relaxed)),
            ("instructions".to_string(), instructions),
            ("engine_micros".to_string(), engine_micros),
            // Cumulative throughput across every completed query, in
            // thousandths of a MLIPS (instructions/µs == MIPS, scaled so
            // the integer wire format keeps three decimal places).
            ("mlips_x1000".to_string(), mlips_x1000),
        ],
    }
}
