//! The TCP serving tier, in two interchangeable shapes behind
//! [`ServingMode`]:
//!
//! * **Event loop** (the default): one readiness-driven thread multiplexes
//!   every connection through the vendored [`polling`] poller, with
//!   non-blocking framed I/O, per-connection pipelining, and a small
//!   worker pool running engine requests off the loop (see
//!   [`crate::event_loop`]).  Concurrent connections cost a buffer each,
//!   not a thread each.
//! * **Thread per connection** (the differential baseline): one blocking
//!   worker thread per accepted connection, shed beyond
//!   [`THREAD_MODE_MAX_CONNECTIONS`] — each idle connection pins a full
//!   thread stack, so this mode's capacity ceiling is set by thread
//!   memory, not by sockets.
//!
//! Both shapes share every handler below and the same `ServerState`
//! (pool, cache, cursor table, tenant quotas, metrics), so their observable
//! protocol behaviour is identical — only the concurrency structure
//! differs.

use crate::cache::ProgramCache;
use crate::metrics::{FlightRecorder, ServerMetrics, FLIGHT_RECORDER_CAP};
use crate::pool::{AcquireError, CursorTable, EnginePool, ParkedQuery, PoolConfig, SlotGuard};
use crate::protocol::{self, AnswerResponse, ErrorKind, QueryRequest, Request, Response, StatsResponse};
use crate::tenant::TenantTable;
use rapwam::session::{CursorStep, QueryOptions, SessionError};
use rapwam::{EngineError, MemoryConfig, Outcome};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Hard ceiling on concurrent connections in thread-per-connection mode.
/// Each connection pins a whole thread (stack, scheduler slot) even while
/// idle, so the baseline sheds far earlier than the event loop does; this
/// constant is the denominator of the capacity comparison the event loop
/// is measured against.
pub const THREAD_MODE_MAX_CONNECTIONS: usize = 256;

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// One readiness-driven event loop plus a small engine worker pool.
    EventLoop,
    /// One blocking thread per connection (the differential baseline,
    /// capped at [`THREAD_MODE_MAX_CONNECTIONS`]).
    ThreadPerConnection,
}

impl ServingMode {
    pub fn name(self) -> &'static str {
        match self {
            ServingMode::EventLoop => "event-loop",
            ServingMode::ThreadPerConnection => "threads",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "event-loop" => ServingMode::EventLoop,
            "threads" => ServingMode::ThreadPerConnection,
            _ => return None,
        })
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine-pool sizing and queueing policy.
    pub pool: PoolConfig,
    /// Maximum number of cached programs.
    pub max_programs: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Relaxed-mode stall-watchdog timeout passed to every engine.
    pub stall_timeout: Duration,
    /// Per-worker Stack Set sizes for every engine the server builds.  One
    /// fixed shape keeps the pool's recycled arenas reusable across
    /// requests (a request only builds cold when its *worker count*
    /// differs from the slot's previous run).
    pub memory: MemoryConfig,
    /// Upper bound on the per-request worker count (each worker is a full
    /// Stack Set of `memory` words).
    pub max_workers: usize,
    /// How long a parked cursor may sit untouched before idle eviction
    /// reclaims it (lazily, on the next cursor or stats request).
    pub cursor_idle_timeout: Duration,
    /// Upper bound on concurrently parked cursors; `query-open` beyond it
    /// is rejected (each parked cursor holds a full engine's arenas).
    pub max_cursors: usize,
    /// How connections are multiplexed.
    pub mode: ServingMode,
    /// Engine worker threads behind the event loop (requests that run the
    /// engine are executed here so the loop itself never blocks).  Ignored
    /// in thread-per-connection mode.
    pub event_workers: usize,
    /// Upper bound on concurrent connections; arrivals beyond it get a
    /// well-framed `rejected` error and an immediate close.  Thread mode
    /// additionally clamps this to [`THREAD_MODE_MAX_CONNECTIONS`].
    pub max_connections: usize,
    /// Instruction-fuel budget applied to requests that do not carry their
    /// own `fuel` header (`None` = unlimited).
    pub default_fuel: Option<u64>,
    /// Per-tenant concurrent-request quota (`0` = unlimited).  Only
    /// requests carrying a `tenant` header are counted.
    pub tenant_max_active: usize,
    /// Event-loop I/O idle deadline: a connection that sits mid-frame (or
    /// entirely silent) longer than this is closed — the slowloris guard.
    pub io_idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            pool: PoolConfig::default(),
            max_programs: 64,
            default_deadline: Some(Duration::from_secs(10)),
            stall_timeout: Duration::from_secs(5),
            // Moderate Stack Sets (~350K words per worker): large enough
            // for every registry benchmark at small/paper scale, small
            // enough that a pool of warm engines stays cheap to hold.
            memory: MemoryConfig {
                heap_words: 1 << 18,
                local_words: 1 << 16,
                control_words: 1 << 16,
                trail_words: 1 << 14,
                pdl_words: 1 << 11,
                goal_stack_words: 1 << 12,
                message_words: 1 << 8,
            },
            max_workers: 16,
            cursor_idle_timeout: Duration::from_secs(60),
            max_cursors: 128,
            mode: ServingMode::EventLoop,
            event_workers: 4,
            max_connections: 1024,
            default_fuel: None,
            tenant_max_active: 0,
            io_idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Per-server request counters (the pool and cache keep their own).
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    pub connections: AtomicU64,
    pub queries: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub compile_errors: AtomicU64,
    pub engine_errors: AtomicU64,
    pub deadline_errors: AtomicU64,
    /// One-shot queries killed by fuel exhaustion (terminal).
    pub fuel_errors: AtomicU64,
    /// Cursor legs preempted by fuel exhaustion (resumable: the cursor
    /// stays parked and the next `query-next` continues it).
    pub fuel_preemptions: AtomicU64,
    /// Requests turned away by their tenant's admission quota.
    pub quota_rejections: AtomicU64,
    /// Connections open right now (a gauge, despite living here: both
    /// serving modes balance increments with decrements).
    pub connections_active: AtomicU64,
    /// Abstract-machine instructions retired by successful queries.
    pub instructions: AtomicU64,
    /// Wall-clock engine time of successful queries, in microseconds —
    /// the denominator of the cumulative-MLIPS figure in `stats`.
    pub engine_micros: AtomicU64,
}

/// State shared by every connection thread.
pub(crate) struct ServerState {
    pub config: ServerConfig,
    pub pool: EnginePool,
    pub cache: ProgramCache,
    pub cursors: CursorTable,
    pub tenants: TenantTable,
    pub counters: ServerCounters,
    pub metrics: ServerMetrics,
    pub flight: FlightRecorder,
    pub shutdown: AtomicBool,
}

/// A running server.  Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send a `shutdown` request over the wire).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving in the configured [`ServingMode`].
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let mode = config.mode;
        let state = Arc::new(ServerState {
            pool: EnginePool::new(config.pool.clone()),
            cache: ProgramCache::new(config.max_programs),
            cursors: CursorTable::new(config.cursor_idle_timeout, config.max_cursors),
            tenants: TenantTable::new(config.tenant_max_active),
            counters: ServerCounters::default(),
            metrics: ServerMetrics::new(),
            flight: FlightRecorder::new(FLIGHT_RECORDER_CAP),
            shutdown: AtomicBool::new(false),
            config,
        });
        let accept_state = Arc::clone(&state);
        let accept_thread =
            thread::Builder::new().name("pwam-accept".to_string()).spawn(move || match mode {
                #[cfg(unix)]
                ServingMode::EventLoop => crate::event_loop::serve(listener, accept_state),
                #[cfg(not(unix))]
                ServingMode::EventLoop => accept_loop(listener, accept_state),
                ServingMode::ThreadPerConnection => accept_loop(listener, accept_state),
            })?;
        Ok(Server { addr, state, accept_thread: Some(accept_thread) })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Statistics as wire key/value pairs (same view the `stats` request
    /// returns).
    pub fn stats(&self) -> StatsResponse {
        stats_response(&self.state)
    }

    /// The Prometheus-style metrics exposition (the same text the
    /// `metrics` request returns).
    pub fn metrics_text(&self) -> String {
        self.state.metrics.render(&self.state)
    }

    /// The flight recorder's newest `limit` events (all when `None`), one
    /// per line — the same text the `events` request returns.
    pub fn events_text(&self, limit: Option<u64>) -> String {
        self.state.flight.render(limit)
    }

    /// Stop accepting connections and join the accept loop.  In-flight
    /// connection threads finish their current request and exit when their
    /// client disconnects.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server shuts down (a `shutdown` request arrives).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let cap = state.config.max_connections.min(THREAD_MODE_MAX_CONNECTIONS);
    loop {
        let conn = listener.accept();
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn {
            Ok((mut stream, _)) => {
                // Shed beyond the thread cap *before* spawning: every
                // admitted connection costs a full thread here, which is
                // exactly the scaling wall the event loop removes.
                if state.counters.connections_active.load(Ordering::Acquire) >= cap as u64 {
                    let reply = protocol::encode_response(&Response::Error {
                        kind: ErrorKind::Rejected,
                        message: format!("server is at its connection limit ({cap})"),
                    });
                    let _ = protocol::write_frame(&mut stream, &reply);
                    continue;
                }
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                state.counters.connections_active.fetch_add(1, Ordering::AcqRel);
                let conn_state = Arc::clone(&state);
                let spawned = thread::Builder::new().name("pwam-conn".to_string()).spawn(move || {
                    handle_connection(stream, Arc::clone(&conn_state));
                    conn_state.counters.connections_active.fetch_sub(1, Ordering::AcqRel);
                });
                if spawned.is_err() {
                    // Thread exhaustion: the connection was counted in but
                    // never served — balance the gauge.
                    state.counters.connections_active.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(_) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept error: keep serving.
            }
        }
    }
}

/// Fallback for [`ServingMode::EventLoop`] on platforms where the poller
/// cannot be built: restore blocking accepts (the event loop's setup may
/// already have flipped the listener's shared file-status flags) and serve
/// one thread per connection instead.
#[cfg(unix)]
pub(crate) fn accept_loop_fallback(listener: TcpListener, state: Arc<ServerState>) {
    let _ = listener.set_nonblocking(false);
    accept_loop(listener, state);
}

/// Serve one connection: a sequence of framed requests.
fn handle_connection(mut stream: TcpStream, state: Arc<ServerState>) {
    // Responses are written as two small writes (length prefix, body);
    // with Nagle enabled the body stalls behind the client's delayed ACK,
    // inflating client-observed latency by tens of milliseconds over what
    // the request histograms record server-side.
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match protocol::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // client closed
            Err(_) => {
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let response = match protocol::decode_request(&payload) {
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(stats_response(&state)),
            Ok(Request::Metrics) => {
                sweep_idle_cursors(&state);
                Response::Metrics { text: state.metrics.render(&state) }
            }
            Ok(Request::Events { limit }) => Response::Events { text: state.flight.render(limit) },
            Ok(Request::Shutdown) => {
                state.shutdown.store(true, Ordering::Release);
                let reply = protocol::encode_response(&Response::Bye);
                let _ = protocol::write_frame(&mut stream, &reply);
                // Unblock the accept loop so the server exits.
                if let Ok(addr) = stream.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            Ok(Request::Query(q)) => handle_query(&state, *q, Instant::now()),
            Ok(Request::QueryOpen(q)) => handle_query_open(&state, *q),
            Ok(Request::QueryNext { cursor }) => handle_query_next(&state, cursor),
            Ok(Request::QueryClose { cursor }) => handle_query_close(&state, cursor),
            Err(e) => {
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { kind: ErrorKind::Protocol, message: e.to_string() }
            }
        };
        let reply = protocol::encode_response(&response);
        if protocol::write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// Execute one query request: time the whole request into the
/// `request_us` histogram and log its outcome to the flight recorder,
/// with the actual work in [`run_query`].  `arrived` is when the frame
/// was read off the wire — in the event loop that predates worker-queue
/// wait, which is part of the request (for both the histogram and the
/// deadline budget).
pub(crate) fn handle_query(state: &ServerState, req: QueryRequest, arrived: Instant) -> Response {
    let response = run_query(state, req, arrived);
    let us = arrived.elapsed().as_micros() as u64;
    state.metrics.request_us.observe(us);
    let status = match &response {
        Response::Answer(a) if a.success => "success",
        Response::Answer(_) => "failure",
        _ => "error",
    };
    state.flight.record("query", &format!("status={status} us={us}"));
    response
}

/// Execute one query request against the cache + pool.
fn run_query(state: &ServerState, req: QueryRequest, arrived: Instant) -> Response {
    state.counters.queries.fetch_add(1, Ordering::Relaxed);
    if req.workers == 0 || req.workers > state.config.max_workers {
        state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            kind: ErrorKind::Protocol,
            message: format!("workers must be 1..={}", state.config.max_workers),
        };
    }
    // Tenant quota first: a tenant at its cap must not consume compile
    // time or a pool slot.  The guard spans the whole request.
    let _tenant = match state.tenants.admit(req.tenant.as_deref()) {
        Ok(guard) => guard,
        Err(active) => return quota_rejected(state, &req, active),
    };
    let deadline = req.deadline_ms.map(Duration::from_millis).or(state.config.default_deadline);

    // Program + query compilation (cached).
    let compile_started = Instant::now();
    let entry = match state.cache.entry(&req.program) {
        Ok(e) => e,
        Err(e) => return compile_error(state, e),
    };
    let compiled = match entry.prepared(&req.query, req.parallel) {
        Ok(c) => c,
        Err(e) => return compile_error(state, e),
    };
    state.metrics.compile_us.observe(compile_started.elapsed().as_micros() as u64);

    // Admission: one pool slot per running engine.  The queue-wait
    // histogram records successful admissions (rejections and timeouts
    // surface through their error counters instead).
    let wait_started = Instant::now();
    let mut slot = match state.pool.acquire(deadline) {
        Ok(s) => s,
        Err(AcquireError::Rejected) => {
            return Response::Error {
                kind: ErrorKind::Rejected,
                message: "server is at capacity (wait queue full)".to_string(),
            }
        }
        Err(AcquireError::Timeout) => {
            return Response::Error {
                kind: ErrorKind::QueueTimeout,
                message: "no engine slot freed up within the wait budget".to_string(),
            }
        }
    };
    state.metrics.queue_wait_us.observe(wait_started.elapsed().as_micros() as u64);

    // The deadline covers the whole request: compile + queue wait eat into
    // the engine's remaining time budget.
    let remaining = deadline.map(|d| d.saturating_sub(arrived.elapsed()));
    if remaining.is_some_and(|r| r.is_zero()) {
        state.counters.deadline_errors.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            kind: ErrorKind::Deadline,
            message: "deadline exhausted before the engine could start".to_string(),
        };
    }
    let options = QueryOptions {
        parallel: req.parallel,
        workers: req.workers,
        memory: state.config.memory,
        scheduler: req.scheduler,
        determinism: req.determinism,
        stall_timeout: state.config.stall_timeout,
        time_budget: remaining,
        fuel: req.fuel.or(state.config.default_fuel),
        ..QueryOptions::default()
    };

    let recycled = slot.take_memory();
    let started = Instant::now();
    let session = entry.session.read().unwrap();
    match session.run_prepared_reusing(&compiled, &options, recycled) {
        Ok((result, memory, warm)) => {
            slot.put_memory(memory);
            state.pool.record_run(warm);
            let bindings = match &result.outcome {
                Outcome::Success(b) => b.iter().map(|(n, t)| (n.clone(), session.render(t))).collect(),
                Outcome::Failure => Vec::new(),
            };
            let elapsed_us = started.elapsed().as_micros() as u64;
            state.counters.instructions.fetch_add(result.stats.instructions, Ordering::Relaxed);
            state.counters.engine_micros.fetch_add(elapsed_us, Ordering::Relaxed);
            state.metrics.execute_us.observe(elapsed_us);
            state.metrics.record_run(&result.stats);
            Response::Answer(AnswerResponse {
                success: result.outcome.is_success(),
                bindings,
                warm,
                elapsed_us,
                instructions: result.stats.instructions,
                inferences: result.stats.inferences,
                parcalls: result.stats.parcalls,
            })
        }
        Err(e) => {
            state.pool.record_error();
            let (kind, counter) = match &e {
                SessionError::Engine(EngineError::DeadlineExceeded { .. }) => {
                    state.metrics.query_preempted.add("deadline", 1);
                    (ErrorKind::Deadline, &state.counters.deadline_errors)
                }
                SessionError::Engine(EngineError::FuelExhausted { .. }) => {
                    state.metrics.query_preempted.add("fuel", 1);
                    (ErrorKind::Fuel, &state.counters.fuel_errors)
                }
                _ => (ErrorKind::Engine, &state.counters.engine_errors),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            Response::Error { kind, message: e.to_string() }
        }
    }
}

/// Reject a request whose tenant is already at its admission quota.
fn quota_rejected(state: &ServerState, req: &QueryRequest, active: u64) -> Response {
    state.counters.quota_rejections.fetch_add(1, Ordering::Relaxed);
    let tenant = req.tenant.as_deref().unwrap_or("");
    state.flight.record("quota", &format!("tenant={tenant} active={active}"));
    Response::Error {
        kind: ErrorKind::Quota,
        message: format!(
            "tenant {tenant:?} is at its admission quota ({active} of {} in flight)",
            state.config.tenant_max_active
        ),
    }
}

fn compile_error(state: &ServerState, e: SessionError) -> Response {
    state.counters.compile_errors.fetch_add(1, Ordering::Relaxed);
    Response::Error { kind: ErrorKind::Compile, message: e.to_string() }
}

/// Map a failed pool acquisition to its wire error.
fn acquire_error(e: AcquireError) -> Response {
    match e {
        AcquireError::Rejected => Response::Error {
            kind: ErrorKind::Rejected,
            message: "server is at capacity (wait queue full)".to_string(),
        },
        AcquireError::Timeout => Response::Error {
            kind: ErrorKind::QueueTimeout,
            message: "no engine slot freed up within the wait budget".to_string(),
        },
    }
}

/// Open a cursor: compile, borrow a pool slot just long enough to take its
/// recycled arenas, build the resumable engine around them, and park it.
/// Nothing executes — the first `query-next` starts the query — so the
/// slot goes straight back to the pool and open never blocks behind
/// engine work beyond the acquire itself.
pub(crate) fn handle_query_open(state: &ServerState, req: QueryRequest) -> Response {
    sweep_idle_cursors(state);
    if req.workers == 0 || req.workers > state.config.max_workers {
        state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            kind: ErrorKind::Protocol,
            message: format!("workers must be 1..={}", state.config.max_workers),
        };
    }
    // The quota covers the open itself; a *parked* cursor holds no tenant
    // slot (parked means not executing), just as it holds no pool slot.
    let _tenant = match state.tenants.admit(req.tenant.as_deref()) {
        Ok(guard) => guard,
        Err(active) => return quota_rejected(state, &req, active),
    };
    // The request deadline becomes the *per-leg* time budget: `resume`
    // re-arms the engine clock, so each `query-next` gets the full budget
    // rather than the whole stream sharing one.
    let deadline = req.deadline_ms.map(Duration::from_millis).or(state.config.default_deadline);

    let entry = match state.cache.entry(&req.program) {
        Ok(e) => e,
        Err(e) => return compile_error(state, e),
    };
    let compiled = match entry.prepared(&req.query, req.parallel) {
        Ok(c) => c,
        Err(e) => return compile_error(state, e),
    };

    // Borrow a slot only to inherit its warm arenas; the engine parks
    // outside the pool and the slot returns (empty) immediately.
    let recycled = match state.pool.acquire(deadline) {
        Ok(mut slot) => slot.take_memory(),
        Err(e) => return acquire_error(e),
    };
    let warm = recycled.is_some();
    state.pool.record_run(warm);
    let options = QueryOptions {
        parallel: req.parallel,
        workers: req.workers,
        memory: state.config.memory,
        scheduler: req.scheduler,
        determinism: req.determinism,
        stall_timeout: state.config.stall_timeout,
        time_budget: deadline,
        // Like the deadline, fuel is a *per-leg* budget: the engine
        // re-arms it at every resume, so each `query-next` gets the full
        // allotment and a preempted leg picks up exactly where it stopped.
        fuel: req.fuel.or(state.config.default_fuel),
        ..QueryOptions::default()
    };
    let cursor = {
        let session = entry.session.read().unwrap();
        match session.open_cursor(&compiled, &options, recycled) {
            Ok(c) => c,
            Err(e) => {
                state.counters.engine_errors.fetch_add(1, Ordering::Relaxed);
                return Response::Error { kind: ErrorKind::Engine, message: e.to_string() };
            }
        }
    };
    let parked =
        ParkedQuery { cursor, entry, warm, instructions_seen: 0, micros_seen: 0, last_used: Instant::now() };
    match state.cursors.park(parked) {
        Some(id) => {
            state.flight.record("open", &format!("cursor={id} warm={warm}"));
            Response::CursorOpened { cursor: id }
        }
        None => Response::Error {
            kind: ErrorKind::Rejected,
            message: format!("cursor table is full ({} parked)", state.config.max_cursors),
        },
    }
}

/// Step a parked cursor to its next answer.  The cursor is re-admitted
/// through the pool (it competes for a slot like any run — that is the
/// admission-control story), but keeps its own arenas: the slot's memory
/// is left untouched for the plain-query warm path.
pub(crate) fn handle_query_next(state: &ServerState, id: u64) -> Response {
    sweep_idle_cursors(state);
    let Some(mut parked) = state.cursors.take(id) else {
        return unknown_cursor(id);
    };
    let slot = match state.pool.acquire(None) {
        Ok(s) => s,
        Err(e) => {
            // Couldn't get a slot: the cursor is untouched, put it back.
            state.cursors.repark(id, parked);
            return acquire_error(e);
        }
    };
    let started = Instant::now();
    match parked.cursor.next_step() {
        Ok(CursorStep::Answer(bindings)) => {
            let rendered = {
                let session = parked.entry.session.read().unwrap();
                bindings.iter().map(|(n, t)| (n.clone(), session.render(t))).collect()
            };
            let answer = cursor_answer(state, &mut parked, started, true, rendered);
            state.flight.record("resume", &format!("cursor={id} status=answer us={}", answer.elapsed_us));
            state.cursors.repark(id, parked);
            Response::Answer(answer)
        }
        Ok(CursorStep::Exhausted) => {
            // Exhausted: auto-close, recycling the cursor's arenas into
            // the slot we hold so the next plain query runs warm.
            let answer = cursor_answer(state, &mut parked, started, false, Vec::new());
            state.flight.record("resume", &format!("cursor={id} status=exhausted us={}", answer.elapsed_us));
            retire_cursor(state, parked, Some(slot));
            Response::Answer(answer)
        }
        Ok(CursorStep::FuelExhausted) => {
            // A fuel preemption is a *scheduling* event, not a failure:
            // the engine parked at a deterministic instruction boundary,
            // the cursor survives, and the next `query-next` resumes it
            // with a fresh budget.  The leg's wall-clock and instruction
            // delta are still charged so the throughput counters see the
            // partial work.
            let elapsed_us = started.elapsed().as_micros() as u64;
            let stats = parked.cursor.stats().unwrap_or_default();
            let delta = stats.instructions.saturating_sub(parked.instructions_seen);
            parked.instructions_seen = stats.instructions;
            parked.micros_seen += elapsed_us;
            state.counters.instructions.fetch_add(delta, Ordering::Relaxed);
            state.counters.engine_micros.fetch_add(elapsed_us, Ordering::Relaxed);
            state.metrics.resume_us.observe(elapsed_us);
            state.counters.fuel_preemptions.fetch_add(1, Ordering::Relaxed);
            state.metrics.query_preempted.add("fuel", 1);
            state.flight.record("resume", &format!("cursor={id} status=fuel us={elapsed_us}"));
            state.cursors.repark(id, parked);
            Response::Error {
                kind: ErrorKind::Fuel,
                message: format!(
                    "cursor {id} preempted: instruction fuel exhausted after {delta} \
                     instructions this leg (the cursor is still open; query-next resumes it)"
                ),
            }
        }
        Err(e) => {
            // The engine is dead; so is the cursor (its memory with it).
            state.pool.record_error();
            state.cursors.note_closed();
            state.flight.record("resume", &format!("cursor={id} status=error"));
            let (kind, counter) = match &e {
                SessionError::Engine(EngineError::DeadlineExceeded { .. }) => {
                    state.metrics.query_preempted.add("deadline", 1);
                    (ErrorKind::Deadline, &state.counters.deadline_errors)
                }
                _ => (ErrorKind::Engine, &state.counters.engine_errors),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            Response::Error { kind, message: e.to_string() }
        }
    }
}

/// Discard a parked cursor.
pub(crate) fn handle_query_close(state: &ServerState, id: u64) -> Response {
    sweep_idle_cursors(state);
    match state.cursors.take(id) {
        Some(parked) => {
            retire_cursor(state, parked, None);
            state.flight.record("close", &format!("cursor={id}"));
            Response::CursorClosed
        }
        None => unknown_cursor(id),
    }
}

/// Run the lazy idle-eviction sweep, logging each reclaimed cursor to the
/// flight recorder.
pub(crate) fn sweep_idle_cursors(state: &ServerState) {
    for id in state.cursors.evict_idle() {
        state.flight.record("evict", &format!("cursor={id}"));
    }
}

fn unknown_cursor(id: u64) -> Response {
    Response::Error {
        kind: ErrorKind::Cursor,
        message: format!("unknown cursor {id} (never opened, already closed, or evicted)"),
    }
}

/// Build the `answer` frame for one cursor leg and charge its instruction
/// and wall-clock deltas to the server's throughput counters.
fn cursor_answer(
    state: &ServerState,
    parked: &mut ParkedQuery,
    started: Instant,
    success: bool,
    bindings: Vec<(String, String)>,
) -> AnswerResponse {
    let stats = parked.cursor.stats().unwrap_or_default();
    let elapsed_us = started.elapsed().as_micros() as u64;
    let delta = stats.instructions.saturating_sub(parked.instructions_seen);
    parked.instructions_seen = stats.instructions;
    parked.micros_seen += elapsed_us;
    state.counters.instructions.fetch_add(delta, Ordering::Relaxed);
    state.counters.engine_micros.fetch_add(elapsed_us, Ordering::Relaxed);
    state.metrics.resume_us.observe(elapsed_us);
    AnswerResponse {
        success,
        bindings,
        warm: parked.warm,
        elapsed_us,
        // Cumulative over the cursor's lifetime, like the one-shot path's
        // whole-run numbers.
        instructions: stats.instructions,
        inferences: stats.inferences,
        parcalls: stats.parcalls,
    }
}

/// Close a finished (or explicitly closed) cursor, recovering its arenas
/// into `slot` when one is held so the pool's warm path inherits them.
fn retire_cursor(state: &ServerState, parked: ParkedQuery, slot: Option<SlotGuard<'_>>) {
    let ParkedQuery { cursor, .. } = parked;
    // Fold the cursor's lifetime scheduler telemetry and predicate profile
    // into the registry exactly once, at retirement (per-leg folding would
    // double-count the cumulative worker counters).
    if let Some(stats) = cursor.stats() {
        state.metrics.record_run(&stats);
    }
    let memory = cursor.close();
    if let (Some(mut slot), Some(memory)) = (slot, memory) {
        slot.put_memory(memory);
    }
    state.cursors.note_closed();
}

/// Cumulative throughput in thousandths of a MLIPS.  Widening to `u128`
/// keeps the `* 1000` from overflowing once the instruction total passes
/// `u64::MAX / 1000` (~1.8e16 — hours of sustained load); a zero
/// denominator (no successful query yet) reports 0 rather than dividing.
pub(crate) fn cumulative_mlips_x1000(instructions: u64, engine_micros: u64) -> u64 {
    if engine_micros == 0 {
        return 0;
    }
    let scaled = instructions as u128 * 1000 / engine_micros as u128;
    scaled.min(u64::MAX as u128) as u64
}

/// Flatten pool + cache + server counters into the wire stats shape.
pub(crate) fn stats_response(state: &ServerState) -> StatsResponse {
    sweep_idle_cursors(state);
    let pool = state.pool.stats();
    let cache = state.cache.stats();
    let cursors = state.cursors.stats();
    let tenants = state.tenants.stats();
    let c = &state.counters;
    let instructions = c.instructions.load(Ordering::Relaxed);
    let engine_micros = c.engine_micros.load(Ordering::Relaxed);
    let mlips_x1000 = cumulative_mlips_x1000(instructions, engine_micros);
    StatsResponse {
        fields: vec![
            ("pool_size".to_string(), state.config.pool.size as u64),
            ("pool_requests".to_string(), pool.requests),
            ("pool_warm_hits".to_string(), pool.warm_hits),
            ("pool_cold_builds".to_string(), pool.cold_builds),
            ("pool_rejections".to_string(), pool.rejections),
            ("pool_queue_timeouts".to_string(), pool.queue_timeouts),
            ("pool_run_errors".to_string(), pool.run_errors),
            ("pool_queue_depth".to_string(), pool.queue_depth),
            ("pool_max_queue_depth".to_string(), pool.max_queue_depth),
            ("cache_program_hits".to_string(), cache.program_hits),
            ("cache_program_misses".to_string(), cache.program_misses),
            ("cache_evictions".to_string(), cache.evictions),
            ("cache_programs".to_string(), cache.programs),
            ("cache_compiled_queries".to_string(), cache.compiled_queries),
            ("parked_cursors".to_string(), cursors.parked),
            ("cursors_opened".to_string(), cursors.opened),
            ("cursors_closed".to_string(), cursors.closed),
            ("cursors_evicted".to_string(), cursors.evicted),
            ("connections".to_string(), c.connections.load(Ordering::Relaxed)),
            ("connections_active".to_string(), c.connections_active.load(Ordering::Relaxed)),
            ("queries".to_string(), c.queries.load(Ordering::Relaxed)),
            ("protocol_errors".to_string(), c.protocol_errors.load(Ordering::Relaxed)),
            ("compile_errors".to_string(), c.compile_errors.load(Ordering::Relaxed)),
            ("engine_errors".to_string(), c.engine_errors.load(Ordering::Relaxed)),
            ("deadline_errors".to_string(), c.deadline_errors.load(Ordering::Relaxed)),
            ("fuel_errors".to_string(), c.fuel_errors.load(Ordering::Relaxed)),
            ("fuel_preemptions".to_string(), c.fuel_preemptions.load(Ordering::Relaxed)),
            ("quota_rejections".to_string(), c.quota_rejections.load(Ordering::Relaxed)),
            ("tenants_admitted".to_string(), tenants.admitted),
            ("tenants_rejected".to_string(), tenants.rejected),
            ("tenants_active".to_string(), tenants.active),
            ("instructions".to_string(), instructions),
            ("engine_micros".to_string(), engine_micros),
            // Cumulative throughput across every completed query, in
            // thousandths of a MLIPS (instructions/µs == MIPS, scaled so
            // the integer wire format keeps three decimal places).
            ("mlips_x1000".to_string(), mlips_x1000),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::cumulative_mlips_x1000;

    #[test]
    fn mlips_zero_denominator_reports_zero() {
        assert_eq!(cumulative_mlips_x1000(0, 0), 0);
        assert_eq!(cumulative_mlips_x1000(1_000_000, 0), 0);
    }

    #[test]
    fn mlips_zero_numerator_is_zero() {
        assert_eq!(cumulative_mlips_x1000(0, 12345), 0);
    }

    #[test]
    fn mlips_ordinary_ratio() {
        // 5M instructions in 2s → 2.5 MIPS → 2500 thousandths.
        assert_eq!(cumulative_mlips_x1000(5_000_000, 2_000_000), 2500);
    }

    #[test]
    fn mlips_survives_u64_overflow_of_the_scaled_numerator() {
        // instructions * 1000 overflows u64 here; the u128 widening must
        // still produce the exact ratio.
        let instructions = u64::MAX / 2;
        let micros = 1_000_000;
        let expected = (instructions as u128 * 1000 / micros as u128) as u64;
        assert_eq!(cumulative_mlips_x1000(instructions, micros), expected);
    }

    #[test]
    fn mlips_saturates_rather_than_wrapping() {
        // A pathological ratio beyond u64 clamps to u64::MAX.
        assert_eq!(cumulative_mlips_x1000(u64::MAX, 1), u64::MAX);
    }
}
