//! The wire protocol: a small length-prefixed text protocol.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 text.  The payload is line-oriented — a verb
//! line, `key value` header lines, a blank line, then counted byte sections
//! for fields that may themselves contain newlines (program source, query
//! text, error messages).  Counted sections make the format self-delimiting
//! without any escaping.
//!
//! A query request looks like:
//!
//! ```text
//! query
//! workers 4
//! parallel true
//! scheduler threaded
//! determinism relaxed
//! deadline-ms 2000
//! program-bytes 37
//! query-bytes 12
//!
//! app([],L,L).app([H|T],L,[H|R])... app([1],[2],X)
//! ```
//!
//! and a successful response:
//!
//! ```text
//! answer
//! outcome success
//! warm true
//! elapsed-us 1234
//! instructions 5678
//! inferences 90
//! parcalls 7
//! bindings 1
//!
//! 1 5
//! X[1,2]
//! ```
//!
//! (each binding is a `name-bytes value-bytes` header line followed by the
//! two counted sections — rendered terms may contain *any* characters,
//! including newlines from quoted atoms, without escaping).
//!
//! All-solutions streaming uses three cursor verbs.  `query-open` carries
//! the same body as `query` but runs nothing: the server parks a resumable
//! engine and replies `cursor-opened` with a `cursor` id.  Each
//! `query-next` (a `cursor N` header, no body) steps that engine to its
//! next answer and replies with a normal `answer` frame; `outcome failure`
//! means the stream is exhausted and the cursor is already gone.
//! `query-close` discards the cursor early and replies `cursor-closed`.
//! Cursors idle past the server's eviction deadline are reclaimed; any
//! verb naming a reclaimed (or never-opened) id gets a `cursor` error.

use rapwam::{DeterminismMode, SchedulerKind};
use std::io::{self, Read, Write};

/// Upper bound on a frame payload; a frame claiming more is a protocol
/// error (protects the server from a garbage length prefix).
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// What went wrong while handling a request, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame or unparsable request.
    Protocol,
    /// Program or query failed to parse/compile.
    Compile,
    /// Admission control turned the request away (queue full).
    Rejected,
    /// The request waited too long for a pool slot.
    QueueTimeout,
    /// The engine ran past the request deadline.
    Deadline,
    /// The engine aborted (out of memory, step limit, internal error).
    Engine,
    /// A cursor operation named an unknown id (never opened, already
    /// closed, or reclaimed by idle eviction).
    Cursor,
    /// The query's deterministic instruction-fuel budget ran out.  For a
    /// one-shot `query` this is terminal; for a cursor leg the cursor
    /// stays parked and another `query-next` resumes exactly where the
    /// engine stopped.
    Fuel,
    /// The tenant named by the request is already running its full
    /// admission quota of queries; retry after one finishes.
    Quota,
}

impl ErrorKind {
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Compile => "compile",
            ErrorKind::Rejected => "rejected",
            ErrorKind::QueueTimeout => "queue-timeout",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Engine => "engine",
            ErrorKind::Cursor => "cursor",
            ErrorKind::Fuel => "fuel",
            ErrorKind::Quota => "quota",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "protocol" => ErrorKind::Protocol,
            "compile" => ErrorKind::Compile,
            "rejected" => ErrorKind::Rejected,
            "queue-timeout" => ErrorKind::QueueTimeout,
            "deadline" => ErrorKind::Deadline,
            "engine" => ErrorKind::Engine,
            "cursor" => ErrorKind::Cursor,
            "fuel" => ErrorKind::Fuel,
            "quota" => ErrorKind::Quota,
            _ => return None,
        })
    }
}

/// One query to run against a (cached) program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Program source text (the cache key).
    pub program: String,
    /// Query text.
    pub query: String,
    /// Number of PEs.
    pub workers: usize,
    /// Compile CGEs to parallel code (RAP-WAM) or sequential (WAM).
    pub parallel: bool,
    /// Execution backend.
    pub scheduler: SchedulerKind,
    /// Determinism mode of the backend.
    pub determinism: DeterminismMode,
    /// Per-request deadline in milliseconds (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// Deterministic instruction-fuel budget (`None` = server default,
    /// which may itself be unlimited).  One-shot queries that exhaust it
    /// fail with a `fuel` error; cursor legs suspend resumably instead.
    pub fuel: Option<u64>,
    /// Admission-quota identity.  Anonymous requests (`None`) bypass the
    /// per-tenant quota entirely.
    pub tenant: Option<String>,
}

impl Default for QueryRequest {
    fn default() -> Self {
        QueryRequest {
            program: String::new(),
            query: String::new(),
            workers: 1,
            parallel: true,
            scheduler: SchedulerKind::Interleaved,
            determinism: DeterminismMode::Strict,
            deadline_ms: None,
            fuel: None,
            tenant: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Query(Box<QueryRequest>),
    /// Open an all-solutions cursor over a query (nothing runs yet); the
    /// server answers [`Response::CursorOpened`] with the cursor id.
    QueryOpen(Box<QueryRequest>),
    /// Step a cursor to its next answer.  An `answer` response with
    /// `outcome failure` means the stream is exhausted and the cursor was
    /// auto-closed.
    QueryNext {
        cursor: u64,
    },
    /// Discard a cursor (and the suspended engine parked behind it).
    QueryClose {
        cursor: u64,
    },
    /// Pool/cache statistics.
    Stats,
    /// Full metric exposition (Prometheus-style text) — latency
    /// histograms, per-PE scheduler telemetry, pool/cursor gauges,
    /// per-predicate instruction attribution.
    Metrics,
    /// Recent query lifecycle events from the flight recorder, newest
    /// last.  `limit` caps how many events are returned (`None` = all
    /// currently buffered).
    Events {
        limit: Option<u64>,
    },
    /// Liveness check.
    Ping,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// A successful query execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnswerResponse {
    /// `true` when the query succeeded.
    pub success: bool,
    /// Rendered bindings of the query variables (empty on failure).
    pub bindings: Vec<(String, String)>,
    /// Whether the engine ran on recycled (warm) arenas.
    pub warm: bool,
    /// Wall-clock of the engine run in microseconds.
    pub elapsed_us: u64,
    /// Abstract-machine instructions executed.
    pub instructions: u64,
    /// Logical inferences performed.
    pub inferences: u64,
    /// Parallel calls executed.
    pub parcalls: u64,
}

/// Pool and cache statistics as key/value pairs (kept schemaless on the
/// wire so the server can add counters without a protocol bump).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsResponse {
    pub fields: Vec<(String, u64)>,
}

impl StatsResponse {
    /// Look a counter up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Answer(AnswerResponse),
    Error {
        kind: ErrorKind,
        message: String,
    },
    Stats(StatsResponse),
    Pong,
    /// Acknowledges a shutdown request.
    Bye,
    /// A cursor was opened; `cursor` names it in `query-next`/`query-close`.
    CursorOpened {
        cursor: u64,
    },
    /// Acknowledges `query-close`.
    CursorClosed,
    /// Metric exposition text (Prometheus-style; may contain blank lines
    /// and arbitrary label values, hence the counted body section).
    Metrics {
        text: String,
    },
    /// Flight-recorder event log, one event per line, oldest first.
    Events {
        text: String,
    },
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame.  `Ok(None)` on a clean EOF before the length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

// ---------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------

/// A malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn bad(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Header lines plus the trailing byte-counted body.
struct Sections<'a> {
    headers: Vec<(&'a str, &'a str)>,
    body: &'a str,
}

/// Split a payload after its verb line into `key value` headers and the
/// byte-counted body following the blank line.
fn split_sections(rest: &str) -> Result<Sections<'_>, ParseError> {
    let (head, body) = match rest.split_once("\n\n") {
        Some((h, b)) => (h, b),
        None => (rest.trim_end_matches('\n'), ""),
    };
    let mut headers = Vec::new();
    for line in head.lines() {
        if line.is_empty() {
            continue;
        }
        let (k, v) =
            line.split_once(' ').ok_or_else(|| bad(format!("header line without value: {line:?}")))?;
        headers.push((k, v));
    }
    Ok(Sections { headers, body })
}

fn header<'a>(s: &Sections<'a>, key: &str) -> Option<&'a str> {
    s.headers.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn header_u64(s: &Sections<'_>, key: &str) -> Result<Option<u64>, ParseError> {
    match header(s, key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| bad(format!("{key} is not a number: {v:?}"))),
    }
}

/// Take `n` bytes off the front of `body` (must fall on a char boundary).
fn take_bytes<'a>(body: &'a str, n: usize, what: &str) -> Result<(&'a str, &'a str), ParseError> {
    if n > body.len() || !body.is_char_boundary(n) {
        return Err(bad(format!("{what} section of {n} bytes does not fit the body")));
    }
    Ok(body.split_at(n))
}

/// Encode the shared body of `query` / `query-open` after the verb line.
fn encode_query_body(out: &mut String, q: &QueryRequest) {
    out.push_str(&format!("workers {}\n", q.workers));
    out.push_str(&format!("parallel {}\n", q.parallel));
    out.push_str(&format!("scheduler {}\n", q.scheduler.name()));
    out.push_str(&format!("determinism {}\n", q.determinism.name()));
    if let Some(ms) = q.deadline_ms {
        out.push_str(&format!("deadline-ms {ms}\n"));
    }
    if let Some(fuel) = q.fuel {
        out.push_str(&format!("fuel {fuel}\n"));
    }
    // The tenant header takes the whole rest of the line, like any header
    // value: spaces are legal in a tenant name, newlines are not.
    if let Some(tenant) = &q.tenant {
        out.push_str(&format!("tenant {tenant}\n"));
    }
    out.push_str(&format!("program-bytes {}\n", q.program.len()));
    out.push_str(&format!("query-bytes {}\n", q.query.len()));
    out.push('\n');
    out.push_str(&q.program);
    out.push_str(&q.query);
}

/// Encode a request payload.
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Stats => "stats\n".to_string(),
        Request::Metrics => "metrics\n".to_string(),
        Request::Events { limit: None } => "events\n".to_string(),
        Request::Events { limit: Some(n) } => format!("events\nlimit {n}\n"),
        Request::Ping => "ping\n".to_string(),
        Request::Shutdown => "shutdown\n".to_string(),
        Request::Query(q) => {
            let mut out = String::from("query\n");
            encode_query_body(&mut out, q);
            out
        }
        Request::QueryOpen(q) => {
            let mut out = String::from("query-open\n");
            encode_query_body(&mut out, q);
            out
        }
        Request::QueryNext { cursor } => format!("query-next\ncursor {cursor}\n"),
        Request::QueryClose { cursor } => format!("query-close\ncursor {cursor}\n"),
    }
}

/// Decode the shared body of `query` / `query-open` after the verb line.
fn decode_query_body(rest: &str) -> Result<QueryRequest, ParseError> {
    let s = split_sections(rest)?;
    let mut q = QueryRequest::default();
    if let Some(w) = header_u64(&s, "workers")? {
        q.workers = w as usize;
    }
    if let Some(p) = header(&s, "parallel") {
        q.parallel = p == "true";
    }
    if let Some(sch) = header(&s, "scheduler") {
        q.scheduler = SchedulerKind::parse(sch).ok_or_else(|| bad(format!("unknown scheduler {sch:?}")))?;
    }
    if let Some(d) = header(&s, "determinism") {
        q.determinism = DeterminismMode::parse(d).ok_or_else(|| bad(format!("unknown determinism {d:?}")))?;
    }
    q.deadline_ms = header_u64(&s, "deadline-ms")?;
    q.fuel = header_u64(&s, "fuel")?;
    q.tenant = header(&s, "tenant").map(str::to_string);
    let program_bytes =
        header_u64(&s, "program-bytes")?.ok_or_else(|| bad("query without program-bytes"))? as usize;
    let query_bytes =
        header_u64(&s, "query-bytes")?.ok_or_else(|| bad("query without query-bytes"))? as usize;
    let (program, rest) = take_bytes(s.body, program_bytes, "program")?;
    let (query, _) = take_bytes(rest, query_bytes, "query")?;
    q.program = program.to_string();
    q.query = query.to_string();
    Ok(q)
}

/// Parse the `cursor` header of a `query-next` / `query-close` payload.
fn decode_cursor_id(rest: &str, verb: &str) -> Result<u64, ParseError> {
    let s = split_sections(rest)?;
    header_u64(&s, "cursor")?.ok_or_else(|| bad(format!("{verb} without a cursor id")))
}

/// Decode a request payload.
pub fn decode_request(payload: &str) -> Result<Request, ParseError> {
    let (verb, rest) = payload.split_once('\n').unwrap_or((payload, ""));
    match verb {
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "events" => {
            let s = split_sections(rest)?;
            Ok(Request::Events { limit: header_u64(&s, "limit")? })
        }
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "query" => Ok(Request::Query(Box::new(decode_query_body(rest)?))),
        "query-open" => Ok(Request::QueryOpen(Box::new(decode_query_body(rest)?))),
        "query-next" => Ok(Request::QueryNext { cursor: decode_cursor_id(rest, verb)? }),
        "query-close" => Ok(Request::QueryClose { cursor: decode_cursor_id(rest, verb)? }),
        other => Err(bad(format!("unknown request verb {other:?}"))),
    }
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Pong => "pong\n".to_string(),
        Response::Bye => "bye\n".to_string(),
        Response::CursorOpened { cursor } => format!("cursor-opened\ncursor {cursor}\n"),
        Response::CursorClosed => "cursor-closed\n".to_string(),
        Response::Stats(stats) => {
            let mut out = String::new();
            out.push_str("stats\n");
            for (k, v) in &stats.fields {
                out.push_str(&format!("{k} {v}\n"));
            }
            out
        }
        Response::Error { kind, message } => {
            let mut out = String::new();
            out.push_str("error\n");
            out.push_str(&format!("kind {}\n", kind.name()));
            out.push_str(&format!("message-bytes {}\n", message.len()));
            out.push('\n');
            out.push_str(message);
            out
        }
        Response::Metrics { text } => {
            format!("metrics\nbody-bytes {}\n\n{}", text.len(), text)
        }
        Response::Events { text } => {
            format!("events\nbody-bytes {}\n\n{}", text.len(), text)
        }
        Response::Answer(a) => {
            let mut out = String::new();
            out.push_str("answer\n");
            out.push_str(&format!("outcome {}\n", if a.success { "success" } else { "failure" }));
            out.push_str(&format!("warm {}\n", a.warm));
            out.push_str(&format!("elapsed-us {}\n", a.elapsed_us));
            out.push_str(&format!("instructions {}\n", a.instructions));
            out.push_str(&format!("inferences {}\n", a.inferences));
            out.push_str(&format!("parcalls {}\n", a.parcalls));
            out.push_str(&format!("bindings {}\n", a.bindings.len()));
            out.push('\n');
            for (name, value) in &a.bindings {
                out.push_str(&format!("{} {}\n{name}{value}\n", name.len(), value.len()));
            }
            out
        }
    }
}

/// Decode a response payload.
pub fn decode_response(payload: &str) -> Result<Response, ParseError> {
    let (verb, rest) = payload.split_once('\n').unwrap_or((payload, ""));
    match verb {
        "pong" => Ok(Response::Pong),
        "bye" => Ok(Response::Bye),
        "cursor-opened" => Ok(Response::CursorOpened { cursor: decode_cursor_id(rest, "cursor-opened")? }),
        "cursor-closed" => Ok(Response::CursorClosed),
        "stats" => {
            let s = split_sections(rest)?;
            let mut fields = Vec::new();
            for (k, v) in &s.headers {
                let v = v.parse().map_err(|_| bad(format!("stats field {k} is not a number: {v:?}")))?;
                fields.push((k.to_string(), v));
            }
            Ok(Response::Stats(StatsResponse { fields }))
        }
        "metrics" | "events" => {
            let s = split_sections(rest)?;
            let n = header_u64(&s, "body-bytes")?.ok_or_else(|| bad(format!("{verb} without body-bytes")))?
                as usize;
            let (text, _) = take_bytes(s.body, n, "body")?;
            let text = text.to_string();
            Ok(if verb == "metrics" { Response::Metrics { text } } else { Response::Events { text } })
        }
        "error" => {
            let s = split_sections(rest)?;
            let kind_name = header(&s, "kind").ok_or_else(|| bad("error without kind"))?;
            let kind = ErrorKind::parse(kind_name)
                .ok_or_else(|| bad(format!("unknown error kind {kind_name:?}")))?;
            let n =
                header_u64(&s, "message-bytes")?.ok_or_else(|| bad("error without message-bytes"))? as usize;
            let (message, _) = take_bytes(s.body, n, "message")?;
            Ok(Response::Error { kind, message: message.to_string() })
        }
        "answer" => {
            let s = split_sections(rest)?;
            let outcome = header(&s, "outcome").ok_or_else(|| bad("answer without outcome"))?;
            let count = header_u64(&s, "bindings")?.unwrap_or(0) as usize;
            // The count is wire-supplied: clamp the pre-allocation so a
            // malformed header is a ParseError (in the loop), not an
            // allocation panic.
            let mut bindings = Vec::with_capacity(count.min(1024));
            let mut body = s.body;
            for i in 0..count {
                let (sizes, rest) =
                    body.split_once('\n').ok_or_else(|| bad(format!("missing size line for binding {i}")))?;
                let (name_len, value_len) = sizes
                    .split_once(' ')
                    .and_then(|(n, v)| Some((n.parse::<usize>().ok()?, v.parse::<usize>().ok()?)))
                    .ok_or_else(|| bad(format!("malformed binding size line {sizes:?}")))?;
                let (name, rest) = take_bytes(rest, name_len, "binding name")?;
                let (value, rest) = take_bytes(rest, value_len, "binding value")?;
                bindings.push((name.to_string(), value.to_string()));
                body = rest.strip_prefix('\n').unwrap_or(rest);
            }
            Ok(Response::Answer(AnswerResponse {
                success: outcome == "success",
                bindings,
                warm: header(&s, "warm") == Some("true"),
                elapsed_us: header_u64(&s, "elapsed-us")?.unwrap_or(0),
                instructions: header_u64(&s, "instructions")?.unwrap_or(0),
                inferences: header_u64(&s, "inferences")?.unwrap_or(0),
                parcalls: header_u64(&s, "parcalls")?.unwrap_or(0),
            }))
        }
        other => Err(bad(format!("unknown response verb {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query(Box::new(QueryRequest {
                program: "p(1).\np(2).\n".to_string(),
                query: "p(X)".to_string(),
                workers: 4,
                parallel: true,
                scheduler: SchedulerKind::Threaded,
                determinism: DeterminismMode::Relaxed,
                deadline_ms: Some(2500),
                fuel: Some(100_000),
                tenant: Some("team a/staging".to_string()),
            })),
            Request::QueryOpen(Box::new(QueryRequest {
                program: "p(1).\np(2).\n".to_string(),
                query: "p(X)".to_string(),
                ..QueryRequest::default()
            })),
            Request::QueryNext { cursor: 17 },
            Request::QueryClose { cursor: u64::MAX },
            Request::Metrics,
            Request::Events { limit: None },
            Request::Events { limit: Some(32) },
        ];
        for req in reqs {
            let encoded = encode_request(&req);
            assert_eq!(decode_request(&encoded).unwrap(), req, "round trip of {encoded:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Pong,
            Response::Bye,
            Response::CursorOpened { cursor: 42 },
            Response::CursorClosed,
            Response::Error { kind: ErrorKind::Cursor, message: "unknown cursor 9".to_string() },
            Response::Error { kind: ErrorKind::Fuel, message: "fuel exhausted".to_string() },
            Response::Error { kind: ErrorKind::Quota, message: "tenant at quota".to_string() },
            Response::Stats(StatsResponse {
                fields: vec![("warm_hits".to_string(), 7), ("cold_builds".to_string(), 2)],
            }),
            Response::Error { kind: ErrorKind::Deadline, message: "ran past 100ms\nsecond line".to_string() },
            Response::Metrics {
                text:
                    "# HELP pwam_queries_total Q.\n# TYPE pwam_queries_total counter\npwam_queries_total 3\n"
                        .to_string(),
            },
            // Bodies with blank lines and label-style quoting must survive
            // the counted section verbatim.
            Response::Metrics { text: "a{x=\"q w\"} 1\n\nafter blank\n".to_string() },
            Response::Events { text: String::new() },
            Response::Events { text: "12 query outcome=success elapsed_us=88\n".to_string() },
            Response::Answer(AnswerResponse {
                success: true,
                bindings: vec![("X".to_string(), "[1,2,3]".to_string()), ("Y".to_string(), "42".to_string())],
                warm: true,
                elapsed_us: 1234,
                instructions: 56,
                inferences: 7,
                parcalls: 3,
            }),
        ];
        for resp in resps {
            let encoded = encode_response(&resp);
            assert_eq!(decode_response(&encoded).unwrap(), resp, "round trip of {encoded:?}");
        }
    }

    #[test]
    fn program_with_blank_lines_survives() {
        let req = Request::Query(Box::new(QueryRequest {
            program: "a(1).\n\n\nb(2).\n".to_string(),
            query: "a(X)".to_string(),
            ..QueryRequest::default()
        }));
        let encoded = encode_request(&req);
        assert_eq!(decode_request(&encoded).unwrap(), req);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello\nworld"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn malformed_requests_are_parse_errors() {
        assert!(decode_request("warp\n").is_err());
        assert!(decode_request("query\nworkers four\n\n").is_err());
        assert!(decode_request("query-next\n").is_err(), "query-next needs a cursor id");
        assert!(decode_request("query-close\ncursor many\n").is_err());
        assert!(decode_response("cursor-opened\n").is_err());
        assert!(decode_request("query\nprogram-bytes 10\nquery-bytes 0\n\nshort").is_err());
        assert!(decode_response("answer\noutcome success\nbindings 2\n\n1 1\nX1\n").is_err());
        assert!(decode_request("events\nlimit soon\n").is_err());
        assert!(decode_request("query\nfuel lots\nprogram-bytes 0\nquery-bytes 0\n\n").is_err());
        assert!(decode_response("error\nkind quotaa\nmessage-bytes 0\n\n").is_err());
        assert!(decode_response("metrics\n\n").is_err(), "metrics needs body-bytes");
        assert!(decode_response("events\nbody-bytes 10\n\nshort").is_err());
    }

    #[test]
    fn binding_values_with_newlines_and_tabs_survive() {
        // Quoted atoms can render with embedded newlines/tabs; the counted
        // sections must carry them verbatim.
        let resp = Response::Answer(AnswerResponse {
            success: true,
            bindings: vec![
                ("X".to_string(), "'a\nb'".to_string()),
                ("Long name".to_string(), "v\tw".to_string()),
            ],
            ..AnswerResponse::default()
        });
        let encoded = encode_response(&resp);
        assert_eq!(decode_response(&encoded).unwrap(), resp);
    }
}
