//! The server's observability plane: a [`pwam_obs`] metric registry wired
//! over every layer of the stack, plus a bounded flight recorder of query
//! lifecycle events.
//!
//! Three kinds of series live here, distinguished by where the truth is:
//!
//! * **Histograms** are the source of truth for request latency.  The
//!   handlers observe into them directly (three relaxed `fetch_add`s per
//!   observation — no locks on the request path).
//! * **Mirrored counters** shadow monotonic totals whose truth lives in
//!   another subsystem (the server counters, the pool, the cache, the
//!   cursor table).  `ServerMetrics::render` copies the upstream values
//!   in immediately before rendering, so the exposition is always a
//!   consistent read of the owning atomics and the request path pays
//!   nothing twice.
//! * **Folded counters** aggregate per-run engine statistics
//!   ([`rapwam::RunStats`]) that only exist when a run completes: per-PE
//!   scheduler telemetry and the per-predicate instruction profile.
//!   `ServerMetrics::record_run` folds one run's worth in on the
//!   (already cold) completion path.

use crate::server::ServerState;
use pwam_obs::{Counter, CounterVec, Gauge, GaugeVec, Histogram, Registry};
use rapwam::RunStats;
use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-run cap on predicate-profile series folded into the registry: only
/// the top `PROFILE_TOP_PER_RUN` predicates of each run are charged by
/// name; the rest of the run's profile lands on the `other` series.
const PROFILE_TOP_PER_RUN: usize = 16;

/// Global cap on distinct predicate label values (protects the exposition
/// from unbounded cardinality across many programs).  Once reached, new
/// names fold into `other`; already-known names keep accumulating.
const PROFILE_MAX_SERIES: usize = 256;

/// Default capacity of the flight-recorder ring.
pub const FLIGHT_RECORDER_CAP: usize = 256;

/// The metric registry plus handles to every series the server updates.
pub(crate) struct ServerMetrics {
    registry: Registry,

    // --- latency histograms (observed on the request path) ---
    /// Time a plain query spent waiting for a pool slot.
    pub queue_wait_us: Arc<Histogram>,
    /// Program + query compilation time (cache hits observe ~0).
    pub compile_us: Arc<Histogram>,
    /// Engine wall-clock of a successful plain query.
    pub execute_us: Arc<Histogram>,
    /// Engine wall-clock of one `query-next` resume leg.
    pub resume_us: Arc<Histogram>,
    /// Whole-request wall-clock of a plain query, arrival to response
    /// build.  This is the series `pwam-load` cross-checks its client-side
    /// percentiles against.
    pub request_us: Arc<Histogram>,

    // --- direct counters (incremented on the request path) ---
    /// Queries preempted before completion, labelled by why: a
    /// `deadline` preemption is a wall-clock kill (terminal, timing
    /// dependent), a `fuel` preemption is the deterministic instruction
    /// budget (terminal for one-shot queries, resumable for cursors).
    pub query_preempted: Arc<CounterVec>,

    // --- mirrored monotonic counters (synced at render time) ---
    connections: Arc<Counter>,
    queries: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    compile_errors: Arc<Counter>,
    engine_errors: Arc<Counter>,
    deadline_errors: Arc<Counter>,
    fuel_errors: Arc<Counter>,
    fuel_preemptions: Arc<Counter>,
    quota_rejections: Arc<Counter>,
    tenants_admitted: Arc<Counter>,
    tenants_rejected: Arc<Counter>,
    instructions: Arc<Counter>,
    engine_micros: Arc<Counter>,
    pool_requests: Arc<Counter>,
    pool_warm_hits: Arc<Counter>,
    pool_cold_builds: Arc<Counter>,
    pool_rejections: Arc<Counter>,
    pool_queue_timeouts: Arc<Counter>,
    pool_run_errors: Arc<Counter>,
    cache_program_hits: Arc<Counter>,
    cache_program_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cursors_opened: Arc<Counter>,
    cursors_closed: Arc<Counter>,
    cursors_evicted: Arc<Counter>,

    // --- gauges (set at render time) ---
    pool_busy_slots: Arc<Gauge>,
    pool_queue_depth: Arc<Gauge>,
    cursors_parked: Arc<Gauge>,
    cache_programs: Arc<Gauge>,
    connections_active: Arc<Gauge>,
    tenants_active: Arc<GaugeVec>,

    // --- per-PE scheduler telemetry (folded per completed run) ---
    pe_steal_attempts: Arc<CounterVec>,
    pe_steals: Arc<CounterVec>,
    pe_backoff_yields: Arc<CounterVec>,
    pe_backoff_parks: Arc<CounterVec>,
    pe_park_micros: Arc<CounterVec>,
    pe_cancel_notices: Arc<CounterVec>,
    pe_goals_aborted: Arc<CounterVec>,
    pe_batch_exits_budget: Arc<CounterVec>,
    pe_batch_exits_park: Arc<CounterVec>,
    cancel_requests: Arc<Counter>,

    // --- per-predicate profile (folded per completed run) ---
    predicate_instructions: Arc<CounterVec>,
}

impl ServerMetrics {
    pub fn new() -> Self {
        let registry = Registry::new();
        let queue_wait_us = registry.histogram(
            "pwam_query_queue_wait_us",
            "Microseconds a plain query waited for an engine-pool slot.",
        );
        let compile_us = registry.histogram(
            "pwam_query_compile_us",
            "Microseconds spent compiling the program and query (cached hits are ~0).",
        );
        let execute_us = registry
            .histogram("pwam_query_execute_us", "Engine wall-clock microseconds of a completed plain query.");
        let resume_us = registry.histogram(
            "pwam_query_resume_us",
            "Engine wall-clock microseconds of one query-next resume leg.",
        );
        let request_us = registry.histogram(
            "pwam_query_request_us",
            "Whole-request microseconds of a plain query, arrival to response.",
        );
        let connections = registry.counter("pwam_connections_total", "Connections accepted by the server.");
        let queries = registry.counter("pwam_queries_total", "Plain query requests received.");
        let protocol_errors =
            registry.counter("pwam_protocol_errors_total", "Requests rejected as malformed.");
        let compile_errors =
            registry.counter("pwam_compile_errors_total", "Requests that failed to compile.");
        let engine_errors =
            registry.counter("pwam_engine_errors_total", "Runs that died with an engine error.");
        let deadline_errors =
            registry.counter("pwam_deadline_errors_total", "Runs cut short by their deadline.");
        let query_preempted = registry.counter_vec(
            "pwam_query_preempted_total",
            "Queries preempted before completion: reason=\"deadline\" is the wall-clock kill, \
             reason=\"fuel\" the deterministic instruction budget (resumable on cursors).",
            "reason",
        );
        let fuel_errors =
            registry.counter("pwam_fuel_errors_total", "One-shot queries killed by fuel exhaustion.");
        let fuel_preemptions = registry.counter(
            "pwam_fuel_preemptions_total",
            "Cursor legs suspended by fuel exhaustion (resumed by a later query-next).",
        );
        let quota_rejections = registry.counter(
            "pwam_quota_rejections_total",
            "Requests turned away by their tenant's admission quota.",
        );
        let tenants_admitted =
            registry.counter("pwam_tenants_admitted_total", "Tenant-carrying requests admitted.");
        let tenants_rejected =
            registry.counter("pwam_tenants_rejected_total", "Tenant-carrying requests rejected at quota.");
        let instructions = registry.counter(
            "pwam_instructions_total",
            "Abstract-machine instructions retired by successful queries.",
        );
        let engine_micros = registry
            .counter("pwam_engine_micros_total", "Engine wall-clock microseconds of successful queries.");
        let pool_requests = registry.counter("pwam_pool_requests_total", "Pool slots acquired (admissions).");
        let pool_warm_hits =
            registry.counter("pwam_pool_warm_hits_total", "Runs that reused a slot's warm arenas.");
        let pool_cold_builds =
            registry.counter("pwam_pool_cold_builds_total", "Runs that allocated fresh arenas.");
        let pool_rejections =
            registry.counter("pwam_pool_rejections_total", "Requests turned away by a full wait queue.");
        let pool_queue_timeouts =
            registry.counter("pwam_pool_queue_timeouts_total", "Requests that gave up waiting for a slot.");
        let pool_run_errors =
            registry.counter("pwam_pool_run_errors_total", "Runs whose memory was lost to an engine error.");
        let cache_program_hits = registry.counter("pwam_cache_program_hits_total", "Program-cache hits.");
        let cache_program_misses =
            registry.counter("pwam_cache_program_misses_total", "Program-cache misses (compiles).");
        let cache_evictions =
            registry.counter("pwam_cache_evictions_total", "Programs evicted from the cache.");
        let cursors_opened = registry.counter("pwam_cursors_opened_total", "Cursors ever opened.");
        let cursors_closed = registry.counter("pwam_cursors_closed_total", "Cursors closed or exhausted.");
        let cursors_evicted =
            registry.counter("pwam_cursors_evicted_total", "Cursors reclaimed by idle eviction.");
        let pool_busy_slots = registry.gauge("pwam_pool_busy_slots", "Pool slots currently executing a run.");
        let pool_queue_depth =
            registry.gauge("pwam_pool_queue_depth", "Requests currently waiting for a slot.");
        let cursors_parked = registry.gauge("pwam_cursors_parked", "Cursors currently parked.");
        let cache_programs = registry.gauge("pwam_cache_programs", "Programs currently cached.");
        let connections_active = registry.gauge("pwam_connections_active", "Connections currently open.");
        let tenants_active = registry.gauge_vec(
            "pwam_tenant_active_queries",
            "Requests currently in flight per tenant (idle tenants drop off the exposition).",
            "tenant",
        );
        let pe_steal_attempts = registry.counter_vec(
            "pwam_pe_steal_attempts_total",
            "Steal scans per PE (each sweeps every other PE's Goal Stack once).",
            "pe",
        );
        let pe_steals = registry.counter_vec(
            "pwam_pe_steals_total",
            "Goals taken from another PE's Goal Stack, per stealing PE.",
            "pe",
        );
        let pe_backoff_yields = registry.counter_vec(
            "pwam_pe_backoff_yields_total",
            "Idle-ladder transitions from spinning to yielding, per PE (relaxed backend).",
            "pe",
        );
        let pe_backoff_parks = registry.counter_vec(
            "pwam_pe_backoff_parks_total",
            "Idle-ladder transitions from yielding to timed parking, per PE (relaxed backend).",
            "pe",
        );
        let pe_park_micros = registry.counter_vec(
            "pwam_pe_park_micros_total",
            "Microseconds spent in idle timed parks, per PE (relaxed backend).",
            "pe",
        );
        let pe_cancel_notices = registry.counter_vec(
            "pwam_pe_cancel_notices_total",
            "cancel_goal notifications received per PE (backward execution).",
            "pe",
        );
        let pe_goals_aborted = registry.counter_vec(
            "pwam_pe_goals_aborted_total",
            "Stolen goals aborted mid-flight on a cancel_goal request, per PE.",
            "pe",
        );
        let pe_batch_exits_budget = registry.counter_vec(
            "pwam_pe_batch_exits_budget_total",
            "Flat-dispatch batch exits caused by quantum exhaustion, per PE.",
            "pe",
        );
        let pe_batch_exits_park = registry.counter_vec(
            "pwam_pe_batch_exits_park_total",
            "Flat-dispatch batch exits caused by leaving the running state, per PE.",
            "pe",
        );
        let cancel_requests = registry
            .counter("pwam_cancel_requests_total", "cancel_goal requests posted for in-flight stolen goals.");
        let predicate_instructions = registry.counter_vec(
            "pwam_predicate_instructions_total",
            "Abstract-machine instructions attributed per predicate (flat dispatch only; \
             low-volume predicates fold into the `other` series).",
            "predicate",
        );
        ServerMetrics {
            registry,
            queue_wait_us,
            compile_us,
            execute_us,
            resume_us,
            request_us,
            query_preempted,
            connections,
            queries,
            protocol_errors,
            compile_errors,
            engine_errors,
            deadline_errors,
            fuel_errors,
            fuel_preemptions,
            quota_rejections,
            tenants_admitted,
            tenants_rejected,
            instructions,
            engine_micros,
            pool_requests,
            pool_warm_hits,
            pool_cold_builds,
            pool_rejections,
            pool_queue_timeouts,
            pool_run_errors,
            cache_program_hits,
            cache_program_misses,
            cache_evictions,
            cursors_opened,
            cursors_closed,
            cursors_evicted,
            pool_busy_slots,
            pool_queue_depth,
            cursors_parked,
            cache_programs,
            connections_active,
            tenants_active,
            pe_steal_attempts,
            pe_steals,
            pe_backoff_yields,
            pe_backoff_parks,
            pe_park_micros,
            pe_cancel_notices,
            pe_goals_aborted,
            pe_batch_exits_budget,
            pe_batch_exits_park,
            cancel_requests,
            predicate_instructions,
        }
    }

    /// Fold one completed run's engine statistics into the per-PE and
    /// per-predicate families.  Called on run completion — already a cold
    /// path next to arena recycling and response rendering.
    pub fn record_run(&self, stats: &RunStats) {
        for (pe, w) in stats.workers.iter().enumerate() {
            let pe = pe.to_string();
            let charge = |vec: &CounterVec, n: u64| {
                if n != 0 {
                    vec.add(&pe, n);
                }
            };
            charge(&self.pe_steal_attempts, w.steal_attempts);
            charge(&self.pe_steals, w.goals_stolen);
            charge(&self.pe_backoff_yields, w.backoff_yields);
            charge(&self.pe_backoff_parks, w.backoff_parks);
            charge(&self.pe_park_micros, w.park_micros);
            charge(&self.pe_cancel_notices, w.cancel_notices);
            charge(&self.pe_goals_aborted, w.goals_aborted);
            charge(&self.pe_batch_exits_budget, w.batch_exits_budget);
            charge(&self.pe_batch_exits_park, w.batch_exits_park);
        }
        if stats.cancel_requests != 0 {
            self.cancel_requests.add(stats.cancel_requests);
        }
        if !stats.predicate_profile.is_empty() {
            let known: HashSet<String> =
                self.predicate_instructions.snapshot().into_iter().map(|(k, _)| k).collect();
            let mut distinct = known.len();
            for (i, (name, count)) in stats.predicate_profile.iter().enumerate() {
                // The profile is sorted by decreasing count, so the head is
                // the run's top predicates; everything past the per-run cap
                // (or past the global cardinality cap) folds into `other`.
                let head = i < PROFILE_TOP_PER_RUN;
                let fits = known.contains(name) || distinct < PROFILE_MAX_SERIES;
                if head && fits {
                    if !known.contains(name) {
                        distinct += 1;
                    }
                    self.predicate_instructions.add(name, *count);
                } else {
                    self.predicate_instructions.add("other", *count);
                }
            }
        }
    }

    /// Sync the mirrored counters and gauges from their owning structures,
    /// then render the full exposition.
    pub fn render(&self, state: &ServerState) -> String {
        let pool = state.pool.stats();
        let cache = state.cache.stats();
        let cursors = state.cursors.stats();
        let tenants = state.tenants.stats();
        let c = &state.counters;
        use std::sync::atomic::Ordering::Relaxed;
        self.connections.store(c.connections.load(Relaxed));
        self.queries.store(c.queries.load(Relaxed));
        self.protocol_errors.store(c.protocol_errors.load(Relaxed));
        self.compile_errors.store(c.compile_errors.load(Relaxed));
        self.engine_errors.store(c.engine_errors.load(Relaxed));
        self.deadline_errors.store(c.deadline_errors.load(Relaxed));
        self.fuel_errors.store(c.fuel_errors.load(Relaxed));
        self.fuel_preemptions.store(c.fuel_preemptions.load(Relaxed));
        self.quota_rejections.store(c.quota_rejections.load(Relaxed));
        self.tenants_admitted.store(tenants.admitted);
        self.tenants_rejected.store(tenants.rejected);
        self.instructions.store(c.instructions.load(Relaxed));
        self.engine_micros.store(c.engine_micros.load(Relaxed));
        self.pool_requests.store(pool.requests);
        self.pool_warm_hits.store(pool.warm_hits);
        self.pool_cold_builds.store(pool.cold_builds);
        self.pool_rejections.store(pool.rejections);
        self.pool_queue_timeouts.store(pool.queue_timeouts);
        self.pool_run_errors.store(pool.run_errors);
        self.cache_program_hits.store(cache.program_hits);
        self.cache_program_misses.store(cache.program_misses);
        self.cache_evictions.store(cache.evictions);
        self.cursors_opened.store(cursors.opened);
        self.cursors_closed.store(cursors.closed);
        self.cursors_evicted.store(cursors.evicted);
        self.pool_busy_slots.set(state.pool.busy_slots() as u64);
        self.pool_queue_depth.set(pool.queue_depth);
        self.cursors_parked.set(cursors.parked);
        self.cache_programs.set(cache.programs);
        self.connections_active.set(c.connections_active.load(Relaxed));
        self.tenants_active.replace(state.tenants.active_snapshot());
        self.registry.render()
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// A bounded ring buffer of query lifecycle events, rendered as one
/// timestamped line per event (newest last):
///
/// ```text
/// <millis-since-start> <event> key=value ...
/// ```
///
/// Events: `query` (one-shot query completed), `open` / `resume` /
/// `close` / `evict` (cursor lifecycle).  The ring holds the last
/// [`FLIGHT_RECORDER_CAP`] events; older ones fall off the front.  One
/// mutex guards the ring — event recording happens once per *request*,
/// not per instruction, so contention is bounded by request throughput.
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    ring: Mutex<VecDeque<String>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` events.
    pub fn new(cap: usize) -> Self {
        FlightRecorder { epoch: Instant::now(), cap, ring: Mutex::new(VecDeque::new()) }
    }

    /// Append one event line, evicting the oldest when full.  `detail` is
    /// free-form `key=value` pairs; it must not contain newlines.
    pub fn record(&self, event: &str, detail: &str) {
        let t_ms = self.epoch.elapsed().as_millis();
        let line =
            if detail.is_empty() { format!("{t_ms} {event}") } else { format!("{t_ms} {event} {detail}") };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(line);
    }

    /// The newest `limit` events (all of them when `None`), oldest first,
    /// one per line.
    pub fn render(&self, limit: Option<u64>) -> String {
        let ring = self.ring.lock().unwrap();
        let take = limit.map(|l| l as usize).unwrap_or(ring.len()).min(ring.len());
        let mut out = String::new();
        for line in ring.iter().skip(ring.len() - take) {
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_recorder_ring_evicts_oldest() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record("query", &format!("n={i}"));
        }
        let all = fr.render(None);
        let lines: Vec<&str> = all.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("n=2"), "oldest surviving event: {all}");
        assert!(lines[2].contains("n=4"), "newest event last: {all}");
    }

    #[test]
    fn flight_recorder_limit_takes_newest() {
        let fr = FlightRecorder::new(8);
        for i in 0..4 {
            fr.record("open", &format!("cursor={i}"));
        }
        let two = fr.render(Some(2));
        assert_eq!(two.lines().count(), 2);
        assert!(two.contains("cursor=2") && two.contains("cursor=3"), "{two}");
        // A limit beyond the ring size returns everything.
        assert_eq!(fr.render(Some(100)).lines().count(), 4);
        // Zero yields an empty (but valid) body.
        assert_eq!(fr.render(Some(0)), "");
    }

    #[test]
    fn record_run_folds_pe_and_predicate_series() {
        use rapwam::WorkerStats;
        let m = ServerMetrics::new();
        let stats = RunStats {
            cancel_requests: 2,
            workers: vec![
                WorkerStats { steal_attempts: 7, goals_stolen: 3, ..Default::default() },
                WorkerStats { steal_attempts: 4, park_micros: 500, ..Default::default() },
            ],
            predicate_profile: vec![("app/3".to_string(), 90), ("nrev/2".to_string(), 10)],
            ..Default::default()
        };
        m.record_run(&stats);
        m.record_run(&stats);
        let pe: Vec<(String, u64)> = m.pe_steal_attempts.snapshot();
        assert_eq!(pe, vec![("0".to_string(), 14), ("1".to_string(), 8)]);
        assert_eq!(m.pe_steals.snapshot(), vec![("0".to_string(), 6)]);
        assert_eq!(m.pe_park_micros.snapshot(), vec![("1".to_string(), 1000)]);
        assert_eq!(m.cancel_requests.get(), 4);
        let preds = m.predicate_instructions.snapshot();
        assert_eq!(preds, vec![("app/3".to_string(), 180), ("nrev/2".to_string(), 20)]);
    }

    #[test]
    fn predicate_profile_tail_folds_into_other() {
        let m = ServerMetrics::new();
        // A profile longer than the per-run cap: the head is charged by
        // name, the tail lands on `other`.
        let profile: Vec<(String, u64)> =
            (0..PROFILE_TOP_PER_RUN + 5).map(|i| (format!("p{i}/1"), 100 - i as u64)).collect();
        let stats = RunStats { predicate_profile: profile, ..Default::default() };
        m.record_run(&stats);
        let preds = m.predicate_instructions.snapshot();
        let other = preds.iter().find(|(k, _)| k == "other").map(|(_, v)| *v).unwrap_or(0);
        let expected_other: u64 =
            (PROFILE_TOP_PER_RUN..PROFILE_TOP_PER_RUN + 5).map(|i| 100 - i as u64).sum();
        assert_eq!(other, expected_other);
        assert_eq!(preds.len(), PROFILE_TOP_PER_RUN + 1);
    }
}
