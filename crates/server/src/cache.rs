//! The compiled-program cache.
//!
//! Each distinct program source gets one long-lived [`rapwam::Session`]
//! (symbol table + parsed program + compiled-query cache) behind a
//! read/write lock.  Compiling a new query takes the write lock briefly;
//! running a prepared query takes the read lock, so any number of requests
//! for the same program execute concurrently once their queries are
//! compiled — the engines are per-request, only the immutable compilation
//! output and the symbol table are shared.

use pwam_compiler::CompiledProgram;
use rapwam::session::{Session, SessionError};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One cached program.
pub struct CacheEntry {
    /// The session holding the parsed program, symbol table and compiled
    /// queries.  Write-lock to compile, read-lock to run.
    pub session: RwLock<Session>,
    /// Compiled-query fast path: a hit here needs neither session lock, so
    /// requests for already-compiled queries never wait behind in-flight
    /// engine runs (which hold the session's read lock for their whole
    /// duration, making a write-lock `prepare` call block on them).
    queries: Mutex<HashMap<(String, bool), Arc<CompiledProgram>>>,
}

/// Upper bound on compiled queries cached per program entry: the server is
/// long-running, so an unbounded map keyed by client-supplied query text
/// would be a slow memory leak.  Overflow drops the whole map (rare, and
/// recompiling is cheap next to running).
const QUERIES_PER_ENTRY: usize = 256;

impl CacheEntry {
    /// Compile `query` (or return the cached compilation) without blocking
    /// behind concurrent engine runs on a hit.
    pub fn prepared(&self, query: &str, parallel: bool) -> Result<Arc<CompiledProgram>, SessionError> {
        if let Some(c) = self.queries.lock().unwrap().get(&(query.to_string(), parallel)) {
            return Ok(Arc::clone(c));
        }
        // Miss: the brief write lock waits for in-flight runs of this
        // program to drain — once per distinct query, not per request.
        let compiled = self.session.write().unwrap().prepare(query, parallel)?;
        let mut queries = self.queries.lock().unwrap();
        if queries.len() >= QUERIES_PER_ENTRY {
            queries.clear();
        }
        queries.insert((query.to_string(), parallel), Arc::clone(&compiled));
        Ok(compiled)
    }
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CacheStats {
    /// Lookups that found the program already parsed.
    pub program_hits: u64,
    /// Lookups that had to parse (and admit) a new program.
    pub program_misses: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Programs currently cached.
    pub programs: u64,
    /// Compiled queries currently cached across all programs.
    pub compiled_queries: u64,
}

/// The cache: program source text → [`CacheEntry`].
pub struct ProgramCache {
    entries: Mutex<Inner>,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

struct Inner {
    map: HashMap<String, Arc<CacheEntry>>,
    /// Insertion order, for FIFO eviction.
    order: Vec<String>,
}

impl ProgramCache {
    /// A cache holding at most `capacity` programs (FIFO eviction).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache needs at least one slot");
        ProgramCache {
            entries: Mutex::new(Inner { map: HashMap::new(), order: Vec::new() }),
            program_hits: AtomicU64::new(0),
            program_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
        }
    }

    /// Look a program up, parsing and admitting it on first sight.
    ///
    /// Parsing happens outside the cache lock, so a big program being
    /// admitted does not stall lookups of already-cached ones; if two
    /// requests race to admit the same program, the first insert wins and
    /// the loser's parse is discarded.
    pub fn entry(&self, program_src: &str) -> Result<Arc<CacheEntry>, SessionError> {
        if let Some(entry) = self.entries.lock().unwrap().map.get(program_src) {
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(entry));
        }
        let session = Session::new(program_src)?;
        let entry =
            Arc::new(CacheEntry { session: RwLock::new(session), queries: Mutex::new(HashMap::new()) });
        let mut inner = self.entries.lock().unwrap();
        if let Some(existing) = inner.map.get(program_src) {
            // Lost the admission race; use the winner.
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(existing));
        }
        self.program_misses.fetch_add(1, Ordering::Relaxed);
        if inner.map.len() >= self.capacity {
            let victim = inner.order.remove(0);
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.map.insert(program_src.to_string(), Arc::clone(&entry));
        inner.order.push(program_src.to_string());
        Ok(entry)
    }

    /// Snapshot the counters.
    ///
    /// The per-entry query counts are read from the entries' own maps after
    /// the cache lock is released: touching a session lock while holding
    /// the entries mutex would let one long-running engine (whose read
    /// lock blocks a queued compile writer, which in turn blocks new
    /// readers) stall every cache lookup behind a stats request.
    pub fn stats(&self) -> CacheStats {
        let (programs, entries): (u64, Vec<Arc<CacheEntry>>) = {
            let inner = self.entries.lock().unwrap();
            (inner.map.len() as u64, inner.map.values().map(Arc::clone).collect())
        };
        let compiled_queries = entries.iter().map(|e| e.queries.lock().unwrap().len() as u64).sum();
        CacheStats {
            program_hits: self.program_hits.load(Ordering::Relaxed),
            program_misses: self.program_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            programs,
            compiled_queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_lookups_hit() {
        let cache = ProgramCache::new(4);
        let a1 = cache.entry("p(1).").unwrap();
        let a2 = cache.entry("p(1).").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let stats = cache.stats();
        assert_eq!(stats.program_hits, 1);
        assert_eq!(stats.program_misses, 1);
        assert_eq!(stats.programs, 1);
    }

    #[test]
    fn parse_errors_surface_and_are_not_cached() {
        let cache = ProgramCache::new(4);
        assert!(cache.entry("p(1").is_err());
        assert_eq!(cache.stats().programs, 0);
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let cache = ProgramCache::new(2);
        cache.entry("a(1).").unwrap();
        cache.entry("b(2).").unwrap();
        cache.entry("c(3).").unwrap();
        let stats = cache.stats();
        assert_eq!(stats.programs, 2);
        assert_eq!(stats.evictions, 1);
        // The oldest entry was evicted; re-admitting it is a miss.
        cache.entry("a(1).").unwrap();
        assert_eq!(cache.stats().program_misses, 4);
    }

    #[test]
    fn prepared_queries_are_counted() {
        let cache = ProgramCache::new(2);
        let entry = cache.entry("p(1).\np(2).").unwrap();
        entry.prepared("p(X)", true).unwrap();
        entry.prepared("p(X)", false).unwrap();
        entry.prepared("p(X)", false).unwrap();
        assert_eq!(cache.stats().compiled_queries, 2);
    }

    #[test]
    fn per_entry_query_cache_is_bounded() {
        let cache = ProgramCache::new(2);
        let entry = cache.entry("p(1).\np(2).").unwrap();
        for i in 0..(QUERIES_PER_ENTRY + 10) {
            entry.prepared(&format!("p({i})"), true).unwrap();
        }
        assert!(cache.stats().compiled_queries as usize <= QUERIES_PER_ENTRY);
    }

    #[test]
    fn prepared_hits_do_not_touch_the_session_locks() {
        let cache = ProgramCache::new(2);
        let entry = cache.entry("p(1).\np(2).").unwrap();
        let first = entry.prepared("p(X)", true).unwrap();
        // Hold the session's write lock: a cached query must still resolve
        // (the fast path goes through the entry's own map).
        let _guard = entry.session.write().unwrap();
        let second = entry.prepared("p(X)", true).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }
}
