//! Property-based differential between the two dispatch paths.
//!
//! `scheduler_differential.rs` (in the benchmarks crate) pins flat-vs-classic
//! equality on the fixed paper suite; this suite generates *random programs*
//! — random fact tables, backtracking searches with and without cuts,
//! optional CGEs — and checks that the flattened pre-decoded path and the
//! classic enum-fetch path remain observationally identical on every one:
//! same answers, same aggregate counters, same per-area/per-object reference
//! counts, and byte-identical traces when tracing is on.
//!
//! Each case also runs both paths *untraced*, which is the configuration
//! where the flat path's fast lane is live (serial arena access + batched
//! `RefDelta` accounting + the register caches), and asserts the untraced
//! counters equal the traced ones — proving the batching and caching are
//! invisible to the statistics.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};
use rapwam::{Area, MemRef, ObjectKind, Outcome, RunResult};

/// FNV-1a over every field of every reference, in trace order — the same
/// fingerprint the golden-trace suite uses.
fn fingerprint(trace: &[MemRef]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in trace {
        mix(r.pe);
        for b in r.addr.to_le_bytes() {
            mix(b);
        }
        mix(r.write as u8);
        mix(r.area.index() as u8);
        mix(ObjectKind::ALL.iter().position(|o| *o == r.object).unwrap() as u8);
        mix(matches!(r.locality, rapwam::Locality::Global) as u8);
        mix(r.locked as u8);
    }
    h
}

#[derive(Debug, Clone)]
struct Case {
    /// Random fact table `f(K, V).` — clause-selection fodder.
    facts: Vec<(i64, i64)>,
    /// Query list for the backtracking search.
    list: Vec<i64>,
    /// Search threshold.
    k: i64,
    /// Commit the search to its first hit with a cut.
    cut: bool,
    /// Route the search through a CGE (`&`) so parcalls execute.
    parallel: bool,
    /// Worker count for the engine.
    workers: usize,
}

fn program(c: &Case) -> String {
    let mut p = String::new();
    // Sentinel clause outside the generated value range, so f/2 exists even
    // when the random table is empty (and the search can still fail on it).
    p.push_str("f(99, 99).\n");
    for (k, v) in &c.facts {
        p.push_str(&format!("f({k}, {v}).\n"));
    }
    p.push_str("pick(X, [X|_]).\npick(X, [_|T]) :- pick(X, T).\n");
    // The search backtracks through `pick` alternatives, consults the
    // random fact table, and optionally commits with a cut.
    let commit = if c.cut { ", !" } else { "" };
    p.push_str(&format!("good(X, L, K) :- pick(X, L), X > K, f(X, _){commit}.\n"));
    if c.parallel {
        p.push_str(
            "search(L, K, pair(A, B)) :- \
             (ground(L), ground(K) | good(A, L, K) & good(B, L, K)).\n",
        );
    } else {
        p.push_str("search(L, K, pair(A, B)) :- good(A, L, K), good(B, L, K).\n");
    }
    p.push_str("search(_, _, none).\n");
    p
}

fn query(c: &Case) -> String {
    let items: Vec<String> = c.list.iter().map(|i| i.to_string()).collect();
    format!("search([{}], {}, R)", items.join(","), c.k)
}

fn render(s: &Session, r: &RunResult) -> String {
    match &r.outcome {
        Outcome::Success(_) => s.render(r.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

fn run(c: &Case, classic: bool, trace: bool) -> (String, RunResult) {
    let mut s = Session::new(&program(c)).expect("program parses");
    let opts = QueryOptions { trace, classic_dispatch: classic, ..QueryOptions::parallel(c.workers) };
    let r = s.run(&query(c), &opts).expect("query runs");
    (render(&s, &r), r)
}

/// Assert every schedule-invariant observable matches between two runs.
fn assert_counters_equal(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.stats.instructions, b.stats.instructions, "{what}: instructions");
    assert_eq!(a.stats.inferences, b.stats.inferences, "{what}: inferences");
    assert_eq!(a.stats.data_refs, b.stats.data_refs, "{what}: total refs");
    assert_eq!(a.stats.reads, b.stats.reads, "{what}: reads");
    assert_eq!(a.stats.writes, b.stats.writes, "{what}: writes");
    assert_eq!(a.stats.elapsed_cycles, b.stats.elapsed_cycles, "{what}: cycles");
    assert_eq!(a.stats.parcalls, b.stats.parcalls, "{what}: parcalls");
    for area in Area::ALL {
        assert_eq!(
            a.stats.area_stats.area(area),
            b.stats.area_stats.area(area),
            "{what}: {} counts",
            area.name()
        );
    }
    for object in ObjectKind::ALL {
        assert_eq!(
            a.stats.area_stats.object(object),
            b.stats.area_stats.object(object),
            "{what}: {} counts",
            object.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_and_classic_agree_on_random_programs(
        facts in prop::collection::vec((-10i64..10, -10i64..10), 0..6),
        list in prop::collection::vec(-10i64..10, 1..7),
        k in -10i64..10,
        cut in any::<bool>(),
        parallel in any::<bool>(),
        workers in 1usize..4,
    ) {
        let c = Case { facts, list, k, cut, parallel, workers };

        // Traced: byte-identical merged traces plus equal counters.
        let (ans_flat, traced_flat) = run(&c, false, true);
        let (ans_classic, traced_classic) = run(&c, true, true);
        prop_assert_eq!(&ans_flat, &ans_classic);
        assert_counters_equal(&traced_flat, &traced_classic, "traced flat vs classic");
        let tf = traced_flat.trace.as_ref().expect("flat trace");
        let tc = traced_classic.trace.as_ref().expect("classic trace");
        prop_assert_eq!(tf.len(), tc.len());
        prop_assert_eq!(fingerprint(tf), fingerprint(tc));

        // Untraced: the flat fast lane (serial arenas, RefDelta batching,
        // register caches) is live here.  Counters must match classic, and
        // must match the traced run — batching is invisible.
        let (ans_fast, fast) = run(&c, false, false);
        let (ans_slow, slow) = run(&c, true, false);
        prop_assert_eq!(&ans_fast, &ans_flat);
        prop_assert_eq!(&ans_slow, &ans_classic);
        assert_counters_equal(&fast, &slow, "untraced flat vs classic");
        assert_counters_equal(&fast, &traced_flat, "untraced vs traced flat");
    }
}
