//! Deterministic instruction fuel: the preemption point must be a pure
//! function of the program, pinned byte-identical across both dispatch
//! paths (flat and classic) and both serialized backends (interleaved and
//! threaded-strict), and a fuelled run resumed to completion must
//! reproduce the unfuelled run's answers, counters and traces exactly.

use rapwam::session::{CursorStep, QueryOptions, Session};
use rapwam::{EngineError, Term};

const PERM: &str = "app([],L,L).\n\
                    app([H|T],L,[H|R]) :- app(T,L,R).\n\
                    perm([],[]).\n\
                    perm(L,[H|T]) :- app(V,[H|U],L), app(V,U,W), perm(W,T).";

const PERM_QUERY: &str = "perm([1,2,3,4], P)";

/// A CGE-bearing program so the parallel machinery (parcall frames, goal
/// stacks, waiting workers) is live at preemption points.
const PAR_SUM: &str = "sum([], 0).\n\
                       sum([X|Xs], S) :- (ground(Xs) | sum(Xs, S1) & sq(X, X2)), S is S1 + X2.\n\
                       sq(X, Y) :- Y is X * X.";

const PAR_SUM_QUERY: &str = "sum([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16], S)";

fn rendered(session: &Session, answers: &[Vec<(String, Term)>]) -> Vec<Vec<(String, String)>> {
    answers.iter().map(|b| b.iter().map(|(n, t)| (n.clone(), session.render(t))).collect()).collect()
}

/// Step the cursor to its `n`-th fuel preemption and return the machine
/// fingerprint and cumulative instruction count there.
fn fingerprint_at_preemption(program: &str, query: &str, opts: &QueryOptions, n: usize) -> (u64, u64) {
    let mut session = Session::new(program).unwrap();
    let compiled = session.prepare_with(query, opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, opts, None).unwrap();
    let mut preemptions = 0;
    loop {
        match cursor.next_step().unwrap() {
            CursorStep::FuelExhausted => {
                preemptions += 1;
                if preemptions == n {
                    let fp = cursor.state_fingerprint().expect("live engine");
                    let steps = cursor.stats().expect("live engine").instructions;
                    return (fp, steps);
                }
            }
            CursorStep::Answer(_) => {}
            CursorStep::Exhausted => {
                panic!("query exhausted after {preemptions} preemption(s), before the requested {n}")
            }
        }
    }
}

#[test]
fn preemption_point_is_byte_identical_across_dispatch_and_backends() {
    for (program, query, workers) in [(PERM, PERM_QUERY, 1), (PAR_SUM, PAR_SUM_QUERY, 2)] {
        let configs: Vec<(&str, QueryOptions)> = vec![
            ("interleaved/flat", QueryOptions::parallel(workers).with_fuel(97)),
            ("interleaved/classic", QueryOptions::parallel(workers).with_fuel(97).with_classic_dispatch()),
            ("threaded-strict/flat", QueryOptions::threaded(workers).with_fuel(97)),
            (
                "threaded-strict/classic",
                QueryOptions::threaded(workers).with_fuel(97).with_classic_dispatch(),
            ),
        ];
        // Pin the first and a later preemption point: the first exercises
        // run_resumable's fuel leg, the later ones the resume(Continue)
        // re-arm path.
        for n in [1, 3] {
            let mut seen: Option<(u64, u64)> = None;
            for (name, opts) in &configs {
                let (fp, steps) = fingerprint_at_preemption(program, query, opts, n);
                match &seen {
                    None => seen = Some((fp, steps)),
                    Some((fp0, steps0)) => {
                        assert_eq!(
                            steps, *steps0,
                            "{name}: instruction count at preemption {n} diverged ({query})"
                        );
                        assert_eq!(fp, *fp0, "{name}: machine state at preemption {n} diverged ({query})");
                    }
                }
            }
        }
    }
}

#[test]
fn fuelled_run_reproduces_unfuelled_answers_counters_and_traces() {
    for (program, query, workers) in [(PERM, PERM_QUERY, 1), (PAR_SUM, PAR_SUM_QUERY, 2)] {
        let unfuelled_opts = QueryOptions::parallel(workers).with_trace();
        let mut session = Session::new(program).unwrap();
        let compiled = session.prepare_with(query, unfuelled_opts.compile_options()).unwrap();

        let mut cursor = session.open_cursor(&compiled, &unfuelled_opts, None).unwrap();
        let mut baseline_answers = Vec::new();
        while let Some(b) = cursor.next().unwrap() {
            baseline_answers.push(b);
        }
        let baseline_steps = cursor.stats().expect("live engine").instructions;
        let baseline_trace = cursor.take_trace().expect("tracing was on");
        let baseline_fp = cursor.state_fingerprint().expect("live engine");

        // Same run under a tight fuel budget: `next` auto-continues through
        // each preemption (topping the fuel back up), so the stream must be
        // indistinguishable — same answers, same cumulative instruction
        // count, same memory-reference trace, same final machine state.
        let fuelled_opts = QueryOptions::parallel(workers).with_trace().with_fuel(61);
        let mut cursor = session.open_cursor(&compiled, &fuelled_opts, None).unwrap();
        let mut preemptions = 0;
        let mut fuelled_answers = Vec::new();
        loop {
            match cursor.next_step().unwrap() {
                CursorStep::Answer(b) => fuelled_answers.push(b),
                CursorStep::FuelExhausted => preemptions += 1,
                CursorStep::Exhausted => break,
            }
        }
        assert!(preemptions > 0, "fuel budget of 61 never preempted {query}");
        assert_eq!(rendered(&session, &fuelled_answers), rendered(&session, &baseline_answers));
        assert_eq!(cursor.stats().expect("live engine").instructions, baseline_steps);
        assert_eq!(cursor.take_trace().expect("tracing was on"), baseline_trace);
        assert_eq!(cursor.state_fingerprint().expect("live engine"), baseline_fp);
    }
}

#[test]
fn one_shot_run_surfaces_fuel_exhaustion_as_an_error() {
    let mut session = Session::new(PERM).unwrap();
    let opts = QueryOptions::sequential().with_fuel(10);
    let err = session.run(PERM_QUERY, &opts).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("fuel"), "unexpected error: {msg}");

    // An ample budget never fires.
    let opts = QueryOptions::sequential().with_fuel(10_000_000);
    let result = session.run(PERM_QUERY, &opts).unwrap();
    assert!(result.outcome.is_success());
}

#[test]
fn engine_error_carries_the_configured_budget() {
    let mut session = Session::new(PERM).unwrap();
    let opts = QueryOptions::sequential().with_fuel(25);
    match session.run(PERM_QUERY, &opts) {
        Err(rapwam::session::SessionError::Engine(EngineError::FuelExhausted { fuel })) => {
            assert_eq!(fuel, 25);
        }
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
}

#[test]
fn relaxed_backend_preempts_and_completes() {
    // The relaxed backend checks fuel at batch boundaries, so the stop
    // point is schedule-dependent — but preemption must still fire, the
    // cursor must still resume, and the answer stream must be complete.
    let opts = QueryOptions::relaxed(2).with_fuel(61);
    let mut session = Session::new(PERM).unwrap();
    let compiled = session.prepare_with(PERM_QUERY, opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let mut preemptions = 0;
    let mut answers = Vec::new();
    loop {
        match cursor.next_step().unwrap() {
            CursorStep::Answer(b) => answers.push(b),
            CursorStep::FuelExhausted => preemptions += 1,
            CursorStep::Exhausted => break,
        }
    }
    assert!(preemptions > 0, "fuel budget never preempted the relaxed run");
    assert_eq!(answers.len(), 24, "perm/4 has 4! solutions");
}

#[test]
fn unlimited_fuel_changes_nothing() {
    // `fuel: None` must leave the engine's behaviour and counters untouched
    // (one relaxed load per round is the entire cost).
    let mut session = Session::new(PERM).unwrap();
    let base = session.run(PERM_QUERY, &QueryOptions::sequential()).unwrap();
    let mut session2 = Session::new(PERM).unwrap();
    let same = session2.run(PERM_QUERY, &QueryOptions::sequential()).unwrap();
    assert_eq!(base.stats.instructions, same.stats.instructions);
    assert!(base.outcome.is_success());
}
