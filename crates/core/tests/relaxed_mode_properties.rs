//! Stress tests for the relaxed-determinism backend: 8 free-running OS
//! threads over owned arenas, on programs whose parallel goals backtrack
//! internally, fail outright, and force cross-PE recovery.
//!
//! The contract under test (see `rapwam::sched` docs): relaxed runs must
//! produce the *identical answer set* as the reference interleaved backend
//! and leave every Stack Set structurally consistent
//! ([`Engine::check_consistency`]), even though goal placement and
//! interleaving are decided by actual races.  Each property case runs the
//! relaxed engine several times to give the races room to bite.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};
use rapwam::{scheduler_for, DeterminismMode, Engine, EngineConfig, MemoryConfig, Outcome, SchedulerKind};

/// A program whose parallel goals backtrack through `pick/2` alternatives
/// before succeeding, and whose parallel call fails outright when no list
/// element exceeds the threshold (forcing the failed-Parcall recovery path
/// and backtracking into `try/3`'s second clause).
const PROGRAM: &str = "\
    pick(X, [X|_]).\n\
    pick(X, [_|T]) :- pick(X, T).\n\
    good(X, L, K) :- pick(X, L), X > K.\n\
    both(A, B, L, K) :- (ground(L), ground(K) | good(A, L, K) & good(B, L, K)).\n\
    try(L, K, pair(A, B)) :- both(A, B, L, K).\n\
    try(_, _, none).";

const RELAXED_WORKERS: usize = 8;

fn render_list(items: &[i64]) -> String {
    let rendered: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", rendered.join(","))
}

/// Drive a query on the relaxed backend through the engine API (so the
/// finished engine is still around for `check_consistency`), returning the
/// rendered answer.
fn run_relaxed_checked(program: &str, query: &str, workers: usize) -> String {
    let mut session = Session::new(program).expect("program parses");
    let compiled = session.compile(query, true).expect("query compiles");
    let config = EngineConfig {
        num_workers: workers,
        memory: MemoryConfig::small(),
        scheduler: SchedulerKind::Threaded,
        determinism: DeterminismMode::Relaxed,
        ..EngineConfig::default()
    };
    let engine = Engine::new(&compiled, config);
    let backend = scheduler_for(SchedulerKind::Threaded, DeterminismMode::Relaxed);
    let engine = backend.drive(engine).expect("relaxed drive");
    engine
        .check_consistency()
        .unwrap_or_else(|e| panic!("inconsistent stack sets after relaxed run ({workers} workers): {e}"));
    let result = engine.into_result(session.symbols()).expect("result extraction");
    match &result.outcome {
        Outcome::Success(_) => session.render(result.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

/// The reference answer from the interleaved backend.
fn run_interleaved(program: &str, query: &str, workers: usize) -> String {
    let mut session = Session::new(program).expect("program parses");
    let r = session.run(query, &QueryOptions::parallel(workers)).expect("interleaved run");
    match &r.outcome {
        Outcome::Success(_) => session.render(r.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Eight-thread relaxed runs agree with the interleaved reference and
    /// leave every Stack Set consistent, across backtracking and failing
    /// parallel goals.  Three relaxed repetitions per case let different
    /// interleavings happen.
    #[test]
    fn relaxed_eight_threads_matches_interleaved(
        list in prop::collection::vec(-20i64..20, 1..8),
        k in -20i64..20,
    ) {
        let query = format!("try({}, {k}, R)", render_list(&list));
        let reference = run_interleaved(PROGRAM, &query, RELAXED_WORKERS);
        for _ in 0..3 {
            let relaxed = run_relaxed_checked(PROGRAM, &query, RELAXED_WORKERS);
            prop_assert_eq!(&relaxed, &reference);
        }
    }
}

/// Deterministic companion: a recursive, steal-heavy workload (Fibonacci
/// over nested CGEs) repeated enough times for placement races to occur,
/// with consistency checked after every run.
#[test]
fn relaxed_fib_stress_stays_consistent() {
    const FIB: &str = "fib(0, 0).\n\
         fib(1, 1).\n\
         fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n\
                      (ground(N1), ground(N2) | fib(N1, F1) & fib(N2, F2)),\n\
                      F is F1 + F2.";
    for _ in 0..5 {
        let answer = run_relaxed_checked(FIB, "fib(13, R)", RELAXED_WORKERS);
        assert_eq!(answer, "233");
    }
}

/// The `QueryOptions::relaxed` convenience constructor reaches the relaxed
/// backend and reports consistent steal accounting.
#[test]
fn relaxed_query_options_round_trip() {
    let mut session = Session::new(PROGRAM).expect("program parses");
    let r = session.run("try([1,5,2,9,3,7], 4, R)", &QueryOptions::relaxed(4)).expect("relaxed run");
    assert_eq!(session.render(r.outcome.binding("R").expect("R bound")), "pair(5,5)");
    let stolen: u64 = r.stats.workers.iter().map(|w| w.goals_stolen).sum();
    let notices: u64 = r.stats.workers.iter().map(|w| w.steal_notices).sum();
    assert_eq!(stolen, notices, "steal notices must balance steals");
    assert_eq!(stolen, r.stats.goals_actually_parallel);
}
