//! Fast sanity checks for the resumable-engine cursor API: all-solutions
//! streaming, commit, host predicates, and the no-host guard on `run`.

use rapwam::session::{QueryOptions, Session};
use rapwam::Term;

fn atoms(session: &Session, answers: &[Vec<(String, Term)>], var: &str) -> Vec<String> {
    answers
        .iter()
        .map(|b| {
            let t = b.iter().find(|(n, _)| n == var).map(|(_, t)| t).expect("binding");
            session.render(t)
        })
        .collect()
}

#[test]
fn cursor_streams_all_solutions() {
    let mut session = Session::new("p(1).\np(2).\np(3).").unwrap();
    let opts = QueryOptions::sequential();
    let compiled = session.prepare_with("p(X)", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let mut answers = Vec::new();
    while let Some(b) = cursor.next().unwrap() {
        answers.push(b);
    }
    assert!(cursor.is_done());
    assert_eq!(atoms(&session, &answers, "X"), ["1", "2", "3"]);
    // Exhausted cursors keep returning None.
    assert_eq!(cursor.next().unwrap(), None);
    assert_eq!(cursor.pending_goal_frames(), 0);
    cursor.check_consistency().unwrap();
    assert!(cursor.close().is_some());
}

#[test]
fn cursor_commit_finishes_the_stream() {
    let mut session = Session::new("p(1).\np(2).\np(3).").unwrap();
    let opts = QueryOptions::sequential();
    let compiled = session.prepare_with("p(X)", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let first = cursor.next().unwrap().expect("first answer");
    assert_eq!(atoms(&session, &[first], "X"), ["1"]);
    cursor.commit().unwrap();
    assert!(cursor.is_done());
    assert_eq!(cursor.next().unwrap(), None);
    assert!(cursor.close().is_some());
}

#[test]
fn cursor_matches_run_on_first_answer() {
    let mut session = Session::new("app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).").unwrap();
    let opts = QueryOptions::sequential();
    let run = session.run("app(X, Y, [1,2,3])", &opts).unwrap();
    let first_run = match run.outcome {
        rapwam::Outcome::Success(b) => b,
        rapwam::Outcome::Failure => panic!("query failed"),
    };
    let compiled = session.prepare_with("app(X, Y, [1,2,3])", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let mut count = 0;
    let first_cursor = cursor.next().unwrap().expect("an answer");
    count += 1;
    // Same rendered bindings for the first answer.
    for ((n1, t1), (n2, t2)) in first_run.iter().zip(first_cursor.iter()) {
        assert_eq!(n1, n2);
        assert_eq!(session.render(t1), session.render(t2));
    }
    while cursor.next().unwrap().is_some() {
        count += 1;
    }
    // split of a 3-list has 4 solutions
    assert_eq!(count, 4);
}

#[test]
fn failing_query_yields_empty_stream() {
    let mut session = Session::new("p(1).").unwrap();
    let opts = QueryOptions::sequential();
    let compiled = session.prepare_with("p(2)", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    assert_eq!(cursor.next().unwrap(), None);
    assert!(cursor.is_done());
}

#[test]
fn host_predicate_binds_outputs() {
    let mut session = Session::new("p(X, Y) :- double(X, Y).").unwrap();
    session.register_host("double", 2, |args| {
        let Term::Int(n) = args[0] else { return None };
        Some(vec![(1, Term::Int(n * 2))])
    });
    let opts = QueryOptions::sequential();
    let compiled = session.prepare_with("p(21, Y)", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let answer = cursor.next().unwrap().expect("host call succeeds");
    assert_eq!(atoms(&session, &[answer], "Y"), ["42"]);
    assert_eq!(cursor.next().unwrap(), None);
}

#[test]
fn host_predicate_failure_backtracks() {
    let mut session = Session::new("p(1).\np(2).\nq(X) :- p(X), even(X).").unwrap();
    session.register_host("even", 1, |args| matches!(args[0], Term::Int(n) if n % 2 == 0).then(Vec::new));
    let opts = QueryOptions::sequential();
    let compiled = session.prepare_with("q(X)", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let answer = cursor.next().unwrap().expect("one answer");
    assert_eq!(atoms(&session, &[answer], "X"), ["2"]);
    assert_eq!(cursor.next().unwrap(), None);
}

#[test]
fn user_predicates_shadow_hosts() {
    let mut session = Session::new("double(X, X).\np(X, Y) :- double(X, Y).").unwrap();
    session.register_host("double", 2, |_| panic!("host must be shadowed"));
    let opts = QueryOptions::sequential();
    let compiled = session.prepare_with("p(7, Y)", opts.compile_options()).unwrap();
    let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
    let answer = cursor.next().unwrap().expect("an answer");
    assert_eq!(atoms(&session, &[answer], "Y"), ["7"]);
}

#[test]
fn run_rejects_host_suspension() {
    let mut session = Session::new("p(Y) :- h(Y).").unwrap();
    session.register_host("h", 1, |_| Some(vec![(0, Term::Int(1))]));
    let err = session.run("p(Y)", &QueryOptions::sequential()).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("cursor"), "unexpected error: {msg}");
}

#[test]
fn cursor_streams_under_every_backend() {
    for opts in [
        QueryOptions::parallel(2),
        QueryOptions::threaded(2),
        QueryOptions::relaxed(2),
        QueryOptions::sequential().with_classic_dispatch(),
    ] {
        let mut session = Session::new("p(1).\np(2).\np(3).").unwrap();
        let compiled = session.prepare_with("p(X)", opts.compile_options()).unwrap();
        let mut cursor = session.open_cursor(&compiled, &opts, None).unwrap();
        let mut seen = Vec::new();
        while let Some(b) = cursor.next().unwrap() {
            seen.push(b);
        }
        assert_eq!(
            atoms(&session, &seen, "X"),
            ["1", "2", "3"],
            "backend {:?}/{:?} classic={}",
            opts.scheduler,
            opts.determinism,
            opts.classic_dispatch
        );
    }
}
