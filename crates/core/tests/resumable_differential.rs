//! Resume-everywhere differential properties for the suspendable engine.
//!
//! The resumable state machine's contract is that suspension is pure
//! bookkeeping: parking the engine at an answer boundary (or a host-call
//! site) and re-entering it later must be *invisible* to every observable
//! the machine reports — answers, aggregate counters, per-area and
//! per-object reference counts, and the byte-level trace fingerprint.
//! These properties generate random backtracking programs (the same family
//! as `flat_classic_differential.rs`) and check:
//!
//! * an uninterrupted [`Session::run`] and a cursor suspended at the first
//!   answer agree on every counter and on the trace fingerprint — the
//!   suspension point adds nothing to the hot path;
//! * draining the full answer stream yields identical answer sequences
//!   across interleaved/threaded-strict/relaxed × flat/classic, with
//!   counter-and-fingerprint equality between the two dispatch paths on
//!   the deterministic backend;
//! * routing a predicate through a registered host function (suspending
//!   the engine at every call site) leaves the answer stream identical to
//!   the pure-Prolog version of the same program;
//! * closing a cursor at *every* answer boundary in turn leaves the engine
//!   consistent (no pending Goal Frames, structural invariants intact) and
//!   recycles arenas that replay the full stream warm.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};
use rapwam::{Area, MemRef, ObjectKind, Outcome, QueryCursor, RunStats, Term};

/// FNV-1a over every field of every reference, in trace order — the same
/// fingerprint the golden-trace suite uses.
fn fingerprint(trace: &[MemRef]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in trace {
        mix(r.pe);
        for b in r.addr.to_le_bytes() {
            mix(b);
        }
        mix(r.write as u8);
        mix(r.area.index() as u8);
        mix(ObjectKind::ALL.iter().position(|o| *o == r.object).unwrap() as u8);
        mix(matches!(r.locality, rapwam::Locality::Global) as u8);
        mix(r.locked as u8);
    }
    h
}

#[derive(Debug, Clone)]
struct Case {
    /// Random fact table `f(K, V).` — clause-selection fodder.
    facts: Vec<(i64, i64)>,
    /// Query list for the backtracking search.
    list: Vec<i64>,
    /// Search threshold.
    k: i64,
    /// Commit the search to its first hit with a cut.
    cut: bool,
    /// Route the search through a CGE (`&`) so parcalls execute.
    parallel: bool,
    /// Worker count for the engine.
    workers: usize,
}

/// `host`: emit the membership check as a call to the host predicate
/// `hf/1` instead of consulting the compiled `f/2` table.
fn program(c: &Case, host: bool) -> String {
    let mut p = String::new();
    p.push_str("f(99, 99).\n");
    // One clause per key: `f(X, _)` must succeed at most once per bound X,
    // like the semi-deterministic host predicate it is compared against.
    let mut seen = std::collections::HashSet::new();
    for (k, v) in &c.facts {
        if seen.insert(*k) {
            p.push_str(&format!("f({k}, {v}).\n"));
        }
    }
    p.push_str("pick(X, [X|_]).\npick(X, [_|T]) :- pick(X, T).\n");
    let check = if host { "hf(X)" } else { "f(X, _)" };
    let commit = if c.cut { ", !" } else { "" };
    p.push_str(&format!("good(X, L, K) :- pick(X, L), X > K, {check}{commit}.\n"));
    if c.parallel && !host {
        p.push_str(
            "search(L, K, pair(A, B)) :- \
             (ground(L), ground(K) | good(A, L, K) & good(B, L, K)).\n",
        );
    } else {
        // Host predicates cannot sit inside a parallel goal's subtree in
        // this differential (a suspended PE would stall its siblings), so
        // the host variant always searches sequentially.
        p.push_str("search(L, K, pair(A, B)) :- good(A, L, K), good(B, L, K).\n");
    }
    p.push_str("search(_, _, none).\n");
    p
}

fn query(c: &Case) -> String {
    let items: Vec<String> = c.list.iter().map(|i| i.to_string()).collect();
    format!("search([{}], {}, R)", items.join(","), c.k)
}

fn render_answer(s: &Session, bindings: &[(String, Term)]) -> String {
    bindings.iter().find(|(n, _)| n == "R").map(|(_, t)| s.render(t)).unwrap_or_else(|| "unbound".to_string())
}

/// Open a cursor for `c` on a fresh session and hand both back.
fn open(c: &Case, host: bool, opts: &QueryOptions) -> (Session, QueryCursor) {
    let mut s = Session::new(&program(c, host)).expect("program parses");
    if host {
        let table: Vec<i64> = c.facts.iter().map(|(k, _)| *k).collect();
        s.register_host("hf", 1, move |args| {
            let Term::Int(x) = args[0] else { return None };
            (x == 99 || table.contains(&x)).then(Vec::new)
        });
    }
    let compiled = s.prepare_with(&query(c), opts.compile_options()).expect("query compiles");
    let cursor = s.open_cursor(&compiled, opts, None).expect("cursor opens");
    (s, cursor)
}

/// Drain the stream, returning rendered answers, final stats, and the
/// cumulative trace fingerprint when tracing was on.
fn drain(c: &Case, host: bool, opts: &QueryOptions) -> (Vec<String>, RunStats, Option<u64>) {
    let (s, mut cursor) = open(c, host, opts);
    let mut answers = Vec::new();
    while let Some(b) = cursor.next().expect("cursor step") {
        answers.push(render_answer(&s, &b));
        cursor
            .check_consistency()
            .unwrap_or_else(|e| panic!("inconsistent stack sets suspended at answer {}: {e}", answers.len()));
    }
    assert_eq!(cursor.pending_goal_frames(), 0, "goal frames left after exhaustion");
    let stats = cursor.stats().expect("stats");
    let fp = cursor.take_trace().map(|t| fingerprint(&t));
    (answers, stats, fp)
}

/// Assert every schedule-invariant observable matches between two runs.
fn assert_counters_equal(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(a.inferences, b.inferences, "{what}: inferences");
    assert_eq!(a.data_refs, b.data_refs, "{what}: total refs");
    assert_eq!(a.reads, b.reads, "{what}: reads");
    assert_eq!(a.writes, b.writes, "{what}: writes");
    assert_eq!(a.elapsed_cycles, b.elapsed_cycles, "{what}: cycles");
    assert_eq!(a.parcalls, b.parcalls, "{what}: parcalls");
    for area in Area::ALL {
        assert_eq!(a.area_stats.area(area), b.area_stats.area(area), "{what}: {} counts", area.name());
    }
    for object in ObjectKind::ALL {
        assert_eq!(
            a.area_stats.object(object),
            b.area_stats.object(object),
            "{what}: {} counts",
            object.name()
        );
    }
}

/// CI matrix knob: when `PWAM_THREADS` is set, the threaded-backend drains
/// run at that width instead of the generated per-case worker count.
fn threaded_workers(generated: usize) -> usize {
    std::env::var("PWAM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(generated)
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        prop::collection::vec((-10i64..10, -10i64..10), 0..6),
        prop::collection::vec(-10i64..10, 1..7),
        -10i64..10,
        any::<bool>(),
        any::<bool>(),
        1usize..4,
    )
        .prop_map(|(facts, list, k, cut, parallel, workers)| Case {
            facts,
            list,
            k,
            cut,
            parallel,
            workers,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An uninterrupted `run` and a cursor suspended at the first answer
    /// are the same execution: identical outcome, counters, and trace
    /// fingerprint at the boundary.  This is the "suspension is off the
    /// hot path" property — `run` and `run_resumable` drive the same
    /// machine to the same halt state.
    #[test]
    fn first_answer_suspension_is_invisible(c in case_strategy()) {
        let opts = QueryOptions { trace: true, ..QueryOptions::parallel(c.workers) };
        let mut s = Session::new(&program(&c, false)).expect("program parses");
        let uninterrupted = s.run(&query(&c), &opts).expect("query runs");

        let (s2, mut cursor) = open(&c, false, &opts);
        let first = cursor.next().expect("cursor step");
        match (&uninterrupted.outcome, &first) {
            (Outcome::Success(b), Some(cb)) => {
                prop_assert_eq!(
                    render_answer(&s2, cb),
                    s.render(uninterrupted.outcome.binding("R").expect("R bound")),
                    "first answers differ"
                );
                prop_assert_eq!(b.len(), cb.len());
            }
            (Outcome::Failure, None) => {}
            (a, b) => prop_assert!(false, "outcome mismatch: run={a:?} cursor_first={b:?}"),
        }
        let stats = cursor.stats().expect("stats");
        assert_counters_equal(&uninterrupted.stats, &stats, "run vs suspended cursor");
        let run_fp = fingerprint(uninterrupted.trace.as_ref().expect("run trace"));
        let cur_fp = fingerprint(&cursor.take_trace().expect("cursor trace"));
        prop_assert_eq!(run_fp, cur_fp, "trace fingerprints differ at the first boundary");
    }

    /// The full answer stream is identical across backends and dispatch
    /// paths, with exact counter/fingerprint equality between flat and
    /// classic on the deterministic interleaved backend (where the whole
    /// multi-leg execution — including every Redo re-entry — is replayed
    /// instruction for instruction).
    #[test]
    fn streams_agree_across_backends_and_dispatch(c in case_strategy()) {
        let traced = |o: QueryOptions| QueryOptions { trace: true, ..o };
        let (flat, flat_stats, flat_fp) = drain(&c, false, &traced(QueryOptions::parallel(c.workers)));
        let (classic, classic_stats, classic_fp) =
            drain(&c, false, &traced(QueryOptions::parallel(c.workers).with_classic_dispatch()));
        prop_assert_eq!(&flat, &classic, "flat vs classic streams");
        assert_counters_equal(&flat_stats, &classic_stats, "flat vs classic full stream");
        prop_assert_eq!(flat_fp.expect("flat trace"), classic_fp.expect("classic trace"));

        let width = threaded_workers(c.workers.max(2));
        let (strict, _, _) = drain(&c, false, &QueryOptions::threaded(width));
        prop_assert_eq!(&flat, &strict, "interleaved vs threaded-strict streams");
        let (relaxed, _, _) = drain(&c, false, &QueryOptions::relaxed(width));
        prop_assert_eq!(&flat, &relaxed, "interleaved vs relaxed streams");
    }

    /// Replacing a compiled predicate with a host function — suspending
    /// the engine at every call site — changes nothing about the answer
    /// stream.
    #[test]
    fn host_call_suspensions_are_transparent(c in case_strategy()) {
        // The pure baseline must use the same (sequential) clause shape the
        // host variant compiles to.
        let sequential = Case { parallel: false, ..c.clone() };
        let (pure_stream, _, _) = drain(&sequential, false, &QueryOptions::sequential());
        let (host_stream, _, _) = drain(&c, true, &QueryOptions::sequential());
        prop_assert_eq!(&pure_stream, &host_stream, "host vs pure streams");

        // Host servicing is backend-independent (the suspension happens in
        // sequential code; only the engine around it changes).
        let (host_par, _, _) = drain(&c, true, &QueryOptions::parallel(c.workers));
        prop_assert_eq!(&pure_stream, &host_par, "host stream under the interleaved backend");
    }

    /// The suspension-point fault sweep: abandon the stream at every
    /// answer boundary in turn.  At each boundary the suspended engine
    /// must be structurally consistent with no Goal Frames pending, and
    /// the arenas recovered from the abandoned cursor must replay the
    /// whole stream when recycled into a fresh one.
    #[test]
    fn closing_at_every_boundary_leaves_a_consistent_engine(c in case_strategy()) {
        let opts = QueryOptions::parallel(c.workers);
        let (full, _, _) = drain(&c, false, &opts);
        for boundary in 0..=full.len() {
            let (s, mut cursor) = open(&c, false, &opts);
            for (i, expected) in full.iter().enumerate().take(boundary) {
                let b = cursor.next().expect("cursor step").expect("answer within the stream");
                prop_assert_eq!(&render_answer(&s, &b), expected, "answer {} diverged", i);
            }
            prop_assert_eq!(cursor.pending_goal_frames(), 0, "goal frames parked at boundary {}", boundary);
            cursor.check_consistency().unwrap_or_else(|e| {
                panic!("inconsistent stack sets closing at boundary {boundary}: {e}")
            });
            let memory = cursor.close().expect("abandoned cursor yields its arenas");

            // The recovered arenas must be clean enough to replay the
            // whole stream warm in a fresh cursor.
            let mut s2 = Session::new(&program(&c, false)).expect("program parses");
            let compiled = s2.prepare_with(&query(&c), opts.compile_options()).expect("compiles");
            let mut replay = s2.open_cursor(&compiled, &opts, Some(memory)).expect("reopens warm");
            let mut seen = Vec::new();
            while let Some(b) = replay.next().expect("replay step") {
                seen.push(render_answer(&s2, &b));
            }
            prop_assert_eq!(&seen, &full, "recycled arenas replay a different stream");
        }
    }
}
