//! Property-style tests of unification structure sharing and the arithmetic
//! builtins, complementing `unify_properties.rs`: occurs-style shared
//! structure, partial instantiation, and the `is`/comparison builtins
//! checked against host arithmetic.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};

fn run_bool(session: &mut Session, query: &str) -> bool {
    session
        .run(query, &QueryOptions::sequential())
        .unwrap_or_else(|e| panic!("query {query:?}: {e}"))
        .outcome
        .is_success()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_matches_host(a in -1000i64..1000, b in -1000i64..1000) {
        let mut s = Session::new("ok.").unwrap();
        prop_assert!(run_bool(&mut s, &format!("X is {a} + {b}, X =:= {}", a + b)));
        prop_assert!(run_bool(&mut s, &format!("X is {a} - {b}, X =:= {}", a - b)));
        prop_assert!(run_bool(&mut s, &format!("X is {a} * {b}, X =:= {}", a.wrapping_mul(b))));
    }

    #[test]
    fn division_and_mod_match_host_for_nonzero_divisors(a in -1000i64..1000, b in 1i64..100) {
        let mut s = Session::new("ok.").unwrap();
        prop_assert!(run_bool(&mut s, &format!("X is {a} // {b}, X =:= {}", a.wrapping_div(b))));
        // `mod` is euclidean (ISO floored-for-positive-divisor behaviour).
        prop_assert!(run_bool(&mut s, &format!("X is {a} mod {b}, X =:= {}", a.rem_euclid(b))));
    }

    #[test]
    fn comparisons_agree_with_host(a in -1000i64..1000, b in -1000i64..1000) {
        let mut s = Session::new("ok.").unwrap();
        prop_assert_eq!(run_bool(&mut s, &format!("{a} < {b}")), a < b);
        prop_assert_eq!(run_bool(&mut s, &format!("{a} =< {b}")), a <= b);
        prop_assert_eq!(run_bool(&mut s, &format!("{a} > {b}")), a > b);
        prop_assert_eq!(run_bool(&mut s, &format!("{a} >= {b}")), a >= b);
        prop_assert_eq!(run_bool(&mut s, &format!("{a} =:= {b}")), a == b);
        prop_assert_eq!(run_bool(&mut s, &format!("{a} =\\= {b}")), a != b);
    }

    #[test]
    fn nested_expressions_evaluate_inside_out(a in -50i64..50, b in -50i64..50, c in 1i64..20) {
        let mut s = Session::new("ok.").unwrap();
        let expected = (a.wrapping_add(b)).wrapping_mul(c).wrapping_sub(a.wrapping_div(c));
        prop_assert!(run_bool(&mut s, &format!("X is ({a} + {b}) * {c} - {a} // {c}, X =:= {expected}")));
    }

    #[test]
    fn unification_shares_structure_through_variables(n in -100i64..100) {
        // Binding the same variable twice through a shared subterm must
        // constrain both occurrences: pair(X, X) unifies with pair(N, N) but
        // not with pair(N, N+1).
        let mut s = Session::new("twin(pair(X, X)).").unwrap();
        prop_assert!(run_bool(&mut s, &format!("twin(pair({n}, {n}))")));
        prop_assert!(!run_bool(&mut s, &format!("twin(pair({n}, {}))", n + 1)));
    }

    #[test]
    fn shared_variable_propagates_across_subterms(n in -100i64..100) {
        // X occurs in two sibling structures; binding one side instantiates
        // the other (the classic shared-structure case for the binding
        // machinery that an occurs check would have to traverse).
        let program = "link(f(X), g(X)).";
        let mut s = Session::new(program).unwrap();
        let r = s
            .run(&format!("link(f({n}), G)"), &QueryOptions::sequential())
            .unwrap();
        prop_assert!(r.outcome.is_success());
        let g = s.render(r.outcome.binding("G").unwrap());
        prop_assert_eq!(g, format!("g({n})"));
    }

    #[test]
    fn failed_arithmetic_comparison_does_not_bind(a in -100i64..100) {
        // A failing goal after a binding must undo nothing observable: the
        // session answers the follow-up query independently.
        let mut s = Session::new("ok.").unwrap();
        prop_assert!(!run_bool(&mut s, &format!("X is {a}, X =:= {}", a + 1)));
        prop_assert!(run_bool(&mut s, &format!("X is {a}, X =:= {a}")));
    }
}

#[test]
fn division_by_zero_is_an_error_not_a_failure() {
    let mut s = Session::new("ok.").unwrap();
    assert!(s.run("X is 1 // 0", &QueryOptions::sequential()).is_err());
    assert!(s.run("X is 1 mod 0", &QueryOptions::sequential()).is_err());
}

#[test]
fn unbound_arithmetic_is_an_instantiation_error() {
    let mut s = Session::new("ok.").unwrap();
    assert!(s.run("X is Y + 1", &QueryOptions::sequential()).is_err());
}

#[test]
fn unary_minus_and_plus() {
    let mut s = Session::new("ok.").unwrap();
    assert!(run_bool(&mut s, "X is -(5), X =:= -5"));
    assert!(run_bool(&mut s, "X is +(5), X =:= 5"));
    assert!(run_bool(&mut s, "X is -(-(7)), X =:= 7"));
}

#[test]
fn self_unification_of_cyclic_free_variables_terminates() {
    // X = X on a fresh variable must succeed without looping — the
    // rational-tree-adjacent case a naive occurs traversal can spin on.
    let mut s = Session::new("eq(X, X).").unwrap();
    assert!(run_bool(&mut s, "eq(Y, Y)"));
}
