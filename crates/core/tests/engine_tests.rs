//! End-to-end tests of the abstract machine: parse → compile → execute and
//! check the answers, in both sequential-WAM and parallel-RAP-WAM modes.

use rapwam::session::{QueryOptions, Session};
use rapwam::{MemoryConfig, Outcome};

fn run(program: &str, query: &str, opts: &QueryOptions) -> (Session, rapwam::RunResult) {
    let mut s = Session::new(program).expect("program parses");
    let r = s.run(query, opts).expect("query runs");
    (s, r)
}

fn answer(program: &str, query: &str, opts: &QueryOptions, var: &str) -> String {
    let (s, r) = run(program, query, opts);
    match &r.outcome {
        Outcome::Success(_) => {
            let t = r.outcome.binding(var).unwrap_or_else(|| panic!("no binding for {var}"));
            s.render(t)
        }
        Outcome::Failure => panic!("query failed"),
    }
}

const APPEND: &str = "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).";

#[test]
fn facts_unify() {
    let (_, r) = run("parent(tom, bob).\nparent(bob, ann).", "parent(tom, X)", &QueryOptions::sequential());
    assert!(r.outcome.is_success());
}

#[test]
fn query_failure_is_reported() {
    let (_, r) = run("parent(tom, bob).", "parent(bob, tom)", &QueryOptions::sequential());
    assert_eq!(r.outcome, Outcome::Failure);
}

#[test]
fn append_builds_lists() {
    assert_eq!(answer(APPEND, "app([1,2],[3,4],X)", &QueryOptions::sequential(), "X"), "[1,2,3,4]");
}

#[test]
fn append_solves_for_the_middle_argument() {
    assert_eq!(answer(APPEND, "app([1,2],Y,[1,2,9,10])", &QueryOptions::sequential(), "Y"), "[9,10]");
}

#[test]
fn append_backtracks_through_alternatives() {
    // app(X, Y, [1,2]) has three solutions; the first has X = [].
    assert_eq!(answer(APPEND, "app(X,Y,[1,2])", &QueryOptions::sequential(), "X"), "[]");
}

#[test]
fn naive_reverse() {
    let program = format!("{APPEND}\nnrev([],[]).\nnrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).");
    assert_eq!(answer(&program, "nrev([1,2,3,4,5],R)", &QueryOptions::sequential(), "R"), "[5,4,3,2,1]");
}

#[test]
fn arithmetic_factorial() {
    let program = "fact(0, 1).\nfact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.";
    assert_eq!(answer(program, "fact(6, F)", &QueryOptions::sequential(), "F"), "720");
}

#[test]
fn comparison_builtins() {
    let program = "max(X, Y, X) :- X >= Y.\nmax(X, Y, Y) :- X < Y.";
    assert_eq!(answer(program, "max(3, 7, M)", &QueryOptions::sequential(), "M"), "7");
    assert_eq!(answer(program, "max(9, 2, M)", &QueryOptions::sequential(), "M"), "9");
}

#[test]
fn cut_commits_to_the_first_clause() {
    let program = "classify(X, small) :- X < 10, !.\nclassify(_, big).";
    assert_eq!(answer(program, "classify(3, C)", &QueryOptions::sequential(), "C"), "small");
    assert_eq!(answer(program, "classify(30, C)", &QueryOptions::sequential(), "C"), "big");
}

#[test]
fn cut_prevents_backtracking_into_earlier_alternatives() {
    // Without the cut, the query would succeed via c(2); with it, it fails.
    let program = "c(1).\nc(2).\nt(X) :- c(X), !, X > 1.";
    let (_, r) = run(program, "t(X)", &QueryOptions::sequential());
    assert_eq!(r.outcome, Outcome::Failure);
}

#[test]
fn cut_discards_the_clause_selection_choice_point() {
    // p(3, R) commits to R = a because of the cut; the query then demands
    // R = b, which must NOT be satisfiable by backtracking into p's second
    // clause (the cut discarded it).
    let program = "p(X, a) :- X < 5, !.\np(_, b).";
    let (_, r) = run(program, "p(3, R), R = b", &QueryOptions::sequential());
    assert_eq!(r.outcome, Outcome::Failure);
    // Without the demand it succeeds with R = a.
    assert_eq!(answer(program, "p(3, R)", &QueryOptions::sequential(), "R"), "a");
    // And a value that fails the guard still reaches the second clause.
    assert_eq!(answer(program, "p(7, R)", &QueryOptions::sequential(), "R"), "b");
}

#[test]
fn cut_inside_retried_clause_uses_the_correct_barrier() {
    // The first clause of q fails after creating inner choice points; the
    // second clause cuts. The cut must remove q's own selection choice point
    // but not the one belonging to the caller's alternatives.
    let program = "\
        c(1).\nc(2).\n\
        q(X) :- c(X), X > 5.\n\
        q(X) :- c(X), !.\n\
        top(X) :- q(X).\n\
        top(99).";
    assert_eq!(answer(program, "top(X)", &QueryOptions::sequential(), "X"), "1");
    // After committing inside q, demanding a different value must still be
    // able to backtrack into top's second clause (the cut is local to q).
    assert_eq!(answer(program, "top(X), X > 10", &QueryOptions::sequential(), "X"), "99");
}

#[test]
fn structures_and_nested_terms() {
    let program = "mk(point(X, Y), X, Y).\nswap(point(X,Y), point(Y,X)).";
    assert_eq!(answer(program, "mk(P, 3, 4)", &QueryOptions::sequential(), "P"), "point(3,4)");
    assert_eq!(answer(program, "swap(point(a,f(b)), Q)", &QueryOptions::sequential(), "Q"), "point(f(b),a)");
}

#[test]
fn constant_indexing_picks_the_right_clause() {
    let program = "color(red, warm).\ncolor(blue, cold).\ncolor(green, fresh).";
    assert_eq!(answer(program, "color(blue, T)", &QueryOptions::sequential(), "T"), "cold");
}

#[test]
fn structure_indexing_discriminates_functors() {
    let program = "\
        eval(num(N), N).\n\
        eval(plus(A,B), R) :- eval(A, RA), eval(B, RB), R is RA + RB.\n\
        eval(times(A,B), R) :- eval(A, RA), eval(B, RB), R is RA * RB.";
    assert_eq!(
        answer(program, "eval(plus(num(2), times(num(3), num(4))), R)", &QueryOptions::sequential(), "R"),
        "14"
    );
}

#[test]
fn difference_list_quicksort_sequential() {
    let program = "\
        qsort([], R, R).\n\
        qsort([X|L], R, R0) :- partition(L, X, L1, L2), qsort(L2, R1, R0), qsort(L1, R, [X|R1]).\n\
        partition([], _, [], []).\n\
        partition([E|R], C, [E|L1], L2) :- E =< C, partition(R, C, L1, L2).\n\
        partition([E|R], C, L1, [E|L2]) :- E > C, partition(R, C, L1, L2).";
    assert_eq!(
        answer(program, "qsort([3,1,4,1,5,9,2,6], S, [])", &QueryOptions::sequential(), "S"),
        "[1,1,2,3,4,5,6,9]"
    );
}

const PAR_FIB: &str = "\
    fib(0, 0).\n\
    fib(1, 1).\n\
    fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n\
                 (ground(N1), ground(N2) | fib(N1, F1) & fib(N2, F2)),\n\
                 F is F1 + F2.";

#[test]
fn parallel_fib_single_worker() {
    assert_eq!(answer(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(1), "F"), "144");
}

#[test]
fn parallel_fib_matches_sequential_on_many_workers() {
    let seq = answer(PAR_FIB, "fib(13, F)", &QueryOptions::sequential(), "F");
    for workers in [2, 4, 8] {
        let par = answer(PAR_FIB, "fib(13, F)", &QueryOptions::parallel(workers), "F");
        assert_eq!(par, seq, "with {workers} workers");
    }
}

#[test]
fn parallel_execution_actually_distributes_goals() {
    let (_, r) = run(PAR_FIB, "fib(14, F)", &QueryOptions::parallel(4));
    assert!(r.stats.parcalls > 0, "no parallel calls were made");
    assert!(r.stats.goals_actually_parallel > 0, "no goal was executed by a non-parent PE");
    // More than one worker must have executed instructions.
    let busy = r.stats.workers.iter().filter(|w| w.instructions > 0).count();
    assert!(busy >= 2, "only {busy} workers did any work");
}

#[test]
fn unconditional_cge_runs_in_parallel() {
    let program = "\
        work(0, []).\n\
        work(N, [N|T]) :- N > 0, N1 is N - 1, work(N1, T).\n\
        both(A, B) :- (work(40, A) & work(40, B)).";
    let (_, r) = run(program, "both(A, B)", &QueryOptions::parallel(2));
    assert!(r.outcome.is_success());
    assert!(r.stats.parcalls >= 1);
}

#[test]
fn failed_cge_condition_falls_back_to_sequential_execution() {
    // X is unbound at the check, so ground(X) fails and the CGE must run
    // sequentially (left to right), which still produces the answer.
    let program = "\
        p(X, Y) :- (ground(X) | q(X) & r(X, Y)).\n\
        q(7).\n\
        r(7, ok).";
    let (s, r) = run(program, "p(X, Y)", &QueryOptions::parallel(2));
    assert!(r.outcome.is_success());
    assert_eq!(s.render(r.outcome.binding("Y").unwrap()), "ok");
    assert_eq!(r.stats.parcalls, 0, "the parallel path must not have been taken");
}

#[test]
fn indep_condition_detects_sharing() {
    // X and Y share a variable, so indep(X, Y) fails and execution is
    // sequential; the answer must still be correct.
    let program = "\
        p(R) :- X = f(Z), Y = g(Z), (indep(X, Y) | a(X) & b(Y)), R = done(X, Y), Z = 1.\n\
        a(f(_)).\n\
        b(g(_)).";
    let (s, r) = run(program, "p(R)", &QueryOptions::parallel(2));
    assert!(r.outcome.is_success());
    assert_eq!(s.render(r.outcome.binding("R").unwrap()), "done(f(1),g(1))");
    assert_eq!(r.stats.parcalls, 0);
}

#[test]
fn parallel_goal_failure_fails_the_call() {
    let program = "\
        p :- (q & r).\n\
        q.\n\
        r :- fail.";
    let (_, r) = run(program, "p", &QueryOptions::parallel(2));
    assert_eq!(r.outcome, Outcome::Failure);
}

#[test]
fn parallel_binding_of_output_variables_crosses_workers() {
    let program = "\
        mklist(0, []).\n\
        mklist(N, [N|T]) :- N > 0, N1 is N - 1, mklist(N1, T).\n\
        pair(A, B) :- (mklist(5, A) & mklist(3, B)).";
    let (s, r) = run(program, "pair(A, B)", &QueryOptions::parallel(3));
    assert_eq!(s.render(r.outcome.binding("A").unwrap()), "[5,4,3,2,1]");
    assert_eq!(s.render(r.outcome.binding("B").unwrap()), "[3,2,1]");
}

#[test]
fn trace_collection_produces_consistent_references() {
    let opts = QueryOptions { trace: true, ..QueryOptions::parallel(2) };
    let (_, r) = run(PAR_FIB, "fib(10, F)", &opts);
    let trace = r.trace.expect("trace was requested");
    assert_eq!(trace.len() as u64, r.stats.data_refs, "trace length must equal the reference count");
    assert!(!trace.is_empty());
    for m in &trace {
        assert!((m.pe as usize) < 2);
        assert_eq!(m.area, m.object.area(), "area and object tag must agree");
    }
}

#[test]
fn stats_have_plausible_magnitudes() {
    let (_, r) = run(PAR_FIB, "fib(12, F)", &QueryOptions::sequential());
    let rpi = r.stats.refs_per_instruction();
    assert!(rpi > 1.0 && rpi < 8.0, "references per instruction {rpi} is implausible");
    assert!(r.stats.instructions > 100);
    assert!(r.stats.inferences > 10);
    assert!(r.stats.elapsed_cycles > 0);
}

#[test]
fn sequential_and_parallel_reference_counts_are_close_on_one_pe() {
    // RAP-WAM on one PE should do only slightly more work than the WAM
    // (the parallelism-management overhead), as reported in the paper.
    let (_, seq) = run(PAR_FIB, "fib(12, F)", &QueryOptions::sequential());
    let (_, par1) = run(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(1));
    let ratio = par1.stats.data_refs as f64 / seq.stats.data_refs as f64;
    assert!(ratio >= 1.0, "parallel mode cannot do less work than sequential ({ratio})");
    // fib annotates *every* recursion level, which is the most extreme
    // granularity possible; the paper's benchmarks are coarser and show
    // ~15% overhead (checked by the figure2 harness on deriv).  With the
    // last-goal-inline optimisation the leftmost branch of each CGE runs
    // on the parent without any Goal-Frame traffic, so even this
    // finest-granularity worst case stays under 1.7x in references (and
    // under 1.8x in instructions — pinned for the whole registry by the
    // `overhead_gate` suite in pwam_benchmarks).
    assert!(ratio < 1.7, "overhead of {ratio} on one PE is implausibly high");
}

#[test]
fn inline_execution_keeps_the_local_stack_bounded() {
    // Regression test: discarding an inline leaf's clause-selection choice
    // point (the parcall's first-solution commit) once froze
    // `stack_boundary` at that point's saved local top, below which no
    // environment or Parcall Frame could ever be reclaimed — local usage
    // then grew with the *call tree* (~6300 words for fib(13)) instead of
    // the recursion depth, and relaxed runs on small arenas hit
    // OutOfMemory.  Deterministic on one interleaved PE: with the
    // boundaries restored from the goal-entry state, fib(13) needs well
    // under 500 local words.
    let (_, r) = run(PAR_FIB, "fib(13, F)", &QueryOptions::parallel(1));
    let (_, local, _, _, _) = r.stats.workers[0].max_usage;
    assert!(local < 500, "local stack grew to {local} words; frame reclamation regressed");
}

#[test]
fn inline_first_goal_toggle_preserves_answers() {
    // The Goal-Frame-everywhere compilation stays available (and correct)
    // behind the toggle; only the overhead differs.
    let seq = answer(PAR_FIB, "fib(12, F)", &QueryOptions::sequential(), "F");
    for workers in [1, 4] {
        let with_inline = answer(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(workers), "F");
        let without =
            answer(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(workers).without_inline_first_goal(), "F");
        assert_eq!(with_inline, seq, "{workers} workers, inline on");
        assert_eq!(without, seq, "{workers} workers, inline off");
    }
    let (_, on) = run(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(1));
    let (_, off) = run(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(1).without_inline_first_goal());
    assert!(
        on.stats.instructions < off.stats.instructions,
        "inline execution must save instructions ({} !< {})",
        on.stats.instructions,
        off.stats.instructions
    );
}

#[test]
fn small_memory_configuration_is_sufficient_for_small_programs() {
    let opts = QueryOptions { memory: MemoryConfig::small(), ..QueryOptions::sequential() };
    assert_eq!(answer(APPEND, "app([1,2,3],[4],X)", &opts, "X"), "[1,2,3,4]");
}

#[test]
fn heap_overflow_is_reported_not_panicking() {
    let tiny = MemoryConfig {
        heap_words: 64,
        local_words: 64,
        control_words: 64,
        trail_words: 32,
        pdl_words: 32,
        goal_stack_words: 32,
        message_words: 8,
    };
    let program = "grow(0, []).\ngrow(N, [N|T]) :- N > 0, N1 is N - 1, grow(N1, T).";
    let mut s = Session::new(program).unwrap();
    let opts = QueryOptions { memory: tiny, ..QueryOptions::sequential() };
    let err = s.run("grow(1000, L)", &opts).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "unexpected error: {msg}");
}

#[test]
fn deep_recursion_with_last_call_optimisation_keeps_the_local_stack_flat() {
    let program = "count(0).\ncount(N) :- N > 0, N1 is N - 1, count(N1).";
    let (_, r) = run(program, "count(5000)", &QueryOptions::sequential());
    assert!(r.outcome.is_success());
    // With LCO the local stack must stay bounded (a handful of frames), not
    // grow linearly with the recursion depth.
    let (_, local, _, _, _) = r.stats.workers[0].max_usage;
    assert!(local < 1000, "local stack grew to {local} words; LCO is not working");
}

#[test]
fn three_way_parallel_conjunction() {
    let program = "\
        len([], 0).\n\
        len([_|T], N) :- len(T, M), N is M + 1.\n\
        tri(A, B, C) :- (len([a,b,c], A) & len([d,e], B) & len([], C)).";
    let (s, r) = run(program, "tri(A, B, C)", &QueryOptions::parallel(3));
    assert_eq!(s.render(r.outcome.binding("A").unwrap()), "3");
    assert_eq!(s.render(r.outcome.binding("B").unwrap()), "2");
    assert_eq!(s.render(r.outcome.binding("C").unwrap()), "0");
}

#[test]
fn nested_parallel_calls() {
    let program = "\
        leaf(X, X).\n\
        node(N, R) :- N > 0, N1 is N - 1,\n\
                      (ground(N1) | node(N1, A) & node(N1, B)),\n\
                      R is A + B + 1.\n\
        node(0, 1).";
    // A small binary tree of parallel calls; value is 2^(N+1) - 1.
    let seq = answer(program, "node(6, R)", &QueryOptions::sequential(), "R");
    assert_eq!(seq, "127");
    for workers in [2, 5, 8] {
        assert_eq!(answer(program, "node(6, R)", &QueryOptions::parallel(workers), "R"), "127");
    }
}

#[test]
fn goals_in_parallel_counted_only_for_other_pes() {
    let (_, r1) = run(PAR_FIB, "fib(12, F)", &QueryOptions::parallel(1));
    // With a single worker nothing can be picked up by another PE.
    assert_eq!(r1.stats.goals_actually_parallel, 0);
    assert!(r1.stats.parallel_goals > 0);
}

/// A CGE whose inline (leftmost) branch fails after `WBad` reductions while
/// the scheduled sibling runs `2 × WMid` reductions through a *nested*
/// parcall of its own.  Once the thief is inside that inner parcall, a
/// `cancel_goal` request for the outer goal is dropped (the goal is no
/// longer the executor's innermost safely-abortable activity), so the
/// cancelling parent must wait for the full drain — the scenario where a
/// per-request deadline can expire mid-cancellation.
const SLOW_CANCEL: &str = "\
    work(0).\n\
    work(N) :- N > 0, N1 is N - 1, work(N1).\n\
    bad(W) :- work(W), fail.\n\
    mid(1, W) :- work(W).\n\
    slow(X, W) :- (mid(A, W) & mid(B, W)), X is A + B.\n\
    p(R, WBad, WMid) :- (bad(WBad) & slow(R, WMid)).";

#[test]
fn cancellation_drain_completes_under_a_generous_deadline() {
    // The inline branch fails while the sibling may be stolen and in
    // flight; with a deadline that comfortably covers the drain, the query
    // must fail *cleanly* through the completion protocol.
    for workers in [1, 2, 4] {
        let opts = QueryOptions::parallel(workers).with_time_budget(std::time::Duration::from_secs(30));
        let (_, r) = run(SLOW_CANCEL, "p(R, 0, 2000)", &opts);
        assert_eq!(r.outcome, Outcome::Failure, "{workers} workers");
        assert!(r.stats.parcalls_cancelled >= 1, "{workers} workers: no cancellation recorded");
    }
}

#[test]
fn deadline_mid_cancellation_is_reported_not_hung() {
    // By the time the inline branch has ground through its 20k reductions
    // and failed, the (deterministically stolen) sibling is inside its
    // inner parcall — non-abortable — with ~1M reductions to go: the
    // wall-clock budget expires while the parent is parked in
    // `Cancelling`, and the engine must surface DeadlineExceeded instead
    // of hanging or corrupting state.
    let mut s = Session::new(SLOW_CANCEL).unwrap();
    let opts = QueryOptions::parallel(2).with_time_budget(std::time::Duration::from_millis(40));
    let err = s.run("p(R, 20000, 500000)", &opts).unwrap_err();
    assert!(err.to_string().contains("deadline"), "unexpected error: {err}");
}

#[test]
fn relaxed_deadline_mid_cancellation_unwinds_every_thread() {
    // The 8-thread relaxed stress of the same scenario: all free-running
    // threads must observe the deadline abort and wind down (a hang here
    // fails the harness timeout).  Steal timing is an actual race in
    // relaxed mode: if the retraction wins (the sibling was never stolen),
    // the failure is immediate and clean — both outcomes are sound, but a
    // stolen-and-draining sibling must end in DeadlineExceeded.
    let mut s = Session::new(SLOW_CANCEL).unwrap();
    let opts = QueryOptions::relaxed(8).with_time_budget(std::time::Duration::from_millis(40));
    for _ in 0..3 {
        match s.run("p(R, 20000, 500000)", &opts) {
            Err(e) => assert!(e.to_string().contains("deadline"), "unexpected error: {e}"),
            Ok(r) => assert_eq!(r.outcome, Outcome::Failure, "retraction path must still fail cleanly"),
        }
    }
}

#[test]
fn cut_with_fewer_live_args_does_not_clobber_wider_choice_points() {
    // Regression test: `recede_control_top` used the *current* register
    // count to bound the topmost choice point.  When a predicate with fewer
    // arguments (memb/2) cut while a wider frame (taut/3) was topmost, the
    // receded top landed inside the live frame and the next push overwrote
    // its saved fields, corrupting the backtracking chain.
    let program = "\
        taut(t, _, _) :- !.\n\
        taut(if(C, T, _), True, False) :- memb(C, True), !, taut(T, True, False).\n\
        taut(if(C, _, E), True, False) :- memb(C, False), !, taut(E, True, False).\n\
        taut(if(C, T, E), True, False) :- !, taut(T, [C|True], False), taut(E, True, [C|False]).\n\
        taut(X, True, _) :- memb(X, True).\n\
        memb(X, [X|_]) :- !.\n\
        memb(X, [_|T]) :- memb(X, T).";
    let (_, r) = run(program, "taut(if(v, t, t), [], [])", &QueryOptions::sequential());
    assert!(r.outcome.is_success());
    // The nested case exercises re-entry into the wide frames after the cut.
    let (_, r) = run(program, "taut(if(a, if(b, t, t), if(b, t, f)), [], [])", &QueryOptions::sequential());
    assert_eq!(r.outcome, Outcome::Failure); // else-else branch is f
    let (_, r) = run(program, "taut(if(a, if(b, t, t), if(b, t, t)), [], [])", &QueryOptions::parallel(2));
    assert!(r.outcome.is_success());
}

#[test]
fn neck_cut_commits_to_the_first_matching_clause() {
    // The compiler routes source-level cuts through `get_level`/`cut_to`,
    // so `neck_cut` only appears in hand-written or externally generated
    // code — build one by patching a compiled program: replace the first
    // body call of `p(1) :- s, s.` with `neck_cut`, turning the clause
    // into `p(1) :- !, s.`.
    use pwam_compiler::{DenseCode, Instr};
    use rapwam::{Engine, EngineConfig};

    let src = "s.\nq(2).\np(1) :- s, s.\np(2).";
    let mut session = Session::new(src).unwrap();
    let mut prog = session.compile("p(X), q(X)", false).unwrap();

    let run_prog = |prog: &pwam_compiler::CompiledProgram, config: EngineConfig| {
        Engine::new(prog, config).run(session.symbols()).unwrap()
    };

    // Unpatched, the query backtracks out of p/1's first clause and finds
    // the X = 2 solution.
    let r = run_prog(&prog, QueryOptions::sequential().engine_config());
    assert!(r.outcome.is_success(), "without neck_cut the query must succeed via p(2)");

    // Patch: the first `call` after p/1's entry is the first body goal of
    // its first clause, right after head unification.
    let p_atom = session.symbols().lookup("p").expect("p interned");
    let entry = prog.entry(p_atom, 1).expect("p/1 compiled");
    let call_at = (entry as usize..prog.code.len())
        .find(|i| matches!(prog.code[*i], Instr::Call { .. }))
        .expect("p/1 clause 1 has a body call");
    prog.code[call_at] = Instr::NeckCut;
    prog.dense = DenseCode::build(&prog.code);

    // Patched, the neck cut discards p/1's clause choice point before the
    // body runs: q(1) fails and there is nothing left to retry.
    let flat = run_prog(&prog, QueryOptions::sequential().engine_config());
    assert_eq!(flat.outcome, Outcome::Failure, "neck_cut must commit p/1 to its first clause");

    // Both dispatch paths must execute the patched instruction identically.
    let classic = run_prog(&prog, QueryOptions::sequential().with_classic_dispatch().engine_config());
    assert_eq!(classic.outcome, Outcome::Failure);
    assert_eq!(flat.stats.instructions, classic.stats.instructions);
    assert_eq!(flat.stats.data_refs, classic.stats.data_refs);
}
