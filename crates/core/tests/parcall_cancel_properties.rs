//! Property tests for parcall cancellation (backward execution): random CGE
//! programs whose *inline* (leftmost) branch fails before `pcall_wait`, so
//! the parent must retract its un-stolen sibling Goal Frames and drain the
//! in-flight stolen ones through the completion protocol before its failure
//! may proceed.
//!
//! Pinned properties, for every generated program:
//!
//! * identical answers across Interleaved / Threaded-Strict /
//!   Threaded-Relaxed × both `inline_first_goal` settings (six
//!   configurations), all equal to the sequential WAM reference;
//! * no leaked Goal Frames after the run (every scheduled goal was picked
//!   up, retracted, or aborted — nothing is abandoned on a board);
//! * [`Engine::check_consistency`] clean after the run.
//!
//! The worker count honours `PWAM_THREADS` (default 4); CI runs this suite
//! at 2 and 8 threads in relaxed mode.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};
use rapwam::{scheduler_for, DeterminismMode, Engine, EngineConfig, MemoryConfig, Outcome, SchedulerKind};

/// Worker count for the parallel runs (`PWAM_THREADS`, default 4).
fn threads() -> usize {
    std::env::var("PWAM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

/// Shape of one generated program: the inline branch performs `fail_work`
/// reductions and then fails, while `sibling_work[i]` sized siblings run in
/// parallel (stealable, possibly in flight when the inline branch dies).
/// With `nested` the failing CGE sits inside the inline branch of an outer
/// CGE, so cancellation must walk a Parcall-Frame *chain*.
#[derive(Debug, Clone)]
struct Shape {
    fail_work: u32,
    sibling_work: Vec<u32>,
    nested: bool,
}

fn shape() -> impl Strategy<Value = Shape> {
    (0u32..12, prop::collection::vec(0u32..24, 1..4), any::<bool>())
        .prop_map(|(fail_work, sibling_work, nested)| Shape { fail_work, sibling_work, nested })
}

/// Build the program source for a shape.  `attempt/1` first tries the
/// doomed CGE (whose leftmost branch always fails after `fail_work`
/// reductions), then falls back to a clause that reports which siblings
/// were configured — so the query succeeds *through* the cancellation.
fn program(s: &Shape) -> String {
    let mut src = String::from(
        "work(0).\n\
         work(N) :- N > 0, N1 is N - 1, work(N1).\n\
         bad(K) :- work(K), fail.\n\
         good(K, K) :- work(K).\n",
    );
    let branches: Vec<String> =
        s.sibling_work.iter().enumerate().map(|(i, w)| format!("good({w}, X{i})")).collect();
    let doomed_body = format!("(bad({}) & {})", s.fail_work, branches.join(" & "));
    if s.nested {
        // The doomed CGE is itself the inline branch of an outer CGE: its
        // failure must cancel the inner frame, then fail `inner/0`, which
        // is the outer frame's inline branch — cancelling that one too.
        src.push_str(&format!("inner :- {doomed_body}.\n"));
        src.push_str(&format!(
            "doomed(R) :- (inner & good({}, Y)), R = never(Y).\n",
            s.sibling_work.first().copied().unwrap_or(1)
        ));
    } else {
        src.push_str(&format!("doomed(R) :- {doomed_body}, R = never.\n"));
    }
    src.push_str("attempt(R) :- doomed(R).\n");
    src.push_str(&format!("attempt(recovered({})).\n", s.sibling_work.len()));
    src
}

/// Run on a given backend through the engine API (so the finished engine is
/// still around for the leak and consistency checks), returning the
/// rendered answer.
fn run_config(
    src: &str,
    scheduler: SchedulerKind,
    determinism: DeterminismMode,
    inline_first_goal: bool,
    workers: usize,
) -> String {
    let mut session = Session::new(src).expect("program parses");
    let mut copts = pwam_compiler::CompileOptions::parallel();
    copts.inline_first_goal = inline_first_goal;
    let compiled = session.compile_with("attempt(R)", copts).expect("query compiles");
    let config = EngineConfig {
        num_workers: workers,
        memory: MemoryConfig::small(),
        scheduler,
        determinism,
        ..EngineConfig::default()
    };
    let engine = Engine::new(&compiled, config);
    let engine = scheduler_for(scheduler, determinism).drive(engine).expect("drive");
    assert_eq!(
        engine.pending_goal_frames(),
        0,
        "leaked goal frames ({scheduler:?} {determinism:?} inline={inline_first_goal})"
    );
    engine.check_consistency().unwrap_or_else(|e| {
        panic!("inconsistent stack sets ({scheduler:?} {determinism:?} inline={inline_first_goal}): {e}")
    });
    let result = engine.into_result(session.symbols()).expect("result extraction");
    match &result.outcome {
        Outcome::Success(_) => session.render(result.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

/// The sequential WAM reference answer.
fn run_sequential(src: &str) -> String {
    let mut session = Session::new(src).expect("program parses");
    let r = session.run("attempt(R)", &QueryOptions::sequential()).expect("sequential run");
    match &r.outcome {
        Outcome::Success(_) => session.render(r.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inline_branch_failure_cancels_soundly(s in shape()) {
        let src = program(&s);
        let seq = run_sequential(&src);
        let workers = threads();
        for inline in [true, false] {
            for (scheduler, determinism) in [
                (SchedulerKind::Interleaved, DeterminismMode::Strict),
                (SchedulerKind::Threaded, DeterminismMode::Strict),
                (SchedulerKind::Threaded, DeterminismMode::Relaxed),
            ] {
                let got = run_config(&src, scheduler, determinism, inline, workers);
                prop_assert!(
                    got == seq,
                    "{scheduler:?} {determinism:?} inline={inline}: got {got}, sequential reference {seq}"
                );
            }
        }
    }
}

/// Deterministic companion: a doomed CGE with heavy siblings on one PE must
/// actually *retract* them (backward execution), not execute them — the
/// retraction is visible in the stats and in the instruction count.
#[test]
fn cancellation_retracts_unstolen_siblings_on_one_pe() {
    let s = Shape { fail_work: 0, sibling_work: vec![200, 200, 200], nested: false };
    let src = program(&s);
    let mut session = Session::new(&src).expect("program parses");
    let r = session.run("attempt(R)", &QueryOptions::parallel(1)).expect("run");
    assert!(r.outcome.is_success());
    assert!(r.stats.parcalls_cancelled >= 1, "no parcall was cancelled: {:?}", r.stats);
    assert_eq!(r.stats.goals_cancelled, 3, "all three un-stolen siblings must be retracted");
    // The doomed siblings (600 reductions) were skipped: the whole run must
    // be far smaller than the work it cancelled.
    assert!(
        r.stats.instructions < 600,
        "cancelled work was still executed ({} instructions)",
        r.stats.instructions
    );
}

/// Scenario shared by the two mid-cancellation regression tests below.
///
/// On two PEs: worker 0 runs the doomed CGE whose inline branch (`bad`)
/// fails only after 30 reductions, so worker 1 has long since stolen
/// `sib/1` *and opened sib's own inner Parcall Frame* by the time the
/// `cancel_goal` request lands.  That pins two fixed bugs at once:
///
/// * worker 1 cannot honour the request at the boundary where it arrives
///   (its `PF` is the inner frame, not the goal-entry value) — the request
///   must stay pending until the inner frame completes, then abort `sib`
///   before its 200-reduction tail runs;
/// * worker 0, parked in `Cancelling` until `sib` commits, must meanwhile
///   steal the inner frame's scheduled `work(60)` goal from worker 1's
///   board and execute it — useful work mid-cancellation.
fn mid_cancellation_program() -> &'static str {
    "work(0).\n\
     work(N) :- N > 0, N1 is N - 1, work(N1).\n\
     bad :- work(30), fail.\n\
     sib(R) :- (work(60) & work(60)), work(200), R = done.\n\
     doomed(R) :- (bad & sib(X)), R = never(X).\n\
     attempt(R) :- doomed(R).\n\
     attempt(recovered).\n"
}

/// Regression (PR 6): a `Cancelling` parent used to park until its frame
/// drained.  With `Resume::ToCancel` it steals goals meanwhile — the
/// `goals_while_cancelling` stat proves the parent did real work between
/// starting the cancellation and resuming its deferred backtrack.
#[test]
fn cancelling_parent_steals_work_while_the_frame_drains() {
    let src = mid_cancellation_program();
    let seq = run_sequential(src);
    let mut session = Session::new(src).expect("program parses");
    let r = session.run("attempt(R)", &QueryOptions::parallel(2)).expect("run");
    assert!(r.outcome.is_success());
    assert_eq!(session.render(r.outcome.binding("R").unwrap()), seq);
    let mid: u64 = r.stats.workers.iter().map(|w| w.goals_while_cancelling).sum();
    assert!(
        mid >= 1,
        "the cancelling parent picked up no goal while its frame drained: {:?}",
        r.stats.workers
    );
}

/// Regression (PR 6): a `cancel_goal` request arriving while its target
/// had its own Parcall Frame open used to be silently dropped, letting the
/// doomed goal run to completion.  It must instead stay pending and abort
/// the goal at the first boundary where it *is* safely abortable (here:
/// right after the inner frame's `pcall_wait` completes, before the
/// 200-reduction tail).
#[test]
fn deferred_cancel_request_eventually_aborts_the_goal() {
    let src = mid_cancellation_program();
    let seq = run_sequential(src);
    let mut session = Session::new(src).expect("program parses");
    let r = session.run("attempt(R)", &QueryOptions::parallel(2)).expect("run");
    assert!(r.outcome.is_success());
    assert_eq!(session.render(r.outcome.binding("R").unwrap()), seq);
    assert!(r.stats.cancel_requests >= 1, "no cancel request was ever posted: {:?}", r.stats);
    let aborted: u64 = r.stats.workers.iter().map(|w| w.goals_aborted).sum();
    assert!(
        aborted >= 1,
        "the deferred cancel request never fired; the doomed goal ran to completion: {:?}",
        r.stats.workers
    );
}

/// Deterministic companion for the chain case: a nested doomed CGE cancels
/// the inner frame first, then the outer one, on every backend.
#[test]
fn nested_cancellation_walks_the_frame_chain() {
    let s = Shape { fail_work: 2, sibling_work: vec![30, 30], nested: true };
    let src = program(&s);
    let seq = run_sequential(&src);
    for workers in [1, 2, threads()] {
        let mut session = Session::new(&src).expect("program parses");
        let r = session.run("attempt(R)", &QueryOptions::parallel(workers)).expect("run");
        assert!(r.outcome.is_success());
        assert_eq!(session.render(r.outcome.binding("R").unwrap()), seq, "{workers} workers");
        assert!(r.stats.parcalls_cancelled >= 2, "chain cancellation missing: {:?}", r.stats);
    }
}
