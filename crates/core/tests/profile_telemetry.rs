//! The observability plane's core half: per-predicate instruction
//! attribution on the flat dispatch path and the scheduler telemetry
//! counters surfaced through `RunStats`.

use rapwam::session::{QueryOptions, Session};
use rapwam::{Outcome, RunStats};

const NREV: &str = "app([],L,L).\napp([H|T],L,[H|R]) :- app(T,L,R).\n\
                    nrev([],[]).\nnrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).";

fn run_stats(program: &str, query: &str, opts: &QueryOptions) -> RunStats {
    let mut s = Session::new(program).expect("program parses");
    let r = s.run(query, opts).expect("query runs");
    assert!(matches!(r.outcome, Outcome::Success(_)), "query should succeed");
    r.stats
}

fn profiled(stats: &RunStats, label: &str) -> u64 {
    stats.predicate_profile.iter().find(|(l, _)| l == label).map(|(_, c)| *c).unwrap_or(0)
}

#[test]
fn profile_is_exact_and_labelled() {
    let stats = run_stats(NREV, "nrev([1,2,3,4,5,6,7,8],R)", &QueryOptions::sequential());
    // Every instruction the flat path retires is attributed to exactly one
    // predicate (the residual run is folded in read-only), so the profile
    // total equals the instruction counter — not approximately, exactly.
    let total: u64 = stats.predicate_profile.iter().map(|(_, c)| c).sum();
    assert_eq!(total, stats.instructions);
    // Both predicates show up under resolved name/arity labels, and nrev's
    // quadratic append dominates the work.
    assert!(profiled(&stats, "app/3") > 0, "profile: {:?}", stats.predicate_profile);
    assert!(profiled(&stats, "nrev/2") > 0, "profile: {:?}", stats.predicate_profile);
    assert!(profiled(&stats, "app/3") > profiled(&stats, "nrev/2"));
    // Sorted by decreasing count.
    let counts: Vec<u64> = stats.predicate_profile.iter().map(|(_, c)| *c).collect();
    let mut sorted = counts.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(counts, sorted);
}

#[test]
fn classic_dispatch_reports_no_profile() {
    let opts = QueryOptions { classic_dispatch: true, ..QueryOptions::sequential() };
    let stats = run_stats(NREV, "nrev([1,2,3],R)", &opts);
    assert!(stats.predicate_profile.is_empty());
    assert!(stats.instructions > 0);
}

#[test]
fn parallel_profile_still_sums_to_instructions() {
    let program = format!("{NREV}\nmain(A,B) :- nrev([1,2,3,4,5],A) & nrev([6,7,8,9],B).");
    let stats = run_stats(&program, "main(A,B)", &QueryOptions::parallel(2));
    let total: u64 = stats.predicate_profile.iter().map(|(_, c)| c).sum();
    assert_eq!(total, stats.instructions);
    assert!(profiled(&stats, "app/3") > 0);
}

#[test]
fn scheduler_telemetry_is_coherent() {
    let program = format!("{NREV}\nmain(A,B) :- nrev([1,2,3,4,5],A) & nrev([6,7,8,9],B).");
    let stats = run_stats(&program, "main(A,B)", &QueryOptions::parallel(2));
    for w in &stats.workers {
        // A scan that found a goal is a subset of the scans attempted.
        assert!(
            w.steal_attempts >= w.goals_stolen,
            "attempts {} < steals {}",
            w.steal_attempts,
            w.goals_stolen
        );
        // Strict interleaved backend: the relaxed idle ladder never runs.
        assert_eq!(w.backoff_yields, 0);
        assert_eq!(w.backoff_parks, 0);
        assert_eq!(w.park_micros, 0);
    }
    // The driver observed at least one batch boundary on the worker that
    // ran the query, and the final batch parks (query finished).
    let exits: u64 = stats.workers.iter().map(|w| w.batch_exits_budget + w.batch_exits_park).sum();
    assert!(exits > 0);
    let parks: u64 = stats.workers.iter().map(|w| w.batch_exits_park).sum();
    assert!(parks > 0);
}
