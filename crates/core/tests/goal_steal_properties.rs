//! Property tests for goal stealing: stolen goals — including goals that
//! backtrack internally or fail outright — must leave the thief's and the
//! victim's Stack Sets structurally consistent, and parallel answers must
//! match sequential ones.
//!
//! The tests drive the engine round-by-round through the scheduler SPI so
//! [`Engine::check_consistency`] can run *between rounds*, not just at the
//! end: a steal that corrupts a Stack Set is caught in the round where it
//! happens, even if the query would still finish.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};
use rapwam::{Engine, EngineConfig, MemoryConfig, Outcome, SchedulerKind};

/// A program whose parallel goals backtrack through `pick/2` alternatives
/// before succeeding, and whose parallel call fails outright when no list
/// element exceeds the threshold (forcing the failed-Parcall recovery path
/// and backtracking into `try/3`'s second clause).
const PROGRAM: &str = "\
    pick(X, [X|_]).\n\
    pick(X, [_|T]) :- pick(X, T).\n\
    good(X, L, K) :- pick(X, L), X > K.\n\
    both(A, B, L, K) :- (ground(L), ground(K) | good(A, L, K) & good(B, L, K)).\n\
    try(L, K, pair(A, B)) :- both(A, B, L, K).\n\
    try(_, _, none).";

fn render_list(items: &[i64]) -> String {
    let rendered: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", rendered.join(","))
}

/// Run the query with consistency checks after every scheduling round,
/// returning the rendered answer.
fn run_checked(list: &[i64], k: i64, workers: usize) -> String {
    let mut session = Session::new(PROGRAM).expect("program parses");
    let query = format!("try({}, {k}, R)", render_list(list));
    let compiled = session.compile(&query, true).expect("query compiles");
    let config =
        EngineConfig { num_workers: workers, memory: MemoryConfig::small(), ..EngineConfig::default() };
    let mut engine = Engine::new(&compiled, config);
    let n = engine.num_workers();
    let mut rounds = 0u64;
    while engine.finished().is_none() {
        engine.begin_round();
        let mut progress = false;
        for w in 0..n {
            progress |= engine.step_slot(w).expect("step");
        }
        engine.end_round(progress).expect("round");
        engine.drain_steals();
        engine
            .check_consistency()
            .unwrap_or_else(|e| panic!("inconsistent after round {rounds} ({workers} workers): {e}"));
        rounds += 1;
        assert!(rounds < 1_000_000, "query did not terminate");
    }
    let result = engine.into_result(session.symbols()).expect("result extraction");
    match &result.outcome {
        Outcome::Success(_) => session.render(result.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

/// The sequential (WAM) reference answer.
fn run_sequential(list: &[i64], k: i64) -> String {
    let mut session = Session::new(PROGRAM).expect("program parses");
    let query = format!("try({}, {k}, R)", render_list(list));
    let r = session.run(&query, &QueryOptions::sequential()).expect("sequential run");
    match &r.outcome {
        Outcome::Success(_) => session.render(r.outcome.binding("R").expect("R bound")),
        Outcome::Failure => "failure".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn stolen_goals_leave_stack_sets_consistent(
        list in prop::collection::vec(-20i64..20, 1..8),
        k in -20i64..20,
        workers in 2usize..6,
    ) {
        let par = run_checked(&list, k, workers);
        let seq = run_sequential(&list, k);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn both_schedulers_agree_under_goal_failure(
        list in prop::collection::vec(-20i64..20, 1..8),
        k in -20i64..20,
        workers in 2usize..6,
    ) {
        let query = format!("try({}, {k}, R)", render_list(&list));
        let render = |scheduler: SchedulerKind| {
            let mut session = Session::new(PROGRAM).expect("program parses");
            let opts = QueryOptions::parallel(workers).with_scheduler(scheduler);
            let r = session.run(&query, &opts).expect("run");
            match &r.outcome {
                Outcome::Success(_) => session.render(r.outcome.binding("R").expect("R bound")),
                Outcome::Failure => "failure".to_string(),
            }
        };
        prop_assert_eq!(render(SchedulerKind::Interleaved), render(SchedulerKind::Threaded));
    }
}

/// Deterministic companion: with enough parallel work the run must actually
/// steal goals, backtrack inside stolen goals, and still stay consistent.
#[test]
fn steals_actually_happen_and_stay_consistent() {
    let mut session = Session::new(PROGRAM).expect("program parses");
    let compiled = session.compile("try([1,5,2,9,3,7], 4, R)", true).expect("compiles");
    let config = EngineConfig { num_workers: 4, memory: MemoryConfig::small(), ..EngineConfig::default() };
    let mut engine = Engine::new(&compiled, config);
    let mut steals = 0usize;
    while engine.finished().is_none() {
        engine.begin_round();
        let mut progress = false;
        for w in 0..4 {
            progress |= engine.step_slot(w).expect("step");
        }
        engine.end_round(progress).expect("round");
        steals += engine.drain_steals().len();
        engine.check_consistency().expect("consistent between rounds");
    }
    assert!(steals > 0, "no goal was ever stolen");
    let result = engine.into_result(session.symbols()).expect("result");
    assert_eq!(session.render(result.outcome.binding("R").expect("R")), "pair(5,5)");
}
