//! Property-based tests of the engine's unification and its parallel
//! execution: randomly generated ground terms unify with themselves, fail
//! against distinct terms, and parallel execution of independent goals
//! always produces the same bindings as sequential execution.

use proptest::prelude::*;
use rapwam::session::{QueryOptions, Session};
use rapwam::Outcome;

/// Generate the text of a random ground term over a small safe alphabet.
fn arb_ground_term() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "nil"]).prop_map(|s| s.to_string()),
        (-50i64..50).prop_map(|n| n.to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (prop::sample::select(vec!["f", "g", "pair"]), prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| format!("{f}({})", args.join(","))),
            prop::collection::vec(inner, 0..3).prop_map(|items| format!("[{}]", items.join(","))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_ground_term_unifies_with_itself(t in arb_ground_term()) {
        let mut s = Session::new("eq(X, X).").unwrap();
        let r = s.run(&format!("eq({t}, {t})"), &QueryOptions::sequential()).unwrap();
        prop_assert!(r.outcome.is_success());
    }

    #[test]
    fn unification_is_symmetric(a in arb_ground_term(), b in arb_ground_term()) {
        let mut s = Session::new("eq(X, X).").unwrap();
        let ab = s.run(&format!("eq({a}, {b})"), &QueryOptions::sequential()).unwrap();
        let ba = s.run(&format!("eq({b}, {a})"), &QueryOptions::sequential()).unwrap();
        prop_assert_eq!(ab.outcome.is_success(), ba.outcome.is_success());
        // And unification succeeds exactly when the two texts denote the
        // same term.
        prop_assert_eq!(ab.outcome.is_success(), a == b);
    }

    #[test]
    fn binding_a_variable_reproduces_the_term(t in arb_ground_term()) {
        let mut s = Session::new("eq(X, X).").unwrap();
        let r = s.run(&format!("eq(R, {t})"), &QueryOptions::sequential()).unwrap();
        match &r.outcome {
            Outcome::Success(_) => {
                let bound = s.render(r.outcome.binding("R").unwrap());
                // Re-unifying the rendered answer with the original term must
                // succeed (the rendering may differ in whitespace only).
                let check = s.run(&format!("eq({bound}, {t})"), &QueryOptions::sequential()).unwrap();
                prop_assert!(check.outcome.is_success());
            }
            Outcome::Failure => prop_assert!(false, "binding a fresh variable cannot fail"),
        }
    }

    #[test]
    fn parallel_and_sequential_runs_agree(a in arb_ground_term(), b in arb_ground_term(), workers in 2usize..6) {
        let program = "\
            size(X, S) :- count(X, 0, S).\n\
            count([], A, A) :- !.\n\
            count([H|T], A, S) :- !, count(H, A, A1), count(T, A1, S).\n\
            count(X, A, S) :- atomic(X), !, S is A + 1.\n\
            count(_, A, A).\n\
            both(X, Y, SX, SY) :- ( ground(X), ground(Y) | size(X, SX) & size(Y, SY) ).";
        let mut s = Session::new(program).unwrap();
        let query = format!("both({a}, {b}, SA, SB)");
        let seq = s.run(&query, &QueryOptions::sequential()).unwrap();
        let par = s.run(&query, &QueryOptions::parallel(workers)).unwrap();
        prop_assert!(seq.outcome.is_success());
        prop_assert!(par.outcome.is_success());
        for var in ["SA", "SB"] {
            let a = s.render(seq.outcome.binding(var).unwrap());
            let b = s.render(par.outcome.binding(var).unwrap());
            prop_assert_eq!(a, b);
        }
    }
}
