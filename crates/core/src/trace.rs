//! Memory-reference trace records and per-area accounting.
//!
//! The paper's methodology marks every data reference with the issuing PE, a
//! tag describing the storage area and object, and a read/write flag; the
//! trace is then fed to the multiprocessor cache simulator.  [`MemRef`] is
//! exactly that record.

use crate::layout::{Area, Locality, ObjectKind};
use serde::{Deserialize, Serialize};

/// One data memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// Issuing processing element (worker id).
    pub pe: u8,
    /// Global word address.
    pub addr: u32,
    /// True for writes.
    pub write: bool,
    /// Storage area of the address.
    pub area: Area,
    /// Object kind (Table 1 row).
    pub object: ObjectKind,
    /// Locality tag (drives the hybrid cache protocol).
    pub locality: Locality,
    /// Whether the access is performed under a lock.
    pub locked: bool,
}

/// Read/write counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RwCount {
    pub reads: u64,
    pub writes: u64,
}

impl RwCount {
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
    fn add(&mut self, write: bool) {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }
}

/// Aggregate counters over a reference stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AreaStats {
    /// Total references.
    pub total: RwCount,
    /// Per storage area.
    pub per_area: [RwCount; 7],
    /// Per object kind (Table 1 order).
    pub per_object: [RwCount; 12],
    /// References to Global-tagged objects.
    pub global_refs: u64,
    /// References to Local-tagged objects.
    pub local_refs: u64,
    /// References performed under a lock.
    pub locked_refs: u64,
    /// Per-PE reference counts.
    pub per_pe: Vec<RwCount>,
}

impl AreaStats {
    pub fn new(num_workers: usize) -> Self {
        AreaStats { per_pe: vec![RwCount::default(); num_workers], ..Default::default() }
    }

    /// Record one reference.
    pub fn record(&mut self, r: &MemRef) {
        self.total.add(r.write);
        self.per_area[r.area.index()].add(r.write);
        self.per_object[r.object.index()].add(r.write);
        match r.locality {
            Locality::Global => self.global_refs += 1,
            Locality::Local => self.local_refs += 1,
        }
        if r.locked {
            self.locked_refs += 1;
        }
        if let Some(pe) = self.per_pe.get_mut(r.pe as usize) {
            pe.add(r.write);
        }
    }

    /// Fold a worker's batched fast-path counts ([`RefDelta`]) into these
    /// counters.  `counts[object.index()]` is `[reads, writes]`; area,
    /// locality and lock tags are derived from the object kind exactly as
    /// [`AreaStats::record`] would have derived them per reference, so the
    /// totals are identical to having recorded each access individually.
    pub fn bulk_record(&mut self, pe: u8, counts: &[[u64; 2]; 12]) {
        for (oi, &[reads, writes]) in counts.iter().enumerate() {
            let t = reads + writes;
            if t == 0 {
                continue;
            }
            let o = ObjectKind::ALL[oi];
            self.total.reads += reads;
            self.total.writes += writes;
            let ai = o.area().index();
            self.per_area[ai].reads += reads;
            self.per_area[ai].writes += writes;
            self.per_object[oi].reads += reads;
            self.per_object[oi].writes += writes;
            match o.locality() {
                Locality::Global => self.global_refs += t,
                Locality::Local => self.local_refs += t,
            }
            if o.locked() {
                self.locked_refs += t;
            }
            if let Some(pe) = self.per_pe.get_mut(pe as usize) {
                pe.reads += reads;
                pe.writes += writes;
            }
        }
    }

    /// Counters for one area.
    pub fn area(&self, a: Area) -> RwCount {
        self.per_area[a.index()]
    }

    /// Counters for one object kind.
    pub fn object(&self, o: ObjectKind) -> RwCount {
        self.per_object[o.index()]
    }

    /// Fraction of references that touch Global-tagged objects.
    pub fn global_fraction(&self) -> f64 {
        let t = self.total.total();
        if t == 0 {
            0.0
        } else {
            self.global_refs as f64 / t as f64
        }
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &AreaStats) {
        self.total.reads += other.total.reads;
        self.total.writes += other.total.writes;
        for i in 0..self.per_area.len() {
            self.per_area[i].reads += other.per_area[i].reads;
            self.per_area[i].writes += other.per_area[i].writes;
        }
        for i in 0..self.per_object.len() {
            self.per_object[i].reads += other.per_object[i].reads;
            self.per_object[i].writes += other.per_object[i].writes;
        }
        self.global_refs += other.global_refs;
        self.local_refs += other.local_refs;
        self.locked_refs += other.locked_refs;
        if self.per_pe.len() < other.per_pe.len() {
            self.per_pe.resize(other.per_pe.len(), RwCount::default());
        }
        for (i, pe) in other.per_pe.iter().enumerate() {
            self.per_pe[i].reads += pe.reads;
            self.per_pe[i].writes += pe.writes;
        }
    }
}

/// Worker-local batched reference accounting for the serial-mode fast path.
///
/// When tracing is off, the flattened executor counts own-arena accesses
/// here (one array index + add per access) instead of updating the arena's
/// [`AreaStats`] per reference, and folds the accumulated counts into the
/// owning arena via [`AreaStats::bulk_record`] at batch boundaries.  Only
/// *counts* are deferred — the access itself still happens at the same
/// point in the instruction stream — so flushing at any time yields the
/// same aggregate statistics as unbatched accounting.
#[derive(Debug, Clone, Default)]
pub struct RefDelta {
    /// `counts[object.index()]` = `[reads, writes]`.
    pub counts: [[u64; 2]; 12],
    /// Total deferred references (zero ⇒ nothing to flush).
    pub total: u64,
}

impl RefDelta {
    /// Count one access to `object` (a read unless `write`).
    #[inline(always)]
    pub fn count(&mut self, object: ObjectKind, write: bool) {
        self.counts[object.index()][write as usize] += 1;
        self.total += 1;
    }

    /// Reset to empty (after a flush).
    pub fn clear(&mut self) {
        *self = RefDelta::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pe: u8, write: bool, object: ObjectKind) -> MemRef {
        MemRef {
            pe,
            addr: 42,
            write,
            area: object.area(),
            object,
            locality: object.locality(),
            locked: object.locked(),
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut s = AreaStats::new(2);
        s.record(&sample(0, false, ObjectKind::HeapTerm));
        s.record(&sample(0, true, ObjectKind::HeapTerm));
        s.record(&sample(1, true, ObjectKind::GoalFrame));
        assert_eq!(s.total.total(), 3);
        assert_eq!(s.area(Area::Heap).total(), 2);
        assert_eq!(s.area(Area::GoalStack).writes, 1);
        assert_eq!(s.object(ObjectKind::HeapTerm).reads, 1);
        assert_eq!(s.locked_refs, 1);
        assert_eq!(s.per_pe[0].total(), 2);
        assert_eq!(s.per_pe[1].total(), 1);
    }

    #[test]
    fn global_fraction() {
        let mut s = AreaStats::new(1);
        s.record(&sample(0, false, ObjectKind::HeapTerm)); // global
        s.record(&sample(0, false, ObjectKind::TrailEntry)); // local
        assert!((s.global_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = AreaStats::new(1);
        a.record(&sample(0, false, ObjectKind::HeapTerm));
        let mut b = AreaStats::new(2);
        b.record(&sample(1, true, ObjectKind::Message));
        a.merge(&b);
        assert_eq!(a.total.total(), 2);
        assert_eq!(a.per_pe.len(), 2);
        assert_eq!(a.per_pe[1].writes, 1);
    }

    #[test]
    fn empty_stats_have_zero_global_fraction() {
        assert_eq!(AreaStats::new(1).global_fraction(), 0.0);
    }

    #[test]
    fn bulk_record_matches_per_reference_recording() {
        // Record a mixed access pattern one reference at a time...
        let mut direct = AreaStats::new(3);
        let mut delta = RefDelta::default();
        let pattern: &[(bool, ObjectKind, u64)] = &[
            (false, ObjectKind::HeapTerm, 7),
            (true, ObjectKind::HeapTerm, 3),
            (false, ObjectKind::EnvControl, 4),
            (true, ObjectKind::TrailEntry, 2),
            (false, ObjectKind::GoalFrame, 5),
            (true, ObjectKind::ParcallCount, 1),
        ];
        for &(write, object, times) in pattern {
            for _ in 0..times {
                direct.record(&sample(2, write, object));
                delta.count(object, write);
            }
        }
        // ...and in one bulk flush: every aggregate must be identical.
        let mut bulk = AreaStats::new(3);
        bulk.bulk_record(2, &delta.counts);
        assert_eq!(bulk.total, direct.total);
        assert_eq!(bulk.per_area, direct.per_area);
        assert_eq!(bulk.per_object, direct.per_object);
        assert_eq!(bulk.global_refs, direct.global_refs);
        assert_eq!(bulk.local_refs, direct.local_refs);
        assert_eq!(bulk.locked_refs, direct.locked_refs);
        assert_eq!(bulk.per_pe, direct.per_pe);
        delta.clear();
        assert_eq!(delta.total, 0);
    }
}
