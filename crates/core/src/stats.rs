//! Aggregate run statistics (the quantities reported in the paper's Table 2,
//! Figure 2 and the high-level results of Section 2).

use crate::layout::Area;
use crate::trace::AreaStats;
use serde::{Deserialize, Serialize};

/// Per-worker summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles the worker spent idle or waiting for a Parcall Frame.
    pub idle_cycles: u64,
    /// Maximum words used in (heap, local stack, control stack, trail, goal stack).
    pub max_usage: (u32, u32, u32, u32, u32),
    /// Goals this worker took from another worker's Goal Stack.
    pub goals_stolen: u64,
    /// Steal notifications this worker received as a victim.
    pub steal_notices: u64,
    /// `cancel_goal` notifications this worker received as the executor of
    /// an in-flight stolen goal.
    pub cancel_notices: u64,
    /// Stolen goals this worker aborted mid-flight on a `cancel_goal`
    /// request.
    pub goals_aborted: u64,
    /// Goals this worker started while parked in backward execution
    /// (waiting for a cancelled Parcall Frame to drain) — useful work done
    /// mid-cancellation.
    pub goals_while_cancelling: u64,
    /// Steal scans this worker ran while looking for work (each sweeps
    /// every other PE's Goal Stack once; `goals_stolen` counts successes).
    pub steal_attempts: u64,
    /// Idle-backoff transitions from spinning to yielding (relaxed
    /// backend's idle ladder; zero on the strict backends).
    pub backoff_yields: u64,
    /// Idle-backoff transitions from yielding to timed parking (relaxed
    /// backend).
    pub backoff_parks: u64,
    /// Microseconds spent in timed parks while idle (relaxed backend).
    pub park_micros: u64,
    /// Flat-dispatch batch exits caused by quantum/step-budget exhaustion.
    pub batch_exits_budget: u64,
    /// Flat-dispatch batch exits caused by leaving the running state
    /// (parked at a `pcall_wait`, went idle, cancelling, query finished).
    pub batch_exits_park: u64,
}

/// Statistics of one engine run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of workers (PEs) configured.
    pub num_workers: usize,
    /// Total abstract-machine instructions executed (all PEs).
    pub instructions: u64,
    /// Total data memory references (all PEs).
    pub data_refs: u64,
    /// Reads / writes split of `data_refs`.
    pub reads: u64,
    pub writes: u64,
    /// Scheduler rounds until the query finished; with a quantum of one
    /// instruction this approximates the parallel critical path and is the
    /// quantity used to compute speed-ups.
    pub elapsed_cycles: u64,
    /// Number of Parcall Frames allocated (parallel calls executed).
    pub parcalls: u64,
    /// Goal Frames executed through the Goal Stack machinery.
    pub parallel_goals: u64,
    /// Goal Frames executed by a PE other than the Parcall Frame's parent —
    /// the paper's "goals actually executed in parallel".
    pub goals_actually_parallel: u64,
    /// Number of logical inferences (user predicate calls) performed.
    pub inferences: u64,
    /// Failures that reached a parallel-goal boundary or crossed a Parcall
    /// Frame, counted once per originating failure (deferred-cancellation
    /// resumptions and cancel-induced aborts do not re-count).  Zero is a
    /// logical (schedule-free) property of the program: a reference run
    /// reporting zero guarantees no schedule can trigger backward
    /// execution, which is what the differential suite keys its
    /// counter-equality contract on.
    pub parcall_failures: u64,
    /// Parcall Frames cancelled by backward execution (a parent failing
    /// past an incomplete frame, or a failed goal dooming its siblings).
    pub parcalls_cancelled: u64,
    /// Goal Frames retracted un-executed during parcall cancellation.
    pub goals_cancelled: u64,
    /// `cancel_goal` requests posted for in-flight stolen goals.
    pub cancel_requests: u64,
    /// Detailed per-area / per-object reference counters.
    pub area_stats: AreaStats,
    /// Per-worker summaries.
    pub workers: Vec<WorkerStats>,
    /// Per-predicate instruction attribution from the flat dispatch path:
    /// `("name/arity", instructions)` sorted by decreasing count (ties by
    /// name).  Attribution is call-granular — instructions between two call
    /// boundaries are charged to the predicate entered at the first — and
    /// the query body itself appears as `$query`.  Empty under the classic
    /// dispatch path, which stays the uninstrumented MLIPS baseline.
    pub predicate_profile: Vec<(String, u64)>,
}

impl RunStats {
    /// Average data references per instruction (the paper quotes ~3 for
    /// large programs; small benchmarks are typically between 2 and 3).
    pub fn refs_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.data_refs as f64 / self.instructions as f64
        }
    }

    /// Average instructions per inference (the paper quotes ~15 for large
    /// programs).
    pub fn instructions_per_inference(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.instructions as f64 / self.inferences as f64
        }
    }

    /// References to a given area.
    pub fn refs_to(&self, area: Area) -> u64 {
        self.area_stats.area(area).total()
    }

    /// Fraction of busy (non-idle) cycles over all workers.
    pub fn utilisation(&self) -> f64 {
        let busy: u64 = self.workers.iter().map(|w| w.instructions).sum();
        let idle: u64 = self.workers.iter().map(|w| w.idle_cycles).sum();
        if busy + idle == 0 {
            0.0
        } else {
            busy as f64 / (busy + idle) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let stats = RunStats {
            instructions: 100,
            data_refs: 250,
            inferences: 10,
            workers: vec![
                WorkerStats { instructions: 60, idle_cycles: 20, ..Default::default() },
                WorkerStats { instructions: 40, idle_cycles: 80, ..Default::default() },
            ],
            ..Default::default()
        };
        assert!((stats.refs_per_instruction() - 2.5).abs() < 1e-12);
        assert!((stats.instructions_per_inference() - 10.0).abs() < 1e-12);
        assert!((stats.utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let stats = RunStats::default();
        assert_eq!(stats.refs_per_instruction(), 0.0);
        assert_eq!(stats.instructions_per_inference(), 0.0);
        assert_eq!(stats.utilisation(), 0.0);
    }
}
