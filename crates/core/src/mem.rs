//! The global data memory shared by all workers.
//!
//! Every read and write performed by the abstract machine goes through
//! [`Memory::read`] / [`Memory::write`], which
//!
//! * bounds-check the access against the area layout,
//! * update the aggregate reference counters ([`AreaStats`]), and
//! * optionally append a full [`MemRef`] record to the trace used by the
//!   cache simulator.
//!
//! Answer extraction and debugging use the `*_untraced` variants so that
//! inspecting a result does not perturb the measured reference counts.

use crate::cell::Cell;
use crate::error::{EngineError, EngineResult};
use crate::layout::{AddressMap, Area, MemoryConfig, ObjectKind};
use crate::trace::{AreaStats, MemRef};

/// The global word-addressed data memory.
#[derive(Debug)]
pub struct Memory {
    words: Vec<Cell>,
    pub map: AddressMap,
    /// Aggregate counters (always maintained).
    pub stats: AreaStats,
    /// Full reference trace (only when enabled).
    trace: Option<Vec<MemRef>>,
}

impl Memory {
    /// Allocate the data memory for `num_workers` Stack Sets.
    pub fn new(config: MemoryConfig, num_workers: usize, collect_trace: bool) -> Self {
        let map = AddressMap::new(config, num_workers);
        let total = map.total_words() as usize;
        Memory {
            words: vec![Cell::Empty; total],
            map,
            stats: AreaStats::new(num_workers),
            trace: if collect_trace { Some(Vec::new()) } else { None },
        }
    }

    /// Number of words in the memory.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the memory holds no words (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Take the collected trace out of the memory (leaves `None` behind).
    pub fn take_trace(&mut self) -> Option<Vec<MemRef>> {
        self.trace.take()
    }

    /// Whether a full trace is being collected.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn record(&mut self, pe: u8, addr: u32, write: bool, object: ObjectKind) {
        let area = object.area();
        debug_assert_eq!(self.map.area_of(addr), area, "object kind {object:?} used outside its area");
        let r =
            MemRef { pe, addr, write, area, object, locality: object.locality(), locked: object.locked() };
        self.stats.record(&r);
        if let Some(t) = &mut self.trace {
            t.push(r);
        }
    }

    /// Read one word, recording the reference.
    #[inline]
    pub fn read(&mut self, pe: u8, addr: u32, object: ObjectKind) -> Cell {
        self.record(pe, addr, false, object);
        self.words[addr as usize]
    }

    /// Write one word, recording the reference.
    #[inline]
    pub fn write(&mut self, pe: u8, addr: u32, value: Cell, object: ObjectKind) {
        self.record(pe, addr, true, object);
        self.words[addr as usize] = value;
    }

    /// Read one word without recording a reference (answer extraction,
    /// debugging, scheduler shadow checks).
    #[inline]
    pub fn read_untraced(&self, addr: u32) -> Cell {
        self.words[addr as usize]
    }

    /// Write one word without recording a reference (used only by tests).
    #[inline]
    pub fn write_untraced(&mut self, addr: u32, value: Cell) {
        self.words[addr as usize] = value;
    }

    /// Check that `addr` (the next free word) still lies inside `area` of
    /// `worker`; produce an out-of-memory error otherwise.
    pub fn check_top(&self, worker: usize, area: Area, addr: u32) -> EngineResult<()> {
        if addr >= self.map.area_end(worker, area) {
            Err(EngineError::OutOfMemory { worker, area })
        } else {
            Ok(())
        }
    }

    /// Base address of an area for a worker (convenience forward).
    pub fn area_base(&self, worker: usize, area: Area) -> u32 {
        self.map.area_base(worker, area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Locality;

    fn mem() -> Memory {
        Memory::new(MemoryConfig::small(), 2, true)
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        let base = m.area_base(0, Area::Heap);
        m.write(0, base, Cell::Int(7), ObjectKind::HeapTerm);
        assert_eq!(m.read(0, base, ObjectKind::HeapTerm), Cell::Int(7));
        assert_eq!(m.stats.total.reads, 1);
        assert_eq!(m.stats.total.writes, 1);
    }

    #[test]
    fn trace_records_every_reference_in_order() {
        let mut m = mem();
        let h = m.area_base(1, Area::Heap);
        let g = m.area_base(1, Area::GoalStack);
        m.write(1, h, Cell::Int(1), ObjectKind::HeapTerm);
        m.write(1, g, Cell::Uint(2), ObjectKind::GoalFrame);
        m.read(0, h, ObjectKind::HeapTerm);
        let t = m.take_trace().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].pe, 1);
        assert!(t[0].write);
        assert_eq!(t[1].area, Area::GoalStack);
        assert!(t[1].locked);
        assert_eq!(t[2].pe, 0);
        assert!(!t[2].write);
        assert_eq!(t[2].locality, Locality::Global);
    }

    #[test]
    fn untraced_reads_do_not_count() {
        let mut m = mem();
        let base = m.area_base(0, Area::Heap);
        m.write_untraced(base, Cell::Int(3));
        assert_eq!(m.read_untraced(base), Cell::Int(3));
        assert_eq!(m.stats.total.total(), 0);
        assert_eq!(m.take_trace().unwrap().len(), 0);
    }

    #[test]
    fn check_top_detects_overflow() {
        let m = mem();
        let end = m.map.area_end(0, Area::Trail);
        assert!(m.check_top(0, Area::Trail, end - 1).is_ok());
        assert_eq!(
            m.check_top(0, Area::Trail, end),
            Err(EngineError::OutOfMemory { worker: 0, area: Area::Trail })
        );
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut m = Memory::new(MemoryConfig::small(), 1, false);
        let base = m.area_base(0, Area::Heap);
        m.write(0, base, Cell::Int(1), ObjectKind::HeapTerm);
        assert!(!m.tracing());
        assert!(m.take_trace().is_none());
        assert_eq!(m.stats.total.writes, 1);
    }
}
