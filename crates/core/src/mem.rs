//! The data memory: one Stack-Set arena per PE plus a small shared region.
//!
//! Every read and write performed by the abstract machine goes through
//! [`Memory::read`] / [`Memory::write`], which
//!
//! * bounds-check the access against the area layout,
//! * route the access to the [`StackSetArena`] that owns the address,
//! * update that arena's reference counters ([`AreaStats`]), and
//! * optionally append a full [`MemRef`] record to the arena's trace buffer.
//!
//! Sharding the storage per PE mirrors the paper's architecture: each PE's
//! Stack Set is physically its own allocation, so an execution backend can
//! hand a whole arena to an OS thread.  Global word addresses remain stable —
//! the [`AddressMap`] translates them to an (arena, offset) pair — and a
//! deterministic merge (every reference carries a global sequence number)
//! reproduces the single interleaved trace the cache simulator consumes,
//! byte-for-byte.
//!
//! # Concurrency
//!
//! Each arena sits behind its own mutex and the sequence counter is atomic,
//! so the memory is shared-state safe: any number of OS threads may access
//! it concurrently, and an access is one short critical section on the
//! *owning* arena's lock.  This models the paper's shared-memory machine
//! directly — a PE reaches into another PE's Stack Set only for the Global
//! object kinds of Table 1, so in steady state every lock is uncontended and
//! almost all traffic stays on the accessing thread's own arena.  Under the
//! strict (token-ring or interleaved) backends only one thread touches the
//! memory at a time and the recorded order is exactly the reference order;
//! under the relaxed backend the per-reference order is whatever the race
//! produced (the sequence numbers still give a total order for the merge).
//!
//! Read-modify-write sequences that must be atomic under concurrency (the
//! Parcall Frame scheduling/completion counters) use [`Memory::rmw_uint`],
//! which holds the owning arena's lock across the read and the write while
//! recording exactly the same two references the split read/write pair
//! would have recorded.
//!
//! Answer extraction and debugging use [`Memory::read_untraced`] so that
//! inspecting a result does not perturb the measured reference counts.  The
//! shared region above the Stack Sets holds coordination state (the query
//! board) and is likewise accessed only through untraced accessors.

use crate::cell::Cell;
use crate::error::{EngineError, EngineResult};
use crate::layout::{AddressMap, Area, MemoryConfig, ObjectKind, SHARED_REGION_WORDS};
use crate::trace::{AreaStats, MemRef, RefDelta};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One reference record tagged with its position in the global interleaving
/// order, so per-arena trace buffers can be merged deterministically.
#[derive(Debug, Clone, Copy)]
struct SeqRef {
    seq: u64,
    r: MemRef,
}

/// The storage of one PE's Stack Set: its words, its reference counters and
/// (optionally) its share of the reference trace.
#[derive(Debug)]
pub struct StackSetArena {
    /// Global address of the arena's first word.
    base: u32,
    words: Vec<Cell>,
    /// Reference counters for accesses landing in this arena (indexed by
    /// issuing PE in `stats.per_pe`, which may differ from the owner).
    stats: AreaStats,
    /// This arena's slice of the reference trace (when enabled), in issue
    /// order and tagged with global sequence numbers.
    trace: Option<Vec<SeqRef>>,
    /// One past the highest offset ever written; [`Memory::reset`] only has
    /// to clear this prefix, so recycling a warm arena costs proportional to
    /// what the previous run used, not the arena's capacity.
    touched: usize,
}

impl StackSetArena {
    fn new(base: u32, words: u32, num_workers: usize, collect_trace: bool) -> Self {
        StackSetArena {
            base,
            words: vec![Cell::Empty; words as usize],
            stats: AreaStats::new(num_workers),
            trace: if collect_trace { Some(Vec::new()) } else { None },
            touched: 0,
        }
    }

    /// Record one reference in this arena's counters (and trace buffer).
    fn record(&mut self, seq: &AtomicU64, pe: u8, addr: u32, write: bool, object: ObjectKind) -> usize {
        let r = MemRef {
            pe,
            addr,
            write,
            area: object.area(),
            object,
            locality: object.locality(),
            locked: object.locked(),
        };
        self.stats.record(&r);
        // The global sequence counter only orders trace records; skipping it
        // when tracing is off keeps the hot path free of a shared cache line
        // that every thread of the relaxed backend would otherwise fight over.
        if let Some(t) = &mut self.trace {
            t.push(SeqRef { seq: seq.fetch_add(1, Ordering::Relaxed), r });
        }
        (addr - self.base) as usize
    }
}

/// One arena plus the lock that guards it when the memory is shared.
///
/// The arena lives in an [`UnsafeCell`] rather than inside the mutex so a
/// backend that serialises memory access *by construction* (interleaved
/// round-robin, or the token ring of the strict threaded scheduler) can
/// reach it without an atomic operation per reference — the lock is only
/// taken when [`Memory::serial`] is off.
#[derive(Debug)]
struct ArenaSlot {
    cell: UnsafeCell<StackSetArena>,
    lock: Mutex<()>,
}

// SAFETY: the arena behind `cell` is only accessed through
// `Memory::with_arena`, which either holds `lock` for the duration of the
// access or runs in serial mode, where the execution backend guarantees at
// most one thread touches the memory at a time (with the backend's
// channel/join synchronisation providing the happens-before edges between
// consecutive accessors).
unsafe impl Sync for ArenaSlot {}

impl ArenaSlot {
    fn new(arena: StackSetArena) -> Self {
        ArenaSlot { cell: UnsafeCell::new(arena), lock: Mutex::new(()) }
    }
}

/// The word-addressed data memory, sharded into one lockable arena per PE.
///
/// The public address space is unchanged from the flat layout: word `addr`
/// belongs to arena `map.owner(addr)` at offset `addr - arena.base`, and the
/// shared region sits above the last Stack Set.
#[derive(Debug)]
pub struct Memory {
    arenas: Vec<ArenaSlot>,
    /// The shared coordination region (query board); untraced by design.
    shared: Mutex<Vec<Cell>>,
    pub map: AddressMap,
    /// Next global sequence number (total references recorded so far).
    seq: AtomicU64,
    collect_trace: bool,
    /// When set, arena accesses skip the per-arena lock entirely.  Sound
    /// only while the execution backend serialises every memory access (see
    /// [`Memory::set_serial`]); the default is the always-locked shared mode.
    serial: bool,
}

impl Memory {
    /// Allocate the data memory for `num_workers` Stack Sets.
    pub fn new(config: MemoryConfig, num_workers: usize, collect_trace: bool) -> Self {
        let map = AddressMap::new(config, num_workers);
        let set_words = config.stack_set_words();
        let arenas = (0..num_workers)
            .map(|w| {
                ArenaSlot::new(StackSetArena::new(
                    w as u32 * set_words,
                    set_words,
                    num_workers,
                    collect_trace,
                ))
            })
            .collect();
        Memory {
            arenas,
            shared: Mutex::new(vec![Cell::Empty; SHARED_REGION_WORDS as usize]),
            map,
            seq: AtomicU64::new(0),
            collect_trace,
            serial: false,
        }
    }

    /// Switch the memory between serial (lock-free) and shared (per-arena
    /// locked) access.
    ///
    /// # Soundness contract
    ///
    /// Serial mode may only be enabled while the execution backend
    /// guarantees that at most one thread performs memory accesses at any
    /// moment, with a happens-before edge between consecutive accessors.
    /// The interleaved scheduler (single-threaded by construction) and the
    /// strict threaded scheduler (its token channel's send/recv pair orders
    /// the handoff) both qualify; the relaxed backend, where workers run
    /// free, does not and must keep the locks.  The classic dispatch path
    /// also keeps the locks so it prices the pre-flattening cost model.
    pub fn set_serial(&mut self, serial: bool) {
        self.serial = serial;
    }

    /// Whether arena accesses currently bypass the per-arena locks.
    pub fn serial(&self) -> bool {
        self.serial
    }

    /// Whether the batched-accounting fast path is available: serial mode
    /// (no locks to take) *and* tracing off (no per-reference record to
    /// append, and no sequence number to claim).  When this is true, the
    /// executor may serve own-arena accesses through the private
    /// `serial_read` / `serial_write` helpers and count them in the
    /// worker's [`RefDelta`] instead of the arena's [`AreaStats`]; the
    /// flush ([`Memory::flush_delta`]) restores identical aggregate counts.
    #[inline(always)]
    pub fn fast(&self) -> bool {
        self.serial && !self.collect_trace
    }

    /// Read one word of arena `idx` at `offset` without recording — the
    /// caller accounts the reference in a [`RefDelta`].  Only callable in
    /// serial mode (checked in debug builds); same soundness argument as
    /// the serial branch of `with_arena`.
    #[inline(always)]
    pub(crate) fn serial_read(&self, idx: usize, offset: u32) -> Cell {
        debug_assert!(self.serial);
        // SAFETY: serial mode promises external serialisation of all
        // accessors (see `set_serial`), so this shared access cannot alias
        // a live exclusive borrow.
        unsafe { (&(*self.arenas[idx].cell.get()).words)[offset as usize] }
    }

    /// Write one word of arena `idx` at `offset` without recording — the
    /// caller accounts the reference in a [`RefDelta`].  Maintains the
    /// arena's `touched` high-water mark exactly like [`Memory::write`].
    #[inline(always)]
    pub(crate) fn serial_write(&self, idx: usize, offset: u32, value: Cell) {
        debug_assert!(self.serial);
        // SAFETY: as in `serial_read`; serial mode makes this the only
        // live borrow.
        let a = unsafe { &mut *self.arenas[idx].cell.get() };
        a.words[offset as usize] = value;
        a.touched = a.touched.max(offset as usize + 1);
    }

    /// Fold a worker's batched fast-path reference counts into its own
    /// arena's counters and clear the delta.  Called at batch boundaries
    /// and before counters are read out, so aggregate statistics are
    /// indistinguishable from unbatched accounting.  (Fast-path accesses
    /// are own-arena by construction, so `own` — the worker id — is always
    /// the arena every deferred count belongs to.)
    pub fn flush_delta(&self, own: usize, delta: &mut RefDelta) {
        if delta.total == 0 {
            return;
        }
        self.with_arena(own, |a| a.stats.bulk_record(own as u8, &delta.counts));
        delta.clear();
    }

    /// Run `f` with exclusive access to arena `idx`, taking its lock unless
    /// the memory is in serial mode.
    #[inline(always)]
    fn with_arena<R>(&self, idx: usize, f: impl FnOnce(&mut StackSetArena) -> R) -> R {
        let slot = &self.arenas[idx];
        if self.serial {
            // SAFETY: serial mode promises external serialisation of all
            // accessors (see `set_serial`), so the exclusive borrow cannot
            // alias another live borrow.
            f(unsafe { &mut *slot.cell.get() })
        } else {
            let _guard = slot.lock.lock().unwrap();
            // SAFETY: `lock` is held for the whole access.
            f(unsafe { &mut *slot.cell.get() })
        }
    }

    /// Total number of words in the memory: every Stack Set arena plus the
    /// shared region.
    pub fn len(&self) -> usize {
        (0..self.arenas.len()).map(|i| self.with_arena(i, |a| a.words.len())).sum::<usize>()
            + self.shared.lock().unwrap().len()
    }

    /// True if the memory holds no words.  Since the shared region always
    /// exists this is never the case in practice.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of Stack Set arenas (one per PE).
    pub fn num_arenas(&self) -> usize {
        self.arenas.len()
    }

    /// A snapshot of one arena's reference counters.
    pub fn arena_stats(&self, worker: usize) -> AreaStats {
        self.with_arena(worker, |a| a.stats.clone())
    }

    /// Number of trace records currently buffered in one arena.
    pub fn trace_len(&self, worker: usize) -> usize {
        self.with_arena(worker, |a| a.trace.as_ref().map_or(0, Vec::len))
    }

    /// Merge every arena's counters into one aggregate view (what a flat
    /// memory would have counted).
    pub fn merged_stats(&self) -> AreaStats {
        let mut total = AreaStats::new(self.map.num_workers);
        for i in 0..self.arenas.len() {
            self.with_arena(i, |a| total.merge(&a.stats));
        }
        total
    }

    /// Take the collected trace out of the memory, merging the per-arena
    /// buffers back into the global interleaving order (leaves the buffers
    /// empty behind).  Returns `None` when tracing is disabled.
    ///
    /// Every recorded reference carries the value of a global sequence
    /// counter, so the merge is a deterministic sort that reproduces the
    /// exact order in which the references were issued — under a strict
    /// backend the merged trace is byte-for-byte the trace a single flat
    /// buffer would have collected; under the relaxed backend it is the
    /// total order the race actually produced.
    pub fn take_trace(&mut self) -> Option<Vec<MemRef>> {
        if !self.collect_trace {
            return None;
        }
        let mut all: Vec<SeqRef> = Vec::with_capacity(*self.seq.get_mut() as usize);
        for slot in &mut self.arenas {
            let a = slot.cell.get_mut();
            if let Some(t) = &mut a.trace {
                all.append(t);
            }
            a.trace = None;
        }
        self.collect_trace = false;
        all.sort_unstable_by_key(|s| s.seq);
        Some(all.into_iter().map(|s| s.r).collect())
    }

    /// Whether a full trace is being collected.
    pub fn tracing(&self) -> bool {
        self.collect_trace
    }

    /// Read one word, recording the reference in the owning arena.
    #[inline]
    pub fn read(&self, pe: u8, addr: u32, object: ObjectKind) -> Cell {
        debug_assert_eq!(
            self.map.area_of(addr),
            object.area(),
            "object kind {object:?} used outside its area"
        );
        self.with_arena(self.map.owner(addr), |arena| {
            let offset = arena.record(&self.seq, pe, addr, false, object);
            arena.words[offset]
        })
    }

    /// Write one word, recording the reference in the owning arena.
    #[inline]
    pub fn write(&self, pe: u8, addr: u32, value: Cell, object: ObjectKind) {
        debug_assert_eq!(
            self.map.area_of(addr),
            object.area(),
            "object kind {object:?} used outside its area"
        );
        self.with_arena(self.map.owner(addr), |arena| {
            let offset = arena.record(&self.seq, pe, addr, true, object);
            arena.words[offset] = value;
            arena.touched = arena.touched.max(offset + 1);
        });
    }

    /// Return the memory to its pristine post-allocation state without
    /// freeing the arenas: every word written since allocation (or the last
    /// reset) is cleared, the reference counters and trace buffers are
    /// reborn, and the global sequence counter restarts.  The warm-engine
    /// path of the serving layer goes through here.
    pub fn reset(&mut self, collect_trace: bool) {
        for slot in &mut self.arenas {
            let a = slot.cell.get_mut();
            a.words[..a.touched].fill(Cell::Empty);
            a.touched = 0;
            a.stats = AreaStats::new(self.map.num_workers);
            a.trace = if collect_trace { Some(Vec::new()) } else { None };
        }
        self.shared.get_mut().unwrap().fill(Cell::Empty);
        *self.seq.get_mut() = 0;
        self.collect_trace = collect_trace;
    }

    /// Atomically read the unsigned word at `addr`, apply `f`, and write the
    /// result back, holding the owning arena's lock across both accesses.
    ///
    /// Records exactly the read reference followed by the write reference —
    /// the same traffic as a split [`Memory::read`]/[`Memory::write`] pair —
    /// so strict-mode traces are unchanged, while concurrent updates of the
    /// same counter word (Parcall Frame scheduling/completion counts under
    /// the relaxed backend) can no longer lose increments.  Returns the value
    /// read.
    pub fn rmw_uint(
        &self,
        pe: u8,
        addr: u32,
        object: ObjectKind,
        f: impl FnOnce(u32) -> u32,
    ) -> EngineResult<u32> {
        debug_assert_eq!(
            self.map.area_of(addr),
            object.area(),
            "object kind {object:?} used outside its area"
        );
        self.with_arena(self.map.owner(addr), |arena| {
            let offset = arena.record(&self.seq, pe, addr, false, object);
            let old = match arena.words[offset] {
                Cell::Uint(v) => v,
                other => {
                    return Err(EngineError::Internal(format!("rmw on non-uint word at {addr}: {other:?}")))
                }
            };
            let offset = arena.record(&self.seq, pe, addr, true, object);
            arena.words[offset] = Cell::Uint(f(old));
            arena.touched = arena.touched.max(offset + 1);
            Ok(old)
        })
    }

    /// Read one word without recording a reference (answer extraction,
    /// debugging, scheduler shadow checks).
    #[inline]
    pub fn read_untraced(&self, addr: u32) -> Cell {
        self.with_arena(self.map.owner(addr), |arena| arena.words[(addr - arena.base) as usize])
    }

    /// Read a word of the shared region (query board).  Untraced: the shared
    /// region is host coordination state, not part of the paper's Table 1
    /// storage model.
    #[inline]
    pub fn shared_read(&self, slot: u32) -> Cell {
        self.shared.lock().unwrap()[slot as usize]
    }

    /// Write a word of the shared region (query board).  Untraced.
    #[inline]
    pub fn shared_write(&self, slot: u32, value: Cell) {
        self.shared.lock().unwrap()[slot as usize] = value;
    }

    /// Check that `addr` (the next free word) still lies inside `area` of
    /// `worker`; produce an out-of-memory error otherwise.
    pub fn check_top(&self, worker: usize, area: Area, addr: u32) -> EngineResult<()> {
        if addr >= self.map.area_end(worker, area) {
            Err(EngineError::OutOfMemory { worker, area })
        } else {
            Ok(())
        }
    }

    /// Base address of an area for a worker (convenience forward).
    pub fn area_base(&self, worker: usize, area: Area) -> u32 {
        self.map.area_base(worker, area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Locality;

    fn mem() -> Memory {
        Memory::new(MemoryConfig::small(), 2, true)
    }

    #[test]
    fn read_write_round_trip() {
        let m = mem();
        let base = m.area_base(0, Area::Heap);
        m.write(0, base, Cell::Int(7), ObjectKind::HeapTerm);
        assert_eq!(m.read(0, base, ObjectKind::HeapTerm), Cell::Int(7));
        let stats = m.merged_stats();
        assert_eq!(stats.total.reads, 1);
        assert_eq!(stats.total.writes, 1);
    }

    #[test]
    fn trace_records_every_reference_in_order() {
        let mut m = mem();
        let h = m.area_base(1, Area::Heap);
        let g = m.area_base(1, Area::GoalStack);
        m.write(1, h, Cell::Int(1), ObjectKind::HeapTerm);
        m.write(1, g, Cell::Uint(2), ObjectKind::GoalFrame);
        m.read(0, h, ObjectKind::HeapTerm);
        let t = m.take_trace().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].pe, 1);
        assert!(t[0].write);
        assert_eq!(t[1].area, Area::GoalStack);
        assert!(t[1].locked);
        assert_eq!(t[2].pe, 0);
        assert!(!t[2].write);
        assert_eq!(t[2].locality, Locality::Global);
    }

    #[test]
    fn merged_trace_interleaves_arenas_in_issue_order() {
        let mut m = mem();
        let h0 = m.area_base(0, Area::Heap);
        let h1 = m.area_base(1, Area::Heap);
        // Alternate writes between the two arenas; the merged trace must
        // come back in exactly this order even though the accesses were
        // buffered in two different arenas.
        for i in 0..4 {
            m.write(0, h0 + i, Cell::Int(i as i64), ObjectKind::HeapTerm);
            m.write(1, h1 + i, Cell::Int(i as i64), ObjectKind::HeapTerm);
        }
        assert_eq!(m.trace_len(0), 4);
        assert_eq!(m.trace_len(1), 4);
        let t = m.take_trace().unwrap();
        let addrs: Vec<u32> = t.iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![h0, h1, h0 + 1, h1 + 1, h0 + 2, h1 + 2, h0 + 3, h1 + 3]);
    }

    #[test]
    fn cross_pe_accesses_land_in_the_owning_arena() {
        let m = mem();
        let h1 = m.area_base(1, Area::Heap);
        // PE 0 writes into PE 1's heap: the reference is accounted to
        // arena 1 (the owner), attributed to issuing PE 0.
        m.write(0, h1, Cell::Int(9), ObjectKind::HeapTerm);
        assert_eq!(m.arena_stats(0).total.total(), 0);
        assert_eq!(m.arena_stats(1).total.writes, 1);
        assert_eq!(m.arena_stats(1).per_pe[0].writes, 1);
        assert_eq!(m.arena_stats(1).per_pe[1].total(), 0);
    }

    #[test]
    fn untraced_reads_do_not_count() {
        let mut m = mem();
        let base = m.area_base(0, Area::Heap);
        m.write(0, base, Cell::Int(3), ObjectKind::HeapTerm);
        assert_eq!(m.read_untraced(base), Cell::Int(3));
        assert_eq!(m.merged_stats().total.total(), 1, "only the traced write counts");
        assert_eq!(m.take_trace().unwrap().len(), 1);
    }

    #[test]
    fn rmw_records_a_read_then_a_write() {
        let mut m = mem();
        let pf = m.area_base(0, Area::LocalStack);
        m.write(0, pf, Cell::Uint(3), ObjectKind::ParcallCount);
        let old = m.rmw_uint(1, pf, ObjectKind::ParcallCount, |v| v + 1).unwrap();
        assert_eq!(old, 3);
        assert_eq!(m.read_untraced(pf), Cell::Uint(4));
        let t = m.take_trace().unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t[1].write, "rmw records the read first");
        assert!(t[2].write, "then the write");
        assert_eq!(t[1].pe, 1);
        assert_eq!(t[2].addr, pf);
        // Counter-word corruption is an engine error, not a panic.
        m.write(0, pf, Cell::Int(-1), ObjectKind::ParcallCount);
        assert!(m.rmw_uint(0, pf, ObjectKind::ParcallCount, |v| v).is_err());
    }

    #[test]
    fn concurrent_rmw_never_loses_increments() {
        let m = Memory::new(MemoryConfig::small(), 2, false);
        let pf = m.area_base(0, Area::LocalStack);
        m.write(0, pf, Cell::Uint(0), ObjectKind::ParcallCount);
        std::thread::scope(|s| {
            for pe in 0..2u8 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.rmw_uint(pe, pf, ObjectKind::ParcallCount, |v| v + 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.read_untraced(pf), Cell::Uint(2000));
        assert_eq!(m.merged_stats().total.total(), 4001);
    }

    #[test]
    fn shared_region_round_trips_without_counting() {
        let mut m = mem();
        m.shared_write(0, Cell::Uint(42));
        assert_eq!(m.shared_read(0), Cell::Uint(42));
        assert_eq!(m.merged_stats().total.total(), 0);
        assert_eq!(m.take_trace().unwrap().len(), 0);
    }

    #[test]
    fn check_top_detects_overflow() {
        let m = mem();
        let end = m.map.area_end(0, Area::Trail);
        assert!(m.check_top(0, Area::Trail, end - 1).is_ok());
        assert_eq!(
            m.check_top(0, Area::Trail, end),
            Err(EngineError::OutOfMemory { worker: 0, area: Area::Trail })
        );
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut m = Memory::new(MemoryConfig::small(), 1, false);
        let base = m.area_base(0, Area::Heap);
        m.write(0, base, Cell::Int(1), ObjectKind::HeapTerm);
        assert!(!m.tracing());
        assert!(m.take_trace().is_none());
        assert_eq!(m.merged_stats().total.writes, 1);
    }

    #[test]
    fn reset_clears_touched_words_counters_and_trace() {
        let mut m = mem();
        let h0 = m.area_base(0, Area::Heap);
        let h1 = m.area_base(1, Area::Heap);
        m.write(0, h0 + 3, Cell::Int(9), ObjectKind::HeapTerm);
        m.write(1, h1, Cell::Int(7), ObjectKind::HeapTerm);
        m.shared_write(0, Cell::Uint(1));
        m.reset(true);
        assert_eq!(m.read_untraced(h0 + 3), Cell::Empty);
        assert_eq!(m.read_untraced(h1), Cell::Empty);
        assert_eq!(m.shared_read(0), Cell::Empty);
        assert_eq!(m.merged_stats().total.total(), 0);
        assert!(m.tracing());
        // A reset memory behaves exactly like a fresh one.
        m.write(0, h0, Cell::Int(1), ObjectKind::HeapTerm);
        let t = m.take_trace().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].addr, h0);
        // Reset can also disarm tracing for the next run.
        m.reset(false);
        assert!(!m.tracing());
        assert!(m.take_trace().is_none());
    }

    #[test]
    fn serial_mode_counts_and_traces_identically() {
        let mut locked = mem();
        let mut serial = mem();
        serial.set_serial(true);
        assert!(serial.serial() && !locked.serial());
        for m in [&locked, &serial] {
            let h0 = m.area_base(0, Area::Heap);
            let h1 = m.area_base(1, Area::Heap);
            m.write(0, h0, Cell::Int(5), ObjectKind::HeapTerm);
            m.write(1, h1, Cell::Int(6), ObjectKind::HeapTerm);
            assert_eq!(m.read(0, h1, ObjectKind::HeapTerm), Cell::Int(6));
            m.rmw_uint(0, m.area_base(0, Area::LocalStack), ObjectKind::ParcallCount, |v| v).unwrap_err();
        }
        let ls = locked.merged_stats();
        let ss = serial.merged_stats();
        assert_eq!(ls.total.reads, ss.total.reads);
        assert_eq!(ls.total.writes, ss.total.writes);
        let lt: Vec<_> = locked.take_trace().unwrap();
        let st: Vec<_> = serial.take_trace().unwrap();
        assert_eq!(lt.len(), st.len());
        for (a, b) in lt.iter().zip(st.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn fast_path_flush_counts_identically_to_recorded_accesses() {
        let slow = Memory::new(MemoryConfig::small(), 1, false);
        let mut fast = Memory::new(MemoryConfig::small(), 1, false);
        fast.set_serial(true);
        assert!(fast.fast());
        assert!(!slow.fast(), "locked mode must not advertise the fast path");
        // Same access pattern through both paths (arena 0's base is 0, so
        // global addresses double as offsets).
        let h = slow.area_base(0, Area::Heap);
        let t = slow.area_base(0, Area::Trail);
        slow.write(0, h, Cell::Int(1), ObjectKind::HeapTerm);
        assert_eq!(slow.read(0, h, ObjectKind::HeapTerm), Cell::Int(1));
        slow.write(0, t, Cell::Uint(7), ObjectKind::TrailEntry);
        let mut delta = RefDelta::default();
        fast.serial_write(0, h, Cell::Int(1));
        delta.count(ObjectKind::HeapTerm, true);
        assert_eq!(fast.serial_read(0, h), Cell::Int(1));
        delta.count(ObjectKind::HeapTerm, false);
        fast.serial_write(0, t, Cell::Uint(7));
        delta.count(ObjectKind::TrailEntry, true);
        // Before the flush nothing is visible; after it the aggregates match.
        assert_eq!(fast.merged_stats().total.total(), 0);
        fast.flush_delta(0, &mut delta);
        assert_eq!(delta.total, 0);
        let (fs, ss) = (fast.merged_stats(), slow.merged_stats());
        assert_eq!(fs.total, ss.total);
        assert_eq!(fs.per_area, ss.per_area);
        assert_eq!(fs.per_object, ss.per_object);
        assert_eq!(fs.global_refs, ss.global_refs);
        assert_eq!(fs.local_refs, ss.local_refs);
        assert_eq!(fs.per_pe, ss.per_pe);
        // The touched high-water mark is maintained, so reset still clears.
        fast.reset(false);
        assert_eq!(fast.serial_read(0, h), Cell::Empty);
    }

    #[test]
    fn reset_preserves_the_serial_flag() {
        let mut m = mem();
        m.set_serial(true);
        m.reset(true);
        assert!(m.serial());
        let h = m.area_base(0, Area::Heap);
        m.write(0, h, Cell::Int(2), ObjectKind::HeapTerm);
        assert_eq!(m.read(0, h, ObjectKind::HeapTerm), Cell::Int(2));
    }

    #[test]
    fn len_counts_every_arena_and_the_shared_region() {
        let m = mem();
        let expected = 2 * MemoryConfig::small().stack_set_words() as usize + SHARED_REGION_WORDS as usize;
        assert_eq!(m.len(), expected);
        assert!(!m.is_empty());
        assert_eq!(m.len() as u64, m.map.total_words());
    }
}
