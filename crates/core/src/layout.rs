//! Storage areas and the global address-space layout.
//!
//! The RAP-WAM is a collection of workers, each owning a *Stack Set* made of
//! a Heap, a Local (environment) stack, a Control stack (choice points and
//! Markers), a Trail, a unification PDL, a Goal Stack and a Message Buffer —
//! exactly the object/area inventory of Table 1 of the paper.  All areas of
//! all workers live in one global word-addressed space so that a reference
//! trace can be fed directly to the multiprocessor cache simulator.

use serde::{Deserialize, Serialize};

/// A storage area of a worker's Stack Set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Area {
    Heap,
    LocalStack,
    ControlStack,
    Trail,
    Pdl,
    GoalStack,
    MessageBuffer,
}

impl Area {
    /// All areas, in layout order.
    pub const ALL: [Area; 7] = [
        Area::Heap,
        Area::LocalStack,
        Area::ControlStack,
        Area::Trail,
        Area::Pdl,
        Area::GoalStack,
        Area::MessageBuffer,
    ];

    /// Stable index (used by statistics tables).
    pub fn index(self) -> usize {
        match self {
            Area::Heap => 0,
            Area::LocalStack => 1,
            Area::ControlStack => 2,
            Area::Trail => 3,
            Area::Pdl => 4,
            Area::GoalStack => 5,
            Area::MessageBuffer => 6,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Area::Heap => "heap",
            Area::LocalStack => "local stack",
            Area::ControlStack => "control stack",
            Area::Trail => "trail",
            Area::Pdl => "pdl",
            Area::GoalStack => "goal stack",
            Area::MessageBuffer => "message buffer",
        }
    }
}

/// The kind of object being referenced, following Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Environment control words (continuation environment / code pointer).
    EnvControl,
    /// Environment permanent-variable slots.
    EnvPermVar,
    /// Choice point words.
    ChoicePoint,
    /// Heap terms (structures, lists, variables, constants).
    HeapTerm,
    /// Trail entries.
    TrailEntry,
    /// PDL (unification stack) entries.
    PdlEntry,
    /// Parcall Frame, local portion (status, parent id, chaining).
    ParcallLocal,
    /// Parcall Frame, global portion (per-goal slots).
    ParcallGlobal,
    /// Parcall Frame counters (scheduling / completion counts) — locked.
    ParcallCount,
    /// Markers delimiting stack sections.
    Marker,
    /// Goal Frames on the Goal Stack — locked.
    GoalFrame,
    /// Messages in the Message Buffer — locked.
    Message,
}

impl ObjectKind {
    /// Locality classification from Table 1: is the object only ever touched
    /// by its owning PE (`Local`) or potentially shared (`Global`)?
    pub fn locality(self) -> Locality {
        match self {
            ObjectKind::EnvControl
            | ObjectKind::ChoicePoint
            | ObjectKind::TrailEntry
            | ObjectKind::PdlEntry
            | ObjectKind::ParcallLocal
            | ObjectKind::Marker => Locality::Local,
            ObjectKind::EnvPermVar
            | ObjectKind::HeapTerm
            | ObjectKind::ParcallGlobal
            | ObjectKind::ParcallCount
            | ObjectKind::GoalFrame
            | ObjectKind::Message => Locality::Global,
        }
    }

    /// Whether accesses to this object require a lock (Table 1).
    pub fn locked(self) -> bool {
        matches!(self, ObjectKind::ParcallCount | ObjectKind::GoalFrame | ObjectKind::Message)
    }

    /// Whether the object exists in the plain sequential WAM (Table 1).
    pub fn in_wam(self) -> bool {
        matches!(
            self,
            ObjectKind::EnvControl
                | ObjectKind::EnvPermVar
                | ObjectKind::ChoicePoint
                | ObjectKind::HeapTerm
                | ObjectKind::TrailEntry
                | ObjectKind::PdlEntry
        )
    }

    /// Human-readable name matching the paper's Table 1 rows.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::EnvControl => "Envts./control",
            ObjectKind::EnvPermVar => "Envts./P. Vars.",
            ObjectKind::ChoicePoint => "Choice points",
            ObjectKind::HeapTerm => "Heap",
            ObjectKind::TrailEntry => "Trail entries",
            ObjectKind::PdlEntry => "PDL entries",
            ObjectKind::ParcallLocal => "Parcall F./Local",
            ObjectKind::ParcallGlobal => "Parcall F./Global",
            ObjectKind::ParcallCount => "Parcall F./Counts",
            ObjectKind::Marker => "Markers",
            ObjectKind::GoalFrame => "Goal Frames",
            ObjectKind::Message => "Messages",
        }
    }

    /// Stable index into Table 1 order (the position of `self` in
    /// [`ObjectKind::ALL`]).  The discriminant *is* the table position, so
    /// statistics tables index in O(1) instead of scanning `ALL`.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All object kinds, in Table 1 order.
    pub const ALL: [ObjectKind; 12] = [
        ObjectKind::EnvControl,
        ObjectKind::EnvPermVar,
        ObjectKind::ChoicePoint,
        ObjectKind::HeapTerm,
        ObjectKind::TrailEntry,
        ObjectKind::PdlEntry,
        ObjectKind::ParcallLocal,
        ObjectKind::ParcallGlobal,
        ObjectKind::ParcallCount,
        ObjectKind::Marker,
        ObjectKind::GoalFrame,
        ObjectKind::Message,
    ];

    /// The storage area this object lives in (Table 1's "area" column).
    pub fn area(self) -> Area {
        match self {
            ObjectKind::EnvControl | ObjectKind::EnvPermVar => Area::LocalStack,
            ObjectKind::ChoicePoint | ObjectKind::Marker => Area::ControlStack,
            ObjectKind::HeapTerm => Area::Heap,
            ObjectKind::TrailEntry => Area::Trail,
            ObjectKind::PdlEntry => Area::Pdl,
            ObjectKind::ParcallLocal | ObjectKind::ParcallGlobal | ObjectKind::ParcallCount => {
                Area::LocalStack
            }
            ObjectKind::GoalFrame => Area::GoalStack,
            ObjectKind::Message => Area::MessageBuffer,
        }
    }
}

/// Sharing classification of a reference (Table 1's "locality" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Only the owning PE touches the object.
    Local,
    /// The object may be read or written by other PEs.
    Global,
}

/// Sizes (in words) of each area of one worker's Stack Set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    pub heap_words: u32,
    pub local_words: u32,
    pub control_words: u32,
    pub trail_words: u32,
    pub pdl_words: u32,
    pub goal_stack_words: u32,
    pub message_words: u32,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            heap_words: 1 << 20,
            local_words: 1 << 18,
            control_words: 1 << 18,
            trail_words: 1 << 16,
            pdl_words: 1 << 13,
            goal_stack_words: 1 << 13,
            message_words: 1 << 10,
        }
    }
}

impl MemoryConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        MemoryConfig {
            heap_words: 1 << 14,
            local_words: 1 << 12,
            control_words: 1 << 12,
            trail_words: 1 << 10,
            pdl_words: 1 << 8,
            goal_stack_words: 1 << 8,
            message_words: 1 << 6,
        }
    }

    /// Total words per worker Stack Set.
    pub fn stack_set_words(&self) -> u32 {
        self.heap_words
            + self.local_words
            + self.control_words
            + self.trail_words
            + self.pdl_words
            + self.goal_stack_words
            + self.message_words
    }

    /// Offset of an area within a Stack Set.
    pub fn area_offset(&self, area: Area) -> u32 {
        match area {
            Area::Heap => 0,
            Area::LocalStack => self.heap_words,
            Area::ControlStack => self.heap_words + self.local_words,
            Area::Trail => self.heap_words + self.local_words + self.control_words,
            Area::Pdl => self.heap_words + self.local_words + self.control_words + self.trail_words,
            Area::GoalStack => {
                self.heap_words + self.local_words + self.control_words + self.trail_words + self.pdl_words
            }
            Area::MessageBuffer => {
                self.heap_words
                    + self.local_words
                    + self.control_words
                    + self.trail_words
                    + self.pdl_words
                    + self.goal_stack_words
            }
        }
    }

    /// Size of an area in words.
    pub fn area_size(&self, area: Area) -> u32 {
        match area {
            Area::Heap => self.heap_words,
            Area::LocalStack => self.local_words,
            Area::ControlStack => self.control_words,
            Area::Trail => self.trail_words,
            Area::Pdl => self.pdl_words,
            Area::GoalStack => self.goal_stack_words,
            Area::MessageBuffer => self.message_words,
        }
    }
}

/// Words reserved for the shared region that sits above every Stack Set.
///
/// The shared region holds host-visible coordination state that belongs to
/// no PE in particular (the query board: finished flag, answering worker,
/// answer environment).  It is deliberately tiny and accessed only through
/// the untraced [`crate::mem::Memory::shared_read`] /
/// [`crate::mem::Memory::shared_write`] accessors, so it never perturbs the
/// paper's per-Stack-Set reference counts.
pub const SHARED_REGION_WORDS: u32 = 64;

/// Word offsets within the shared region ("query board").
pub mod board {
    /// Query status: 0 = running, 1 = succeeded, 2 = failed.
    pub const STATUS: u32 = 0;
    /// Worker id that produced the answer (valid when STATUS = 1).
    pub const ANSWER_PE: u32 = 1;
    /// Environment address holding the answer bindings (valid when STATUS = 1).
    pub const ANSWER_ENV: u32 = 2;

    pub const STATUS_RUNNING: u32 = 0;
    pub const STATUS_SUCCEEDED: u32 = 1;
    pub const STATUS_FAILED: u32 = 2;
}

/// Maps global word addresses to (worker, area) and back.
#[derive(Debug, Clone)]
pub struct AddressMap {
    pub config: MemoryConfig,
    pub num_workers: usize,
    /// Cached `config.stack_set_words()`: `owner`/`area_of` sit on the
    /// memory-access path, and recomputing the six-term sum per call costs
    /// more than the division it feeds.
    set_words: u32,
}

impl AddressMap {
    pub fn new(config: MemoryConfig, num_workers: usize) -> Self {
        let set_words = config.stack_set_words();
        AddressMap { config, num_workers, set_words }
    }

    /// Total size of the data memory in words: one Stack Set per worker plus
    /// the shared region.
    pub fn total_words(&self) -> u64 {
        self.set_words as u64 * self.num_workers as u64 + SHARED_REGION_WORDS as u64
    }

    /// Base address of the shared region (one past the last Stack Set).
    pub fn shared_base(&self) -> u32 {
        self.set_words * self.num_workers as u32
    }

    /// Base address of `area` in the Stack Set of `worker`.
    pub fn area_base(&self, worker: usize, area: Area) -> u32 {
        debug_assert!(worker < self.num_workers);
        worker as u32 * self.set_words + self.config.area_offset(area)
    }

    /// One-past-the-end address of `area` in the Stack Set of `worker`.
    pub fn area_end(&self, worker: usize, area: Area) -> u32 {
        self.area_base(worker, area) + self.config.area_size(area)
    }

    /// Which worker owns a global address (must lie inside a Stack Set, not
    /// the shared region).
    #[inline(always)]
    pub fn owner(&self, addr: u32) -> usize {
        debug_assert!(addr < self.shared_base(), "address {addr} lies in the shared region");
        (addr / self.set_words) as usize
    }

    /// Which area a global address belongs to.
    pub fn area_of(&self, addr: u32) -> Area {
        let within = addr % self.set_words;
        // Walk the areas in layout order; there are only seven.
        for area in Area::ALL {
            let start = self.config.area_offset(area);
            if within >= start && within < start + self.config.area_size(area) {
                return area;
            }
        }
        unreachable!("address {addr} not within any area");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_cover_the_stack_set_exactly() {
        let c = MemoryConfig::default();
        let sum: u32 = Area::ALL.iter().map(|&a| c.area_size(a)).sum();
        assert_eq!(sum, c.stack_set_words());
        // offsets are increasing and contiguous
        let mut expected = 0;
        for a in Area::ALL {
            assert_eq!(c.area_offset(a), expected);
            expected += c.area_size(a);
        }
    }

    #[test]
    fn address_round_trips_between_workers_and_areas() {
        let map = AddressMap::new(MemoryConfig::small(), 4);
        for w in 0..4 {
            for area in Area::ALL {
                let base = map.area_base(w, area);
                let end = map.area_end(w, area);
                assert_eq!(map.owner(base), w);
                assert_eq!(map.area_of(base), area);
                assert_eq!(map.area_of(end - 1), area);
            }
        }
    }

    #[test]
    fn table1_locality_matches_the_paper() {
        use ObjectKind::*;
        assert_eq!(EnvControl.locality(), Locality::Local);
        assert_eq!(EnvPermVar.locality(), Locality::Global);
        assert_eq!(ChoicePoint.locality(), Locality::Local);
        assert_eq!(HeapTerm.locality(), Locality::Global);
        assert_eq!(TrailEntry.locality(), Locality::Local);
        assert_eq!(PdlEntry.locality(), Locality::Local);
        assert_eq!(ParcallLocal.locality(), Locality::Local);
        assert_eq!(ParcallGlobal.locality(), Locality::Global);
        assert_eq!(ParcallCount.locality(), Locality::Global);
        assert_eq!(Marker.locality(), Locality::Local);
        assert_eq!(GoalFrame.locality(), Locality::Global);
        assert_eq!(Message.locality(), Locality::Global);
    }

    #[test]
    fn table1_locks_match_the_paper() {
        use ObjectKind::*;
        let locked: Vec<_> = ObjectKind::ALL.iter().filter(|o| o.locked()).collect();
        assert_eq!(locked, vec![&ParcallCount, &GoalFrame, &Message]);
    }

    #[test]
    fn table1_wam_column_matches_the_paper() {
        use ObjectKind::*;
        for o in [EnvControl, EnvPermVar, ChoicePoint, HeapTerm, TrailEntry, PdlEntry] {
            assert!(o.in_wam());
        }
        for o in [ParcallLocal, ParcallGlobal, ParcallCount, Marker, GoalFrame, Message] {
            assert!(!o.in_wam());
        }
    }

    #[test]
    fn object_index_is_the_table1_position() {
        for (i, o) in ObjectKind::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
    }

    #[test]
    fn total_words_scales_with_workers() {
        let map1 = AddressMap::new(MemoryConfig::small(), 1);
        let map8 = AddressMap::new(MemoryConfig::small(), 8);
        let shared = SHARED_REGION_WORDS as u64;
        assert_eq!(map8.total_words() - shared, 8 * (map1.total_words() - shared));
    }

    #[test]
    fn shared_region_sits_above_every_stack_set() {
        let map = AddressMap::new(MemoryConfig::small(), 3);
        for w in 0..3 {
            for area in Area::ALL {
                assert!(map.area_end(w, area) <= map.shared_base());
            }
        }
        assert_eq!(map.total_words(), map.shared_base() as u64 + SHARED_REGION_WORDS as u64);
    }
}
