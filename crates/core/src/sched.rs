//! Pluggable execution backends for the RAP-WAM engine.
//!
//! The engine exposes a small scheduler SPI — [`Engine::begin_round`],
//! [`Engine::step_slot`], [`Engine::end_round`], [`Engine::finished`] — and
//! a [`Scheduler`] drives it until the query completes.  Three backends ship
//! with the crate, selected by a [`SchedulerKind`] plus a
//! [`DeterminismMode`]:
//!
//! * [`Interleaved`] — the reference semantics: one host thread steps every
//!   worker round-robin, `quantum` instructions per slot.  This is the
//!   deterministic software-interleaved methodology of the paper's emulator.
//! * [`Threaded`] (strict) — one OS thread per PE, connected in a ring over
//!   crossbeam channels.  A scheduling token carrying the engine travels the
//!   ring, so every worker is stepped on its own thread while the global
//!   instruction interleaving — and therefore the answer set, the per-area
//!   reference counts and the merged trace — stays exactly the reference
//!   order.  The token serialises execution: it proves the threading
//!   machinery, not the speedup.
//! * [`ThreadedRelaxed`] — true per-arena parallel execution: every OS
//!   thread free-runs over its *own* worker and Stack Set arena, with no
//!   token at all.  Cross-PE traffic — goal-steal pops, completion-counter
//!   updates, messages, bindings that cross an arena boundary — goes through
//!   the per-arena locks and per-PE boards of the shared
//!   [`crate::engine::EngineCore`], and steal notifications travel over
//!   crossbeam channels to the victim's thread.
//!
//! # What relaxed determinism does and does not change
//!
//! The CGE independence conditions guarantee that parallel goals never bind
//! the same variable, so the **answer set is identical** in every mode, as
//! are the schedule-invariant work counters (parcalls, parallel goals,
//! logical inferences).  What the relaxed mode gives up is the *placement*
//! determinism of the strict schedule: which PE steals which goal — and
//! therefore how many goals take the stolen path (Markers, Parcall-Frame
//! global slots, Messages) instead of the parent's cheap local path — is
//! decided by an actual race, exactly as on the paper's real hardware.
//! Reference counts for those scheduling-artifact objects, the trace
//! interleaving and the per-PE attribution may therefore differ run to run;
//! the differential suite pins the invariants and the strict backends remain
//! the byte-exact reference.

use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use crate::worker::WorkerStatus;
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::thread;
use std::time::{Duration, Instant};

/// Which execution backend steps the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Deterministic round-robin interleaving on the host thread (the
    /// reference semantics).
    #[default]
    Interleaved,
    /// One OS thread per PE.  [`DeterminismMode`] selects between the
    /// token-ring (strict) and free-running (relaxed) drivers.
    Threaded,
}

impl SchedulerKind {
    /// Parse a `--scheduler` / env-var value.
    ///
    /// ```
    /// use rapwam::SchedulerKind;
    /// assert_eq!(SchedulerKind::parse("threaded"), Some(SchedulerKind::Threaded));
    /// assert_eq!(SchedulerKind::parse("turbo"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interleaved" => Some(SchedulerKind::Interleaved),
            "threaded" => Some(SchedulerKind::Threaded),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Interleaved => "interleaved",
            SchedulerKind::Threaded => "threaded",
        }
    }
}

/// How much scheduling nondeterminism the backend may exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DeterminismMode {
    /// Reproduce the reference interleaving exactly: identical answers,
    /// counts *and* traces.  The `Threaded` backend serialises through a
    /// scheduling token.
    #[default]
    Strict,
    /// Free-running threads: identical answers and schedule-invariant
    /// counters, but steal placement, trace interleaving and per-PE
    /// attribution are racy.  This is the mode that turns `--threads N`
    /// into wall-clock speedup.
    Relaxed,
}

impl DeterminismMode {
    /// Parse a `--determinism` / env-var value.
    ///
    /// ```
    /// use rapwam::DeterminismMode;
    /// assert_eq!(DeterminismMode::parse("relaxed"), Some(DeterminismMode::Relaxed));
    /// assert_eq!(DeterminismMode::parse("chaotic"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "strict" => Some(DeterminismMode::Strict),
            "relaxed" => Some(DeterminismMode::Relaxed),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DeterminismMode::Strict => "strict",
            DeterminismMode::Relaxed => "relaxed",
        }
    }
}

/// An execution backend: drives an engine from its initial state to
/// `finished()`, returning the engine for answer/statistics extraction.
///
/// ```
/// use rapwam::{scheduler_for, DeterminismMode, SchedulerKind};
/// let backend = scheduler_for(SchedulerKind::Threaded, DeterminismMode::Relaxed);
/// assert_eq!(backend.name(), "threaded-relaxed");
/// ```
pub trait Scheduler {
    /// Backend name (for reporting).
    fn name(&self) -> &'static str;

    /// Run the query to completion.
    fn drive<'p>(&self, engine: Engine<'p>) -> EngineResult<Engine<'p>>;
}

/// Resolve a [`SchedulerKind`] × [`DeterminismMode`] to its backend
/// implementation.  The interleaved backend is deterministic by
/// construction, so it ignores the mode.
pub fn scheduler_for(kind: SchedulerKind, determinism: DeterminismMode) -> Box<dyn Scheduler> {
    match (kind, determinism) {
        (SchedulerKind::Interleaved, _) => Box::new(Interleaved),
        (SchedulerKind::Threaded, DeterminismMode::Strict) => Box::new(Threaded),
        (SchedulerKind::Threaded, DeterminismMode::Relaxed) => Box::new(ThreadedRelaxed),
    }
}

/// The reference backend: deterministic round-robin on the host thread.
pub struct Interleaved;

impl Scheduler for Interleaved {
    fn name(&self) -> &'static str {
        "interleaved"
    }

    fn drive<'p>(&self, mut engine: Engine<'p>) -> EngineResult<Engine<'p>> {
        let n = engine.num_workers();
        while !engine.halted() {
            engine.begin_round();
            let mut progress = false;
            for w in 0..n {
                if engine.halted() {
                    break;
                }
                progress |= engine.step_slot(w)?;
                for ev in engine.drain_steals() {
                    engine.deliver_steal_notices(ev.victim, 1);
                }
                for ev in engine.drain_cancels() {
                    engine.deliver_cancel_notices(ev.executor, 1);
                }
            }
            engine.end_round(progress)?;
        }
        // The finishing slot may itself have stolen or cancelled; fold the
        // tail so notification accounting stays exact.
        for ev in engine.drain_steals() {
            engine.deliver_steal_notices(ev.victim, 1);
        }
        for ev in engine.drain_cancels() {
            engine.deliver_cancel_notices(ev.executor, 1);
        }
        Ok(engine)
    }
}

/// Messages exchanged between the per-PE threads of the strict [`Threaded`]
/// backend.
enum Msg<'p> {
    /// The scheduling token: whoever holds it steps its worker, then passes
    /// it to the next PE in the ring.
    Token(Box<Token<'p>>),
    /// A goal was taken from this PE's Goal Stack by `thief`.
    StealNote { thief: usize, frame: u32 },
    /// An in-flight goal this PE is executing was cancelled by `canceller`
    /// (backward execution).  The semantic request rides the shared boards;
    /// this message is the cross-thread notification, like `StealNote`.
    CancelNote { canceller: usize },
    /// The query finished (or errored); the thread should exit.
    Shutdown,
}

/// The token circulating the ring: the engine plus the open round's state.
struct Token<'p> {
    engine: Engine<'p>,
    /// Whether any worker made progress in the round in flight.
    progress: bool,
    /// True once PE 0 has opened a round (so it knows to close the previous
    /// one when the token comes back around).
    round_open: bool,
}

/// One OS thread per PE under a scheduling token (strict determinism).  A
/// token (carrying the engine) travels a ring of crossbeam channels; the
/// thread holding it steps its own worker.  Because the token enforces the
/// reference round-robin order, this backend produces the same answers,
/// reference counts and merged trace as [`Interleaved`] — the property the
/// differential tests pin down — while every instruction is executed on the
/// thread of the PE it belongs to.  [`ThreadedRelaxed`] retires the token.
pub struct Threaded;

impl Scheduler for Threaded {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn drive<'p>(&self, engine: Engine<'p>) -> EngineResult<Engine<'p>> {
        let n = engine.num_workers();
        let (txs, rxs): (Vec<Sender<Msg<'p>>>, Vec<Receiver<Msg<'p>>>) = (0..n).map(|_| unbounded()).unzip();
        let (done_tx, done_rx) = unbounded::<EngineResult<Engine<'p>>>();
        // Final-reconciliation channel: on shutdown every thread reports the
        // steal and cancel notes it had not yet folded into the engine, so
        // none are lost when the query finishes in the same round as the
        // event.
        let (notes_tx, notes_rx) = unbounded::<(usize, u64, u64)>();

        thread::scope(|scope| {
            for (w, rx) in rxs.into_iter().enumerate() {
                let txs = txs.clone();
                let done_tx = done_tx.clone();
                let notes_tx = notes_tx.clone();
                let notes_rx = notes_rx.clone();
                scope.spawn(move || pe_thread(w, n, rx, txs, done_tx, notes_tx, notes_rx));
            }
            // Drop the originals so the channels disconnect once every PE
            // thread has exited: if a thread panics (torn-down ring, no
            // result sent), `done_rx.recv()` unblocks with a disconnect
            // error instead of hanging, and `thread::scope` then re-raises
            // the panic at join.
            drop(done_tx);
            drop(notes_tx);
            txs[0]
                .send(Msg::Token(Box::new(Token { engine, progress: false, round_open: false })))
                .map_err(|_| EngineError::Internal("threaded scheduler: ring closed early".into()))?;
            done_rx.recv().map_err(|_| {
                EngineError::Internal("threaded scheduler: no thread produced a result".into())
            })?
        })
    }
}

/// Broadcast `Shutdown` so every ring thread exits.
fn shutdown_ring(txs: &[Sender<Msg<'_>>], me: usize) {
    for (w, tx) in txs.iter().enumerate() {
        if w != me {
            let _ = tx.send(Msg::Shutdown);
        }
    }
}

/// What a thread should do after handling one token visit.
enum Flow {
    Continue,
    Stop,
}

/// The body of one PE's OS thread (strict token ring).
fn pe_thread<'p>(
    w: usize,
    n: usize,
    rx: Receiver<Msg<'p>>,
    txs: Vec<Sender<Msg<'p>>>,
    done_tx: Sender<EngineResult<Engine<'p>>>,
    notes_tx: Sender<(usize, u64, u64)>,
    notes_rx: Receiver<(usize, u64, u64)>,
) {
    // Steal/cancel notes received while another PE holds the token; folded
    // into the engine's books the next time the token arrives here, or
    // reported over the reconciliation channel at shutdown.
    let mut pending_notes: u64 = 0;
    let mut pending_cancel_notes: u64 = 0;
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => return, // ring torn down
        };
        match msg {
            Msg::Shutdown => {
                let _ = notes_tx.send((w, pending_notes, pending_cancel_notes));
                return;
            }
            Msg::StealNote { thief, frame } => {
                debug_assert!(thief != w, "worker {w} cannot steal goal frame {frame:#x} from itself");
                pending_notes += 1;
            }
            Msg::CancelNote { canceller } => {
                debug_assert!(canceller != w, "worker {w} cannot cancel its own in-flight goal");
                pending_cancel_notes += 1;
            }
            Msg::Token(token) => {
                // A panic while holding the token would leave every other
                // thread blocked on its channel: tear the ring down first,
                // then let the panic propagate through the scope.
                let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_token(
                        w,
                        n,
                        token,
                        &mut pending_notes,
                        &mut pending_cancel_notes,
                        &txs,
                        &done_tx,
                        &notes_rx,
                    )
                }));
                match handled {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Stop) => return,
                    Err(payload) => {
                        // The panic re-raises through thread::scope, so the
                        // caller observes it directly; the broadcast only
                        // keeps the other threads from blocking forever.
                        shutdown_ring(&txs, w);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }
}

/// Handle one visit of the scheduling token at PE `w`.
#[allow(clippy::too_many_arguments)]
fn handle_token<'p>(
    w: usize,
    n: usize,
    mut token: Box<Token<'p>>,
    pending_notes: &mut u64,
    pending_cancel_notes: &mut u64,
    txs: &[Sender<Msg<'p>>],
    done_tx: &Sender<EngineResult<Engine<'p>>>,
    notes_rx: &Receiver<(usize, u64, u64)>,
) -> Flow {
    let engine = &mut token.engine;
    if *pending_notes > 0 {
        engine.deliver_steal_notices(w, *pending_notes);
        *pending_notes = 0;
    }
    if *pending_cancel_notes > 0 {
        engine.deliver_cancel_notices(w, *pending_cancel_notes);
        *pending_cancel_notes = 0;
    }
    // PE 0 is the round closer: finish the previous round, check for
    // completion, open the next round.
    if w == 0 {
        if token.round_open {
            if let Err(e) = engine.end_round(token.progress) {
                let _ = done_tx.send(Err(e));
                shutdown_ring(txs, w);
                return Flow::Stop;
            }
        }
        if engine.halted() {
            // Reconcile steal/cancel notes still pending on the other
            // threads (an event from the finishing round may not have
            // reached its target's books yet): every thread reports its
            // counts on shutdown, and no further token will circulate.
            shutdown_ring(txs, w);
            for _ in 0..n - 1 {
                match notes_rx.recv() {
                    Ok((peer, steals, cancels)) => {
                        engine.deliver_steal_notices(peer, steals);
                        engine.deliver_cancel_notices(peer, cancels);
                    }
                    Err(_) => break, // a thread died; stats stay partial
                }
            }
            let _ = done_tx.send(Ok(token.engine));
            return Flow::Stop;
        }
        engine.begin_round();
        token.progress = false;
        token.round_open = true;
    }
    match engine.step_slot(w) {
        Ok(p) => token.progress |= p,
        Err(e) => {
            let _ = done_tx.send(Err(e));
            shutdown_ring(txs, w);
            return Flow::Stop;
        }
    }
    // Stolen goals and cancel requests become real cross-thread messages:
    // notify each victim's / executor's thread over its channel.
    for ev in token.engine.drain_steals() {
        debug_assert_eq!(ev.thief, w);
        let _ = txs[ev.victim].send(Msg::StealNote { thief: ev.thief, frame: ev.frame });
    }
    for ev in token.engine.drain_cancels() {
        debug_assert_eq!(ev.canceller, w);
        let _ = txs[ev.executor].send(Msg::CancelNote { canceller: ev.canceller });
    }
    if txs[(w + 1) % n].send(Msg::Token(token)).is_err() {
        return Flow::Stop; // next thread already shut down
    }
    Flow::Continue
}

// ---------------------------------------------------------------------
// The relaxed backend: free-running threads over owned arenas.
// ---------------------------------------------------------------------

/// Instructions a relaxed worker executes between channel polls and shared
/// bookkeeping flushes.  Large enough to amortise the poll, small enough
/// that completion/steal notifications are observed promptly.
///
/// This is also the status-staleness bound of the flat executor's batch
/// loop: within a batch, driver-free goal transitions keep the worker in
/// the dense stream without re-reading the shared finished/abort flags, so
/// a free-running PE can overrun a query finish by up to one batch of
/// instructions.  That tail work is discarded with the worker's arenas —
/// relaxed mode never reports per-PE reference attribution as exact — and
/// the strict backends are unaffected (their interleavings check between
/// slots).
const RELAXED_BATCH: u32 = 128;

/// Idle polls between global-progress checks of the stall watchdog.
const STALL_CHECK_INTERVAL: u32 = 256;

/// Executed batches between wall-clock deadline checks of a busy relaxed
/// worker (idle workers piggyback on the stall-watchdog polls instead).
const DEADLINE_CHECK_BATCHES: u32 = 8;

/// True per-arena parallel execution (relaxed determinism): one free-running
/// OS thread per PE, each mutating only its own worker state and Stack Set
/// arena through `Step`; cross-PE traffic rides the
/// per-arena locks, the per-PE boards and the steal-note channels.  No
/// scheduling token exists, so `--threads N` buys real wall-clock speedup;
/// see the module docs for exactly which observables stay invariant.
pub struct ThreadedRelaxed;

impl Scheduler for ThreadedRelaxed {
    fn name(&self) -> &'static str {
        "threaded-relaxed"
    }

    fn drive<'p>(&self, engine: Engine<'p>) -> EngineResult<Engine<'p>> {
        let n = engine.num_workers();
        let (core, mut workers) = engine.into_parts();
        // One note channel per PE, carrying steal notices (as the victim)
        // and cancel notices (as the executor).  The driver keeps a
        // receiver clone per channel to drain notes that arrive after the
        // thread has already exited (each note is consumed exactly once:
        // either by the owning thread or by the final drain).
        let (txs, rxs): (Vec<Sender<RelaxedNote>>, Vec<Receiver<RelaxedNote>>) =
            (0..n).map(|_| unbounded()).unzip();
        let driver_rxs: Vec<Receiver<RelaxedNote>> = rxs.iter().map(Receiver::clone).collect();

        thread::scope(|scope| {
            for ((w, wk), rx) in workers.iter_mut().enumerate().zip(rxs) {
                let core = &core;
                let txs = txs.clone();
                scope.spawn(move || {
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        relaxed_pe_loop(core, w, wk, &rx, &txs)
                    }));
                    match run {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => core.abort_with(e),
                        Err(payload) => {
                            // Wind the other threads down, then let the
                            // panic re-raise through the scope join.
                            core.abort_with(EngineError::Internal(format!(
                                "relaxed scheduler: worker {w} thread panicked"
                            )));
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
        });

        let mut engine = Engine::from_parts(core, workers);
        for (pe, rx) in driver_rxs.iter().enumerate() {
            let (mut steals, mut cancels) = (0u64, 0u64);
            while let Ok(note) = rx.try_recv() {
                match note {
                    RelaxedNote::Steal => steals += 1,
                    RelaxedNote::Cancel => cancels += 1,
                }
            }
            if steals > 0 {
                engine.deliver_steal_notices(pe, steals);
            }
            if cancels > 0 {
                engine.deliver_cancel_notices(pe, cancels);
            }
        }
        if let Some(e) = engine.core().take_abort() {
            return Err(e);
        }
        if !engine.halted() {
            return Err(EngineError::Internal("relaxed scheduler exited without an outcome".into()));
        }
        // Rounds do not exist without the token; report the critical-path
        // estimate (the busiest worker's slot count) as elapsed cycles.
        let critical_path = engine.workers.iter().map(|w| w.instructions + w.idle_cycles).max().unwrap_or(0);
        engine.core().set_cycles(critical_path);
        Ok(engine)
    }
}

/// A cross-thread notification of the relaxed backend (the semantic content
/// of both kinds rides the shared boards; these keep the per-worker books).
enum RelaxedNote {
    /// A goal was taken from this PE's Goal Stack.
    Steal,
    /// An in-flight goal this PE is executing was cancelled.
    Cancel,
}

/// The body of one PE's free-running thread.
fn relaxed_pe_loop(
    core: &crate::engine::EngineCore<'_>,
    w: usize,
    wk: &mut crate::worker::Worker,
    rx: &Receiver<RelaxedNote>,
    txs: &[Sender<RelaxedNote>],
) -> EngineResult<()> {
    let stall_timeout = core.config.stall_timeout;
    let mut step = crate::engine::Step { core, wk };
    let mut idle_spins: u32 = 0;
    let mut busy_batches: u32 = 0;
    let mut last_steps = core.steps();
    let mut stall_since: Option<Instant> = None;
    loop {
        if core.halted() || core.is_aborted() {
            return Ok(());
        }
        // Fold in the steal/cancel notices other PEs sent this one.
        while let Ok(note) = rx.try_recv() {
            match note {
                RelaxedNote::Steal => step.wk.steal_notices += 1,
                RelaxedNote::Cancel => step.wk.cancel_notices += 1,
            }
        }
        let progress = match step.wk.status {
            WorkerStatus::Stopped => return Ok(()),
            WorkerStatus::Running => step.exec_batch(RELAXED_BATCH)? > 0,
            _ => step.run_slot()?,
        };
        // Steals and cancel requests this worker just performed become real
        // cross-thread messages to each victim's / executor's thread.
        for ev in core.drain_steals_of(w) {
            debug_assert_eq!(ev.thief, w);
            let _ = txs[ev.victim].send(RelaxedNote::Steal);
        }
        for ev in core.drain_cancels_of(w) {
            debug_assert_eq!(ev.canceller, w);
            let _ = txs[ev.executor].send(RelaxedNote::Cancel);
        }
        if progress {
            idle_spins = 0;
            stall_since = None;
            busy_batches += 1;
            // Fuel is checked per batch: prompt preemption, but the exact
            // stop point is schedule-dependent here (the relaxed contract).
            core.check_fuel();
            if busy_batches.is_multiple_of(DEADLINE_CHECK_BATCHES) {
                core.check_deadline()?;
            }
            continue;
        }
        // Nothing to do: back off, and watch for a machine-wide stall.  The
        // ramp matters on oversubscribed hosts: an idle PE that spins hard
        // steals the core from the PE doing the work, so after a short spin
        // phase it yields, then parks in 100µs naps (bounding steal latency
        // at well under the grain of the goals worth stealing).
        idle_spins = idle_spins.saturating_add(1);
        if idle_spins <= 16 {
            std::hint::spin_loop();
        } else if idle_spins <= 256 {
            // Telemetry rides the ladder's existing branch structure: the
            // rung-entry transitions are counted once per idle episode and
            // the park time is the nap count times the fixed nap length —
            // no clock reads on the idle path.
            if idle_spins == 17 {
                step.wk.backoff_yields += 1;
            }
            thread::yield_now();
        } else {
            if idle_spins == 257 {
                step.wk.backoff_parks += 1;
            }
            step.wk.park_micros += 100;
            thread::sleep(Duration::from_micros(100));
        }
        if idle_spins.is_multiple_of(STALL_CHECK_INTERVAL) {
            core.check_deadline()?;
            core.check_fuel();
            let now = core.steps();
            if now != last_steps {
                last_steps = now;
                stall_since = None;
            } else {
                let since = *stall_since.get_or_insert_with(Instant::now);
                if since.elapsed() > stall_timeout {
                    return Err(EngineError::Internal(format!(
                        "relaxed scheduler stalled: worker {w} idle with no global progress for {stall_timeout:?}"
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kind_parses() {
        assert_eq!(SchedulerKind::parse("interleaved"), Some(SchedulerKind::Interleaved));
        assert_eq!(SchedulerKind::parse("threaded"), Some(SchedulerKind::Threaded));
        assert_eq!(SchedulerKind::parse("bogus"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Interleaved);
        assert_eq!(SchedulerKind::Threaded.name(), "threaded");
    }

    #[test]
    fn determinism_mode_parses() {
        assert_eq!(DeterminismMode::parse("strict"), Some(DeterminismMode::Strict));
        assert_eq!(DeterminismMode::parse("relaxed"), Some(DeterminismMode::Relaxed));
        assert_eq!(DeterminismMode::parse("bogus"), None);
        assert_eq!(DeterminismMode::default(), DeterminismMode::Strict);
        assert_eq!(DeterminismMode::Relaxed.name(), "relaxed");
    }

    #[test]
    fn scheduler_for_resolves_every_backend() {
        assert_eq!(scheduler_for(SchedulerKind::Interleaved, DeterminismMode::Strict).name(), "interleaved");
        assert_eq!(
            scheduler_for(SchedulerKind::Interleaved, DeterminismMode::Relaxed).name(),
            "interleaved",
            "the interleaved backend is deterministic by construction"
        );
        assert_eq!(scheduler_for(SchedulerKind::Threaded, DeterminismMode::Strict).name(), "threaded");
        assert_eq!(
            scheduler_for(SchedulerKind::Threaded, DeterminismMode::Relaxed).name(),
            "threaded-relaxed"
        );
    }
}
