//! Pluggable execution backends for the RAP-WAM engine.
//!
//! The engine exposes a small scheduler SPI — [`Engine::begin_round`],
//! [`Engine::step_slot`], [`Engine::end_round`], [`Engine::finished`] — and
//! a [`Scheduler`] drives it until the query completes.  Two backends ship
//! with the crate:
//!
//! * [`Interleaved`] — the reference semantics: one host thread steps every
//!   worker round-robin, `quantum` instructions per slot.  This is the
//!   deterministic software-interleaved methodology of the paper's emulator.
//! * [`Threaded`] — one OS thread per PE, connected in a ring over crossbeam
//!   channels.  A scheduling token carrying the engine travels the ring, so
//!   every worker is stepped on its own thread while the global instruction
//!   interleaving — and therefore the answer set, the per-area reference
//!   counts and the merged trace — stays exactly the reference order.
//!   Goal-steal notifications travel as real cross-thread messages to the
//!   victim's thread instead of the thief poking the victim's bookkeeping
//!   host-side.  Later backends can relax the token into per-arena locks;
//!   the differential test suite pins the semantics they must preserve.

use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::thread;

/// Which execution backend steps the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Deterministic round-robin interleaving on the host thread (the
    /// reference semantics).
    #[default]
    Interleaved,
    /// One OS thread per PE over a token ring of crossbeam channels.
    Threaded,
}

impl SchedulerKind {
    /// Parse a `--scheduler` / env-var value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interleaved" => Some(SchedulerKind::Interleaved),
            "threaded" => Some(SchedulerKind::Threaded),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Interleaved => "interleaved",
            SchedulerKind::Threaded => "threaded",
        }
    }
}

/// An execution backend: drives an engine from its initial state to
/// `finished()`, returning the engine for answer/statistics extraction.
pub trait Scheduler {
    /// Backend name (for reporting).
    fn name(&self) -> &'static str;

    /// Run the query to completion.
    fn drive<'p>(&self, engine: Engine<'p>) -> EngineResult<Engine<'p>>;
}

/// Resolve a [`SchedulerKind`] to its backend implementation.
pub fn scheduler_for(kind: SchedulerKind) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Interleaved => Box::new(Interleaved),
        SchedulerKind::Threaded => Box::new(Threaded),
    }
}

/// The reference backend: deterministic round-robin on the host thread.
pub struct Interleaved;

impl Scheduler for Interleaved {
    fn name(&self) -> &'static str {
        "interleaved"
    }

    fn drive<'p>(&self, mut engine: Engine<'p>) -> EngineResult<Engine<'p>> {
        let n = engine.num_workers();
        while engine.finished().is_none() {
            engine.begin_round();
            let mut progress = false;
            for w in 0..n {
                if engine.finished().is_some() {
                    break;
                }
                progress |= engine.step_slot(w)?;
                for ev in engine.drain_steals() {
                    engine.deliver_steal_notices(ev.victim, 1);
                }
            }
            engine.end_round(progress)?;
        }
        Ok(engine)
    }
}

/// Messages exchanged between the per-PE threads of the [`Threaded`] backend.
enum Msg<'p> {
    /// The scheduling token: whoever holds it steps its worker, then passes
    /// it to the next PE in the ring.
    Token(Box<Token<'p>>),
    /// A goal was taken from this PE's Goal Stack by `thief`.
    StealNote { thief: usize, frame: u32 },
    /// The query finished (or errored); the thread should exit.
    Shutdown,
}

/// The token circulating the ring: the engine plus the open round's state.
struct Token<'p> {
    engine: Engine<'p>,
    /// Whether any worker made progress in the round in flight.
    progress: bool,
    /// True once PE 0 has opened a round (so it knows to close the previous
    /// one when the token comes back around).
    round_open: bool,
}

/// One OS thread per PE.  A scheduling token (carrying the engine) travels a
/// ring of crossbeam channels; the thread holding it steps its own worker.
/// Because the token enforces the reference round-robin order, the Threaded
/// backend produces the same answers, reference counts and merged trace as
/// [`Interleaved`] — the property the differential tests pin down — while
/// every instruction is executed on the thread of the PE it belongs to.
pub struct Threaded;

impl Scheduler for Threaded {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn drive<'p>(&self, engine: Engine<'p>) -> EngineResult<Engine<'p>> {
        let n = engine.num_workers();
        let (txs, rxs): (Vec<Sender<Msg<'p>>>, Vec<Receiver<Msg<'p>>>) = (0..n).map(|_| unbounded()).unzip();
        let (done_tx, done_rx) = unbounded::<EngineResult<Engine<'p>>>();
        // Final-reconciliation channel: on shutdown every thread reports the
        // steal notes it had not yet folded into the engine, so none are
        // lost when the query finishes in the same round as a steal.
        let (notes_tx, notes_rx) = unbounded::<(usize, u64)>();

        thread::scope(|scope| {
            for (w, rx) in rxs.into_iter().enumerate() {
                let txs = txs.clone();
                let done_tx = done_tx.clone();
                let notes_tx = notes_tx.clone();
                let notes_rx = notes_rx.clone();
                scope.spawn(move || pe_thread(w, n, rx, txs, done_tx, notes_tx, notes_rx));
            }
            // Drop the originals so the channels disconnect once every PE
            // thread has exited: if a thread panics (torn-down ring, no
            // result sent), `done_rx.recv()` unblocks with a disconnect
            // error instead of hanging, and `thread::scope` then re-raises
            // the panic at join.
            drop(done_tx);
            drop(notes_tx);
            txs[0]
                .send(Msg::Token(Box::new(Token { engine, progress: false, round_open: false })))
                .map_err(|_| EngineError::Internal("threaded scheduler: ring closed early".into()))?;
            done_rx.recv().map_err(|_| {
                EngineError::Internal("threaded scheduler: no thread produced a result".into())
            })?
        })
    }
}

/// Broadcast `Shutdown` so every ring thread exits.
fn shutdown_ring(txs: &[Sender<Msg<'_>>], me: usize) {
    for (w, tx) in txs.iter().enumerate() {
        if w != me {
            let _ = tx.send(Msg::Shutdown);
        }
    }
}

/// What a thread should do after handling one token visit.
enum Flow {
    Continue,
    Stop,
}

/// The body of one PE's OS thread.
fn pe_thread<'p>(
    w: usize,
    n: usize,
    rx: Receiver<Msg<'p>>,
    txs: Vec<Sender<Msg<'p>>>,
    done_tx: Sender<EngineResult<Engine<'p>>>,
    notes_tx: Sender<(usize, u64)>,
    notes_rx: Receiver<(usize, u64)>,
) {
    // Steal notes received while another PE holds the token; folded into the
    // engine's books the next time the token arrives here, or reported over
    // the reconciliation channel at shutdown.
    let mut pending_notes: u64 = 0;
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => return, // ring torn down
        };
        match msg {
            Msg::Shutdown => {
                let _ = notes_tx.send((w, pending_notes));
                return;
            }
            Msg::StealNote { thief, frame } => {
                debug_assert!(thief != w, "worker {w} cannot steal goal frame {frame:#x} from itself");
                pending_notes += 1;
            }
            Msg::Token(token) => {
                // A panic while holding the token would leave every other
                // thread blocked on its channel: tear the ring down first,
                // then let the panic propagate through the scope.
                let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_token(w, n, token, &mut pending_notes, &txs, &done_tx, &notes_rx)
                }));
                match handled {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Stop) => return,
                    Err(payload) => {
                        // The panic re-raises through thread::scope, so the
                        // caller observes it directly; the broadcast only
                        // keeps the other threads from blocking forever.
                        shutdown_ring(&txs, w);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }
}

/// Handle one visit of the scheduling token at PE `w`.
fn handle_token<'p>(
    w: usize,
    n: usize,
    mut token: Box<Token<'p>>,
    pending_notes: &mut u64,
    txs: &[Sender<Msg<'p>>],
    done_tx: &Sender<EngineResult<Engine<'p>>>,
    notes_rx: &Receiver<(usize, u64)>,
) -> Flow {
    let engine = &mut token.engine;
    if *pending_notes > 0 {
        engine.deliver_steal_notices(w, *pending_notes);
        *pending_notes = 0;
    }
    // PE 0 is the round closer: finish the previous round, check for
    // completion, open the next round.
    if w == 0 {
        if token.round_open {
            if let Err(e) = engine.end_round(token.progress) {
                let _ = done_tx.send(Err(e));
                shutdown_ring(txs, w);
                return Flow::Stop;
            }
        }
        if engine.finished().is_some() {
            // Reconcile steal notes still pending on the other threads (a
            // goal stolen in the finishing round may not have reached its
            // victim's books yet): every thread reports its count on
            // shutdown, and no further token will circulate.
            shutdown_ring(txs, w);
            for _ in 0..n - 1 {
                match notes_rx.recv() {
                    Ok((victim, count)) => engine.deliver_steal_notices(victim, count),
                    Err(_) => break, // a thread died; stats stay partial
                }
            }
            let _ = done_tx.send(Ok(token.engine));
            return Flow::Stop;
        }
        engine.begin_round();
        token.progress = false;
        token.round_open = true;
    }
    match engine.step_slot(w) {
        Ok(p) => token.progress |= p,
        Err(e) => {
            let _ = done_tx.send(Err(e));
            shutdown_ring(txs, w);
            return Flow::Stop;
        }
    }
    // Stolen goals become real cross-thread messages: notify each victim's
    // thread over its channel.
    for ev in token.engine.drain_steals() {
        debug_assert_eq!(ev.thief, w);
        let _ = txs[ev.victim].send(Msg::StealNote { thief: ev.thief, frame: ev.frame });
    }
    if txs[(w + 1) % n].send(Msg::Token(token)).is_err() {
        return Flow::Stop; // next thread already shut down
    }
    Flow::Continue
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kind_parses() {
        assert_eq!(SchedulerKind::parse("interleaved"), Some(SchedulerKind::Interleaved));
        assert_eq!(SchedulerKind::parse("threaded"), Some(SchedulerKind::Threaded));
        assert_eq!(SchedulerKind::parse("bogus"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Interleaved);
        assert_eq!(SchedulerKind::Threaded.name(), "threaded");
    }

    #[test]
    fn scheduler_for_resolves_both_backends() {
        assert_eq!(scheduler_for(SchedulerKind::Interleaved).name(), "interleaved");
        assert_eq!(scheduler_for(SchedulerKind::Threaded).name(), "threaded");
    }
}
