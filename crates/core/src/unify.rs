//! Dereferencing, binding, trailing and unification.
//!
//! Unification uses the worker's PDL area as its explicit work stack, so the
//! PDL traffic of deep structure unifications shows up in the reference
//! trace exactly as in the paper's storage model.
//!
//! All operations run on a `Step` (one worker's exclusive state plus the
//! shared core).  Under the relaxed backend several workers unify
//! concurrently; the CGE independence conditions guarantee that two goals
//! running in parallel never bind the same variable, and every single-word
//! access is atomic (the owning arena's lock), so no torn cell is ever
//! observed.  Bindings into *another* PE's arena are always trailed
//! (conditional trailing applies only within the own Stack Set), which keeps
//! the trail traffic independent of which PE happened to execute the goal.

use crate::cell::{Cell, NONE_ADDR};
use crate::engine::Step;
use crate::error::{EngineError, EngineResult};
use crate::frames::env;
use crate::layout::{Area, ObjectKind};
use pwam_compiler::Reg;

impl<'a, 'p> Step<'a, 'p> {
    // -----------------------------------------------------------------
    // Registers
    // -----------------------------------------------------------------

    /// Address of permanent variable `Yn` in the current environment.
    pub(crate) fn y_addr(&self, n: u16) -> EngineResult<u32> {
        let e = self.wk.e;
        if e == NONE_ADDR {
            return Err(EngineError::Internal("Y register used without an environment".into()));
        }
        Ok(env::y_addr(e, n))
    }

    /// Read a register operand (X directly, Y through the environment).
    pub(crate) fn read_reg(&mut self, reg: Reg) -> EngineResult<Cell> {
        match reg {
            Reg::X(n) => Ok(self.wk.x[n as usize]),
            Reg::Y(n) => {
                let addr = self.y_addr(n)?;
                Ok(self.mem_read(addr, ObjectKind::EnvPermVar))
            }
        }
    }

    /// Write a register operand.
    pub(crate) fn write_reg(&mut self, reg: Reg, value: Cell) -> EngineResult<()> {
        match reg {
            Reg::X(n) => {
                self.wk.x[n as usize] = value;
                Ok(())
            }
            Reg::Y(n) => {
                let addr = self.y_addr(n)?;
                self.mem_write(addr, value, ObjectKind::EnvPermVar);
                Ok(())
            }
        }
    }

    // -----------------------------------------------------------------
    // Heap variables, dereferencing, binding
    // -----------------------------------------------------------------

    /// Allocate a fresh unbound variable on this worker's heap.
    pub(crate) fn new_heap_var(&mut self) -> EngineResult<Cell> {
        let h = self.wk.h;
        self.check_cached_top(self.wk.heap_end, Area::Heap, h)?;
        self.mem_write(h, Cell::Ref(h), ObjectKind::HeapTerm);
        self.wk.h = h + 1;
        self.wk.update_high_water();
        Ok(Cell::Ref(h))
    }

    /// Push one cell onto this worker's heap.
    pub(crate) fn heap_push(&mut self, cell: Cell) -> EngineResult<u32> {
        let h = self.wk.h;
        self.check_cached_top(self.wk.heap_end, Area::Heap, h)?;
        self.mem_write(h, cell, ObjectKind::HeapTerm);
        self.wk.h = h + 1;
        self.wk.update_high_water();
        Ok(h)
    }

    /// Follow reference chains until reaching an unbound variable or a
    /// non-reference cell.  Every hop reads memory (and is counted, traced
    /// when tracing is on).
    pub(crate) fn deref(&mut self, mut cell: Cell) -> Cell {
        loop {
            match cell {
                Cell::Ref(a) => {
                    let obj = self.object_for_addr(a);
                    let next = self.mem_read(a, obj);
                    if next == Cell::Ref(a) {
                        return cell; // unbound variable at a
                    }
                    cell = next;
                }
                other => return other,
            }
        }
    }

    /// Record `addr` on the trail if the binding must be undone on
    /// backtracking (conditional trailing).
    pub(crate) fn trail_if_needed(&mut self, addr: u32) -> EngineResult<()> {
        // Pure register arithmetic against the worker's cached area
        // boundaries — no address-map division on the hot path.  Bindings
        // into another worker's areas are always trailed; own goal-frame
        // arguments and the like conservatively so.
        let wk = &*self.wk;
        let must_trail = if addr < wk.heap_base || addr >= wk.arena_end {
            true
        } else if addr < wk.local_base {
            addr < wk.hb // own heap: conditional on the backtrack boundary
        } else if addr < wk.control_base {
            addr < wk.stack_boundary // own local stack
        } else {
            true
        };
        if !must_trail {
            return Ok(());
        }
        let tr = self.wk.tr;
        self.check_cached_top(self.wk.trail_end, Area::Trail, tr)?;
        self.mem_write(tr, Cell::Uint(addr), ObjectKind::TrailEntry);
        self.wk.tr = tr + 1;
        self.wk.update_high_water();
        Ok(())
    }

    /// Bind the unbound variable at `addr` to `value`.
    pub(crate) fn bind(&mut self, addr: u32, value: Cell) -> EngineResult<()> {
        self.trail_if_needed(addr)?;
        let obj = self.object_for_addr(addr);
        self.mem_write(addr, value, obj);
        Ok(())
    }

    /// Bind two unbound variables together, choosing a direction that never
    /// leaves a heap cell pointing into a (shorter-lived) local stack.
    fn bind_vars(&mut self, a1: u32, a2: u32) -> EngineResult<()> {
        let area1 = self.core.mem.map.area_of(a1);
        let area2 = self.core.mem.map.area_of(a2);
        let (from, to) = match (area1, area2) {
            (Area::Heap, Area::Heap) => {
                if a1 > a2 {
                    (a1, a2)
                } else {
                    (a2, a1)
                }
            }
            (Area::Heap, _) => (a2, a1),
            (_, Area::Heap) => (a1, a2),
            _ => {
                if a1 > a2 {
                    (a1, a2)
                } else {
                    (a2, a1)
                }
            }
        };
        self.bind(from, Cell::Ref(to))
    }

    /// If `cell` dereferences to an unbound variable living on a local
    /// stack, move it to the heap (binding the stack cell to the new heap
    /// variable).  Used by `put_unsafe_value`, write-mode `unify_value` and
    /// Goal-Frame argument copying, so no other PE ever needs to reference a
    /// local-stack cell.
    pub(crate) fn globalize(&mut self, cell: Cell) -> EngineResult<Cell> {
        let d = self.deref(cell);
        if let Cell::Ref(a) = d {
            if self.core.mem.map.area_of(a) == Area::LocalStack {
                let hv = self.new_heap_var()?;
                self.bind(a, hv)?;
                return Ok(hv);
            }
        }
        Ok(d)
    }

    // -----------------------------------------------------------------
    // Unification
    // -----------------------------------------------------------------

    /// Push a pair of cells onto the PDL work stack.
    #[inline(always)]
    fn pdl_push(&mut self, pdl: &mut u32, a: Cell, b: Cell) -> EngineResult<()> {
        self.check_cached_top(self.wk.pdl_end, Area::Pdl, *pdl + 1)?;
        self.mem_write(*pdl, a, ObjectKind::PdlEntry);
        self.mem_write(*pdl + 1, b, ObjectKind::PdlEntry);
        *pdl += 2;
        Ok(())
    }

    /// Full unification of two cells.  Returns `Ok(false)` on mismatch
    /// (the caller backtracks).
    pub(crate) fn unify(&mut self, c1: Cell, c2: Cell) -> EngineResult<bool> {
        // The PDL holds pairs of cells still to be unified.
        let pdl_base = self.wk.pdl_base;
        let mut pdl = pdl_base;
        self.pdl_push(&mut pdl, c1, c2)?;
        while pdl > pdl_base {
            pdl -= 2;
            let a = self.mem_read(pdl, ObjectKind::PdlEntry);
            let b = self.mem_read(pdl + 1, ObjectKind::PdlEntry);
            let d1 = self.deref(a);
            let d2 = self.deref(b);
            if d1 == d2 {
                continue;
            }
            match (d1, d2) {
                (Cell::Ref(a1), Cell::Ref(a2)) => self.bind_vars(a1, a2)?,
                (Cell::Ref(a1), other) => self.bind(a1, other)?,
                (other, Cell::Ref(a2)) => self.bind(a2, other)?,
                (Cell::Int(i), Cell::Int(j)) => {
                    if i != j {
                        return Ok(false);
                    }
                }
                (Cell::Con(x), Cell::Con(y)) => {
                    if x != y {
                        return Ok(false);
                    }
                }
                (Cell::Lis(p1), Cell::Lis(p2)) => {
                    let h1 = self.mem_read(p1, ObjectKind::HeapTerm);
                    let h2 = self.mem_read(p2, ObjectKind::HeapTerm);
                    let t1 = self.mem_read(p1 + 1, ObjectKind::HeapTerm);
                    let t2 = self.mem_read(p2 + 1, ObjectKind::HeapTerm);
                    self.pdl_push(&mut pdl, h1, h2)?;
                    self.pdl_push(&mut pdl, t1, t2)?;
                }
                (Cell::Str(p1), Cell::Str(p2)) => {
                    let f1 = self.mem_read(p1, ObjectKind::HeapTerm);
                    let f2 = self.mem_read(p2, ObjectKind::HeapTerm);
                    match (f1, f2) {
                        (Cell::Fun(n1, a1), Cell::Fun(n2, a2)) if n1 == n2 && a1 == a2 => {
                            for i in 0..a1 as u32 {
                                let x = self.mem_read(p1 + 1 + i, ObjectKind::HeapTerm);
                                let y = self.mem_read(p2 + 1 + i, ObjectKind::HeapTerm);
                                self.pdl_push(&mut pdl, x, y)?;
                            }
                        }
                        _ => return Ok(false),
                    }
                }
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    // -----------------------------------------------------------------
    // Term inspection (groundness, independence, structural equality)
    // -----------------------------------------------------------------

    /// Collect the addresses of all unbound variables reachable from `cell`.
    pub(crate) fn collect_unbound(&mut self, cell: Cell, out: &mut Vec<u32>) -> EngineResult<()> {
        let mut work = vec![cell];
        let mut visited = 0usize;
        while let Some(c) = work.pop() {
            visited += 1;
            if visited > 10_000_000 {
                return Err(EngineError::Internal("term too large during variable scan".into()));
            }
            match self.deref(c) {
                Cell::Ref(a) => out.push(a),
                Cell::Lis(p) => {
                    let h = self.mem_read(p, ObjectKind::HeapTerm);
                    let t = self.mem_read(p + 1, ObjectKind::HeapTerm);
                    work.push(h);
                    work.push(t);
                }
                Cell::Str(p) => {
                    let f = self.mem_read(p, ObjectKind::HeapTerm);
                    if let Cell::Fun(_, n) = f {
                        for i in 0..n as u32 {
                            let a = self.mem_read(p + 1 + i, ObjectKind::HeapTerm);
                            work.push(a);
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// True if the term reachable from `cell` contains no unbound variables.
    pub(crate) fn is_ground(&mut self, cell: Cell) -> EngineResult<bool> {
        let mut vars = Vec::new();
        self.collect_unbound(cell, &mut vars)?;
        Ok(vars.is_empty())
    }

    /// True if the terms reachable from `c1` and `c2` share no unbound
    /// variable (the `indep/2` run-time check of the CGE conditions).
    pub(crate) fn independent(&mut self, c1: Cell, c2: Cell) -> EngineResult<bool> {
        let mut v1 = Vec::new();
        self.collect_unbound(c1, &mut v1)?;
        if v1.is_empty() {
            return Ok(true);
        }
        v1.sort_unstable();
        let mut v2 = Vec::new();
        self.collect_unbound(c2, &mut v2)?;
        Ok(!v2.iter().any(|a| v1.binary_search(a).is_ok()))
    }

    /// Structural equality (`==/2`): equal without any binding.
    pub(crate) fn struct_eq(&mut self, c1: Cell, c2: Cell) -> EngineResult<bool> {
        let mut work = vec![(c1, c2)];
        while let Some((a, b)) = work.pop() {
            let d1 = self.deref(a);
            let d2 = self.deref(b);
            match (d1, d2) {
                (Cell::Ref(x), Cell::Ref(y)) => {
                    if x != y {
                        return Ok(false);
                    }
                }
                (Cell::Int(x), Cell::Int(y)) => {
                    if x != y {
                        return Ok(false);
                    }
                }
                (Cell::Con(x), Cell::Con(y)) => {
                    if x != y {
                        return Ok(false);
                    }
                }
                (Cell::Lis(p1), Cell::Lis(p2)) => {
                    let h1 = self.mem_read(p1, ObjectKind::HeapTerm);
                    let h2 = self.mem_read(p2, ObjectKind::HeapTerm);
                    let t1 = self.mem_read(p1 + 1, ObjectKind::HeapTerm);
                    let t2 = self.mem_read(p2 + 1, ObjectKind::HeapTerm);
                    work.push((h1, h2));
                    work.push((t1, t2));
                }
                (Cell::Str(p1), Cell::Str(p2)) => {
                    let f1 = self.mem_read(p1, ObjectKind::HeapTerm);
                    let f2 = self.mem_read(p2, ObjectKind::HeapTerm);
                    match (f1, f2) {
                        (Cell::Fun(n1, a1), Cell::Fun(n2, a2)) if n1 == n2 && a1 == a2 => {
                            for i in 0..a1 as u32 {
                                let x = self.mem_read(p1 + 1 + i, ObjectKind::HeapTerm);
                                let y = self.mem_read(p2 + 1 + i, ObjectKind::HeapTerm);
                                work.push((x, y));
                            }
                        }
                        _ => return Ok(false),
                    }
                }
                _ => return Ok(false),
            }
        }
        Ok(true)
    }
}
