//! Instruction dispatch: execution of abstract-machine instructions.
//!
//! All instructions run as methods on `Step` — one worker's exclusive
//! state paired with the shared [`crate::engine::EngineCore`] — so the same
//! dispatch serves the deterministic backends (one `Step` at a time) and the
//! relaxed backend (one `Step` per OS thread, concurrently).
//!
//! Two dispatch paths execute the same program:
//!
//! * **Flattened** (`Step::exec_batch_flat`, the default): fetches from
//!   the pre-decoded fixed-width [`DenseInstr`] stream with an unchecked
//!   indexed load, keeps the program counter in a local across the batch
//!   (written back to `wk.p` only at batch exit and at control transfers
//!   that leave the loop), and dispatches through `Step::exec_flat`,
//!   whose handlers return a `Flow` telling the loop how the counter
//!   moves.
//! * **Classic** (`Step::exec_instr`, behind
//!   `EngineConfig::classic_dispatch`): the original indexed `Vec<Instr>`
//!   fetch with `wk.p` written back after every instruction.  Retained as
//!   the pre-flattening cost model the MLIPS gate measures against, and as
//!   a differential oracle — both paths must produce byte-identical
//!   answers, counters and traces.

use crate::builtins::BuiltinOutcome;
use crate::cell::{Cell, NONE_ADDR};
use crate::engine::Step;
use crate::error::{EngineError, EngineResult};
use crate::frames::{choice, env, goal_frame, parcall};
use crate::known;
use crate::layout::{Area, ObjectKind};
use crate::worker::{Mode, Resume, WorkerStatus};
use pwam_compiler::{decode_reg, CallTarget, CodeAddr, ConstKey, DenseInstr, DenseOp, Instr, Reg};
use pwam_front::atoms::Atom;
use std::sync::atomic::Ordering;

/// How the flattened dispatch loop advances the program counter after one
/// instruction.
pub(crate) enum Flow {
    /// Fall through to the next instruction.
    Next,
    /// Transfer control to an explicit address.
    Jump(CodeAddr),
    /// The handler moved `wk.p` itself (backtracking, goal start/finish) or
    /// left the running state (park, halt, query failure): reload the local
    /// counter from the worker and re-check the loop conditions.
    Reload,
}

impl<'a, 'p> Step<'a, 'p> {
    /// Execute the instruction at this worker's current program counter.
    pub(crate) fn exec_instr(&mut self) -> EngineResult<()> {
        let program = self.core.program;
        let p = self.wk.p;
        let instr = &program.code[p as usize];
        let pe = self.wk.id;
        let mut next = p + 1;

        match instr {
            // ---------------- put ----------------
            Instr::PutVariable { v, a } => match v {
                Reg::X(n) => {
                    let var = self.new_heap_var()?;
                    self.wk.x[*n as usize] = var;
                    self.wk.x[*a as usize] = var;
                }
                Reg::Y(n) => {
                    let addr = self.y_addr(*n)?;
                    self.core.mem.write(pe, addr, Cell::Ref(addr), ObjectKind::EnvPermVar);
                    self.wk.x[*a as usize] = Cell::Ref(addr);
                }
            },
            Instr::PutValue { v, a } => {
                let c = self.read_reg(*v)?;
                self.wk.x[*a as usize] = c;
            }
            Instr::PutUnsafeValue { y, a } => {
                let c = self.read_reg(Reg::Y(*y))?;
                let g = self.globalize(c)?;
                self.wk.x[*a as usize] = g;
            }
            Instr::PutConstant { c, a } => {
                self.wk.x[*a as usize] = Cell::Con(*c);
            }
            Instr::PutInteger { i, a } => {
                self.wk.x[*a as usize] = Cell::Int(*i);
            }
            Instr::PutNil { a } => {
                self.wk.x[*a as usize] = Cell::Con(known::NIL);
            }
            Instr::PutStructure { f, n, a } => {
                let addr = self.heap_push(Cell::Fun(*f, *n))?;
                self.wk.x[*a as usize] = Cell::Str(addr);
                self.wk.mode = Mode::Write;
            }
            Instr::PutList { a } => {
                let h = self.wk.h;
                self.wk.x[*a as usize] = Cell::Lis(h);
                self.wk.mode = Mode::Write;
            }

            // ---------------- get ----------------
            Instr::GetVariable { v, a } => {
                let c = self.wk.x[*a as usize];
                self.write_reg(*v, c)?;
            }
            Instr::GetValue { v, a } => {
                let c = self.read_reg(*v)?;
                let arg = self.wk.x[*a as usize];
                if !self.unify(c, arg)? {
                    return self.backtrack();
                }
            }
            Instr::GetConstant { c, a } => {
                let arg = self.wk.x[*a as usize];
                if !self.get_atomic(arg, Cell::Con(*c))? {
                    return self.backtrack();
                }
            }
            Instr::GetInteger { i, a } => {
                let arg = self.wk.x[*a as usize];
                if !self.get_atomic(arg, Cell::Int(*i))? {
                    return self.backtrack();
                }
            }
            Instr::GetNil { a } => {
                let arg = self.wk.x[*a as usize];
                if !self.get_atomic(arg, Cell::Con(known::NIL))? {
                    return self.backtrack();
                }
            }
            Instr::GetStructure { f, n, a } => {
                let arg = self.wk.x[*a as usize];
                match self.deref(arg) {
                    Cell::Ref(addr) => {
                        let fun_addr = self.heap_push(Cell::Fun(*f, *n))?;
                        self.bind(addr, Cell::Str(fun_addr))?;
                        self.wk.mode = Mode::Write;
                    }
                    Cell::Str(pp) => {
                        let fun = self.core.mem.read(pe, pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f2, n2) if f2 == *f && n2 == *n => {
                                self.wk.s = pp + 1;
                                self.wk.mode = Mode::Read;
                            }
                            _ => return self.backtrack(),
                        }
                    }
                    _ => return self.backtrack(),
                }
            }
            Instr::GetList { a } => {
                let arg = self.wk.x[*a as usize];
                match self.deref(arg) {
                    Cell::Ref(addr) => {
                        let h = self.wk.h;
                        self.bind(addr, Cell::Lis(h))?;
                        self.wk.mode = Mode::Write;
                    }
                    Cell::Lis(pp) => {
                        self.wk.s = pp;
                        self.wk.mode = Mode::Read;
                    }
                    _ => return self.backtrack(),
                }
            }

            // ---------------- unify ----------------
            Instr::UnifyVariable { v } => match self.wk.mode {
                Mode::Read => {
                    let s = self.wk.s;
                    let c = self.core.mem.read(pe, s, self.core.object_for_addr(s));
                    self.wk.s = s + 1;
                    self.write_reg(*v, c)?;
                }
                Mode::Write => {
                    let var = self.new_heap_var()?;
                    self.write_reg(*v, var)?;
                }
            },
            Instr::UnifyValue { v } | Instr::UnifyLocalValue { v } => match self.wk.mode {
                Mode::Read => {
                    let s = self.wk.s;
                    let target = self.core.mem.read(pe, s, self.core.object_for_addr(s));
                    self.wk.s = s + 1;
                    let c = self.read_reg(*v)?;
                    if !self.unify(c, target)? {
                        return self.backtrack();
                    }
                }
                Mode::Write => {
                    let c = self.read_reg(*v)?;
                    let g = self.globalize(c)?;
                    self.heap_push(g)?;
                }
            },
            Instr::UnifyConstant { c } => {
                if !self.unify_atomic(Cell::Con(*c))? {
                    return self.backtrack();
                }
            }
            Instr::UnifyInteger { i } => {
                if !self.unify_atomic(Cell::Int(*i))? {
                    return self.backtrack();
                }
            }
            Instr::UnifyNil => {
                if !self.unify_atomic(Cell::Con(known::NIL))? {
                    return self.backtrack();
                }
            }
            Instr::UnifyVoid { n } => match self.wk.mode {
                Mode::Read => self.wk.s += *n as u32,
                Mode::Write => {
                    for _ in 0..*n {
                        self.new_heap_var()?;
                    }
                }
            },

            // ---------------- control ----------------
            Instr::Allocate { n } => {
                let e_new = self.wk.local_top;
                self.core.mem.check_top(self.w(), Area::LocalStack, e_new + env::size(*n as u32))?;
                let (e_old, cp) = (self.wk.e, self.wk.cp);
                self.core.mem.write(pe, e_new + env::CE, Cell::Uint(e_old), ObjectKind::EnvControl);
                self.core.mem.write(pe, e_new + env::CP, Cell::Code(cp), ObjectKind::EnvControl);
                self.core.mem.write(pe, e_new + env::NVARS, Cell::Uint(*n as u32), ObjectKind::EnvControl);
                let wk = &mut *self.wk;
                wk.e = e_new;
                wk.local_top = e_new + env::size(*n as u32);
                wk.update_high_water();
            }
            Instr::Deallocate => {
                let e = self.wk.e;
                let ce = self.core.mem.read(pe, e + env::CE, ObjectKind::EnvControl).expect_uint("env CE");
                let cp = self.core.mem.read(pe, e + env::CP, ObjectKind::EnvControl).expect_code("env CP");
                let n =
                    self.core.mem.read(pe, e + env::NVARS, ObjectKind::EnvControl).expect_uint("env nvars");
                let wk = &mut *self.wk;
                if e + env::size(n) == wk.local_top {
                    // Recover the frame's space, but never below the current
                    // choice point's protected region (`stack_boundary` is
                    // the local top the newest choice point saved): a
                    // choice point pushed after this environment was
                    // allocated restores `saved_e` into it on backtracking,
                    // so its slots must survive until then.  This is the
                    // split-stack analogue of the single-stack WAM's
                    // `E = max(E, B)` allocation rule; without it a later
                    // `allocate` reuses the frame and the resumed
                    // alternative reads clobbered (or dangling) slots.
                    wk.local_top = e.max(wk.stack_boundary);
                }
                wk.cp = cp;
                wk.e = ce;
            }
            Instr::Call { target, arity } => match target {
                CallTarget::Code(addr) => {
                    self.core.inferences.fetch_add(1, Ordering::Relaxed);
                    let wk = &mut *self.wk;
                    wk.cp = p + 1;
                    wk.num_args = *arity;
                    wk.b0 = wk.b;
                    next = *addr;
                }
                CallTarget::Builtin(b) => match self.exec_builtin(*b)? {
                    BuiltinOutcome::Succeed => {}
                    BuiltinOutcome::Fail => return self.backtrack(),
                    BuiltinOutcome::Halted => return Ok(()),
                },
                CallTarget::Host(h) => {
                    // Park the machine at this boundary; on a lost race `p`
                    // stays here (early return skips the write-back below)
                    // and the instruction re-executes after resume.
                    self.suspend_host(*h, *arity, p + 1);
                    return Ok(());
                }
                CallTarget::Unresolved(_) => {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "unresolved call target".into(),
                    })
                }
            },
            Instr::Execute { target, arity } => match target {
                CallTarget::Code(addr) => {
                    self.core.inferences.fetch_add(1, Ordering::Relaxed);
                    let wk = &mut *self.wk;
                    wk.num_args = *arity;
                    wk.b0 = wk.b;
                    next = *addr;
                }
                CallTarget::Builtin(b) => match self.exec_builtin(*b)? {
                    BuiltinOutcome::Succeed => next = self.wk.cp,
                    BuiltinOutcome::Fail => return self.backtrack(),
                    BuiltinOutcome::Halted => return Ok(()),
                },
                CallTarget::Host(h) => {
                    // Last-call shape: the continuation is the saved `cp`.
                    let cont = self.wk.cp;
                    self.suspend_host(*h, *arity, cont);
                    return Ok(());
                }
                CallTarget::Unresolved(_) => {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "unresolved call target".into(),
                    })
                }
            },
            Instr::Proceed => {
                next = self.wk.cp;
            }
            Instr::CallBuiltin { b } => match self.exec_builtin(*b)? {
                BuiltinOutcome::Succeed => {}
                BuiltinOutcome::Fail => return self.backtrack(),
                BuiltinOutcome::Halted => return Ok(()),
            },

            // ---------------- choice points & indexing ----------------
            Instr::Try { addr } => {
                self.push_choice_point(p + 1)?;
                next = *addr;
            }
            Instr::Retry { addr } => {
                let b = self.wk.b;
                let nargs = self
                    .core
                    .mem
                    .read(pe, b + choice::NARGS, ObjectKind::ChoicePoint)
                    .expect_uint("cp nargs");
                self.core.mem.write(
                    pe,
                    choice::next_clause(b, nargs),
                    Cell::Code(p + 1),
                    ObjectKind::ChoicePoint,
                );
                next = *addr;
            }
            Instr::Trust { addr } => {
                self.pop_choice_point()?;
                next = *addr;
            }
            Instr::TryMeElse { else_ } => {
                self.push_choice_point(*else_)?;
            }
            Instr::RetryMeElse { else_ } => {
                let b = self.wk.b;
                let nargs = self
                    .core
                    .mem
                    .read(pe, b + choice::NARGS, ObjectKind::ChoicePoint)
                    .expect_uint("cp nargs");
                self.core.mem.write(
                    pe,
                    choice::next_clause(b, nargs),
                    Cell::Code(*else_),
                    ObjectKind::ChoicePoint,
                );
            }
            Instr::TrustMe => {
                self.pop_choice_point()?;
            }
            Instr::SwitchOnTerm { var, con, lis, stru } => {
                let arg = self.wk.x[1];
                next = match self.deref(arg) {
                    Cell::Ref(_) => *var,
                    Cell::Con(_) | Cell::Int(_) => *con,
                    Cell::Lis(_) => *lis,
                    Cell::Str(_) => *stru,
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("switch_on_term saw a control cell {other:?}"),
                        })
                    }
                };
            }
            Instr::SwitchOnConstant { table, default } => {
                let arg = self.wk.x[1];
                let key = match self.deref(arg) {
                    Cell::Con(a) => ConstKey::Atom(a),
                    Cell::Int(i) => ConstKey::Int(i),
                    _ => return self.backtrack(),
                };
                next = table.iter().find(|(k, _)| *k == key).map(|(_, a)| *a).unwrap_or(*default);
            }
            Instr::SwitchOnStructure { table, default } => {
                let arg = self.wk.x[1];
                match self.deref(arg) {
                    Cell::Str(pp) => {
                        let fun = self.core.mem.read(pe, pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f, n) => {
                                next = table
                                    .iter()
                                    .find(|((tf, tn), _)| *tf == f && *tn == n)
                                    .map(|(_, a)| *a)
                                    .unwrap_or(*default);
                            }
                            _ => return self.backtrack(),
                        }
                    }
                    _ => return self.backtrack(),
                }
            }

            // ---------------- cut ----------------
            Instr::NeckCut => {
                // Cut immediately after head unification: discard every
                // choice point pushed since the current predicate was
                // called (clause selection included), restoring B to the
                // barrier captured in B0 at the call.  This compiler's
                // clause bodies route cuts through `get_level`/`cut_to`,
                // but the instruction is part of the abstract machine's
                // surface (hand-written or externally generated code), so
                // both dispatch paths implement it.
                let target = self.wk.b0;
                if self.wk.b != target {
                    self.wk.b = target;
                    self.wk.cp_top = NONE_ADDR;
                    self.refresh_backtrack_boundaries()?;
                    self.recede_control_top();
                }
            }
            Instr::GetLevel { y } => {
                // Capture the cut barrier: choice points older than the call
                // of the current predicate survive a cut, everything newer
                // (including the clause-selection choice point) is discarded.
                let b0 = self.wk.b0;
                self.write_reg(Reg::Y(*y), Cell::Uint(b0))?;
            }
            Instr::CutTo { y } => {
                let target = self.read_reg(Reg::Y(*y))?.expect_uint("cut barrier");
                if self.wk.b != target {
                    self.wk.b = target;
                    self.wk.cp_top = NONE_ADDR;
                    self.refresh_backtrack_boundaries()?;
                    self.recede_control_top();
                }
            }

            // ---------------- builtins handled above; parallel below ----
            Instr::CheckGround { v, else_ } => {
                let c = self.read_reg(*v)?;
                if !self.is_ground(c)? {
                    next = *else_;
                }
            }
            Instr::CheckIndep { v1, v2, else_ } => {
                let c1 = self.read_reg(*v1)?;
                let c2 = self.read_reg(*v2)?;
                if !self.independent(c1, c2)? {
                    next = *else_;
                }
            }
            Instr::PcallAlloc { n } => {
                let n = *n as u32;
                let pf_new = self.wk.local_top;
                self.core.mem.check_top(self.w(), Area::LocalStack, pf_new + parcall::size(n))?;
                let prev = self.wk.pf;
                let mem = &self.core.mem;
                mem.write(pe, pf_new + parcall::NGOALS, Cell::Uint(n), ObjectKind::ParcallLocal);
                mem.write(pe, pf_new + parcall::TO_SCHEDULE, Cell::Uint(n), ObjectKind::ParcallCount);
                mem.write(pe, pf_new + parcall::COMPLETED, Cell::Uint(0), ObjectKind::ParcallCount);
                mem.write(
                    pe,
                    pf_new + parcall::STATUS,
                    Cell::Uint(parcall::STATUS_OK),
                    ObjectKind::ParcallLocal,
                );
                mem.write(
                    pe,
                    pf_new + parcall::PARENT_PE,
                    Cell::Uint(self.w() as u32),
                    ObjectKind::ParcallLocal,
                );
                mem.write(pe, pf_new + parcall::PREV_PF, Cell::Uint(prev), ObjectKind::ParcallLocal);
                // The parcall's backtrack point: `pcall_wait` commits the
                // CGE to its first solution by restoring B to this value,
                // discarding any choice points the inline branch left.
                mem.write(pe, pf_new + parcall::ENTRY_B, Cell::Uint(self.wk.b), ObjectKind::ParcallLocal);
                // Slot statuses start PENDING: the local stack reuses
                // backtracked-over words, so cancellation's slot scan must
                // never see a stale cell that happens to read as TAKEN.
                // The executing-PE words stay lazy — they are read only
                // behind a genuine TAKEN status, which a thief writes
                // *after* its own PE id.
                for k in 0..n {
                    mem.write(
                        pe,
                        parcall::slot_status(pf_new, k),
                        Cell::Uint(parcall::SLOT_PENDING),
                        ObjectKind::ParcallGlobal,
                    );
                }
                let wk = &mut *self.wk;
                wk.pf = pf_new;
                wk.local_top = pf_new + parcall::size(n);
                wk.update_high_water();
                self.core.parcalls.fetch_add(1, Ordering::Relaxed);
            }
            Instr::PcallGoal { target, arity, slot } => {
                let code = match target {
                    CallTarget::Code(a) => *a,
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("pcall_goal target must be user code, found {other:?}"),
                        })
                    }
                };
                let arity = *arity as u32;
                let pf = self.wk.pf;
                // The own board's lock is held across top read, word writes
                // and the push: a thief popping concurrently can then never
                // observe a half-written frame.  (`core` is copied out of
                // `self` so the guard does not pin `self` while globalize
                // mutates the worker.)
                let w = self.w();
                let core = self.core;
                {
                    let mut board = core.boards[w].lock().unwrap();
                    let g = board.goal_top;
                    core.mem.check_top(w, Area::GoalStack, g + goal_frame::size(arity))?;
                    core.mem.write(pe, g + goal_frame::CODE, Cell::Code(code), ObjectKind::GoalFrame);
                    core.mem.write(pe, g + goal_frame::ARITY, Cell::Uint(arity), ObjectKind::GoalFrame);
                    core.mem.write(pe, g + goal_frame::PF, Cell::Uint(pf), ObjectKind::GoalFrame);
                    core.mem.write(pe, g + goal_frame::SLOT, Cell::Uint(*slot as u32), ObjectKind::GoalFrame);
                    for i in 0..arity {
                        let c = self.wk.x[(i + 1) as usize];
                        let g_c = self.globalize(c)?;
                        core.mem.write(pe, goal_frame::arg(g, i), g_c, ObjectKind::GoalFrame);
                    }
                    board.goal_frames.push(g);
                    board.goal_top = g + goal_frame::size(arity);
                    self.wk.goal_top = board.goal_top;
                }
                self.wk.update_high_water();
            }
            Instr::PcallWait => {
                let pf = self.wk.pf;
                if pf == NONE_ADDR {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "pcall_wait without a Parcall Frame".into(),
                    });
                }
                let n = self
                    .core
                    .mem
                    .read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal)
                    .expect_uint("ngoals");
                let done = self
                    .core
                    .mem
                    .read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount)
                    .expect_uint("completed");
                if done >= n {
                    let status = self
                        .core
                        .mem
                        .read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal)
                        .expect_uint("status");
                    self.consume_messages();
                    // Commit the parcall to its first solution: discard any
                    // choice points the inline first branch left behind,
                    // mirroring the per-goal commit of the scheduled goals.
                    // (A cut inside the branch can never reach below the
                    // frame's entry B — barriers are captured at or above
                    // it — so this only ever discards, never resurrects.)
                    let entry_b = self
                        .core
                        .mem
                        .read(pe, pf + parcall::ENTRY_B, ObjectKind::ParcallLocal)
                        .expect_uint("entry b");
                    if self.wk.b != entry_b {
                        self.wk.b = entry_b;
                        self.wk.cp_top = NONE_ADDR;
                        self.refresh_backtrack_boundaries()?;
                        self.recede_control_top();
                    }
                    if status != parcall::STATUS_OK {
                        return self.backtrack();
                    }
                    let prev = self
                        .core
                        .mem
                        .read(pe, pf + parcall::PREV_PF, ObjectKind::ParcallLocal)
                        .expect_uint("prev pf");
                    let wk = &mut *self.wk;
                    if pf + parcall::size(n) == wk.local_top {
                        // As in `deallocate`: never recede below the current
                        // choice point's protected local region.
                        wk.local_top = pf.max(wk.stack_boundary);
                    }
                    wk.pf = prev;
                    // fall through to the continuation
                } else {
                    // Not complete yet.  If some goal already failed, start
                    // backward execution on the frame — retract the goals
                    // still sitting un-stolen on the board and send
                    // `cancel_goal` after the in-flight ones — instead of
                    // executing doomed siblings; the wait then drains the
                    // remainder through the completion protocol.  Otherwise
                    // pick up one of our own goals or wait (idle PEs do
                    // the stealing).
                    let status = self
                        .core
                        .mem
                        .read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal)
                        .expect_uint("status");
                    if status == parcall::STATUS_FAILED {
                        self.cancel_parcall_frame(pf)?;
                    }
                    if !self.try_dispatch_work(Resume::ToWait { addr: p })? {
                        self.wk.status = WorkerStatus::WaitingAtPcall { addr: p, pf };
                    }
                    return Ok(());
                }
            }
            Instr::GoalSuccess => {
                return self.finish_goal_success();
            }

            // ---------------- misc ----------------
            Instr::Jump { addr } => {
                next = *addr;
            }
            Instr::FailInstr => {
                return self.backtrack();
            }
            Instr::Halt => {
                self.query_succeeded();
                return Ok(());
            }
            Instr::NoOp => {}
        }

        self.wk.p = next;
        Ok(())
    }

    /// Shared implementation of `get_constant` / `get_integer` / `get_nil`:
    /// unify the argument register with an atomic cell.
    fn get_atomic(&mut self, arg: Cell, atomic: Cell) -> EngineResult<bool> {
        match self.deref(arg) {
            Cell::Ref(addr) => {
                self.bind(addr, atomic)?;
                Ok(true)
            }
            other => Ok(other == atomic),
        }
    }

    /// Shared implementation of write/read mode `unify_constant` and friends.
    fn unify_atomic(&mut self, atomic: Cell) -> EngineResult<bool> {
        match self.wk.mode {
            Mode::Write => {
                self.heap_push(atomic)?;
                Ok(true)
            }
            Mode::Read => {
                let s = self.wk.s;
                let obj = self.object_for_addr(s);
                let c = self.mem_read(s, obj);
                self.wk.s = s + 1;
                match self.deref(c) {
                    Cell::Ref(addr) => {
                        self.bind(addr, atomic)?;
                        Ok(true)
                    }
                    other => Ok(other == atomic),
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Flattened dispatch (the default fast path)
    // -----------------------------------------------------------------

    /// Execute up to `max` instructions through the dense pre-decoded
    /// stream, keeping the program counter in a local for the whole batch.
    ///
    /// The counter is written back to `wk.p` at the safe points where
    /// something else may observe or redirect it: batch exit (steal/cancel
    /// boundaries, `end_round`), parking at `pcall_wait`, and before
    /// returning an error.  Handlers that transfer control through the
    /// worker (backtracking, goal start/finish) update `wk.p` themselves
    /// and return [`Flow::Reload`].
    /// The loop is two-level: the outer level re-checks the full set of
    /// exit conditions (budget, worker status, query completion), while the
    /// hot inner level checks only the instruction budget.  This is sound
    /// because every handler that can park the worker or finish the query
    /// returns [`Flow::Reload`] (or an error) — `Next`/`Jump` outcomes
    /// leave the worker `Running` and the query open by construction, so
    /// re-testing those conditions per instruction is pure overhead.  Under
    /// the relaxed backend another PE may finish the query mid-batch; the
    /// worker then runs at most the rest of its (small, fixed) relaxed
    /// batch before the driver observes the flag, exactly as it may already
    /// overrun by the instructions in flight before its next boundary.
    pub(crate) fn exec_batch_flat(&mut self, max: u32) -> EngineResult<u32> {
        let core = self.core;
        let dense = core.program.dense.code.as_slice();
        let mut n = 0u32;
        let mut p = self.wk.p;
        let result = 'outer: loop {
            if n >= max || self.wk.status != WorkerStatus::Running || core.halted() {
                break Ok(());
            }
            loop {
                self.wk.instructions += 1;
                n += 1;
                debug_assert!((p as usize) < dense.len(), "program counter out of the code area");
                // SAFETY: every code address in a loaded program (entry
                // points, saved continuations, choice-point alternatives)
                // lies inside the code area, and the dense stream has
                // exactly one slot per instruction; the debug assertion
                // above checks the invariant in debug builds.
                let di = unsafe { *dense.get_unchecked(p as usize) };
                match self.exec_flat(di, p) {
                    Ok(Flow::Next) => p += 1,
                    Ok(Flow::Jump(addr)) => p = addr,
                    Ok(Flow::Reload) => {
                        p = self.wk.p;
                        continue 'outer;
                    }
                    Err(e) => {
                        self.wk.p = p;
                        break 'outer Err(e);
                    }
                }
                if n >= max {
                    break 'outer Ok(());
                }
            }
        };
        self.wk.p = p;
        // Batch boundary: fold the deferred fast-path reference counts back
        // into the arena counters before the driver (or another PE's view
        // of the statistics) can observe them.
        self.flush_ref_delta();
        if n > 0 {
            core.steps.fetch_add(n as u64, Ordering::Relaxed);
        }
        // Scheduler telemetry: classify the exit cause — quantum exhausted
        // (the driver re-enters immediately) against leaving the running
        // state (parked at a wait, idle, cancelled, or query over).  One
        // predictable branch per batch, amortised over `max` instructions.
        if result.is_ok() {
            if self.wk.status == WorkerStatus::Running && !core.halted() {
                self.wk.batch_exits_budget += 1;
            } else {
                self.wk.batch_exits_park += 1;
            }
        }
        result.map(|_| n)
    }

    /// Handle a failure inside the flat loop: run the backward-execution
    /// machinery, then — when the worker is still `Running` (the common
    /// case: the failure restored one of this PE's own choice points) —
    /// continue at the restored `wk.p` without re-entering the outer loop.
    /// Cold outcomes (goal failure that parks the worker, deferred
    /// cancellation, query failure) return [`Flow::Reload`], whose
    /// condition re-check routes control back to the driver.
    #[inline(always)]
    fn fail(&mut self) -> EngineResult<Flow> {
        self.backtrack()?;
        Ok(if self.wk.status == WorkerStatus::Running { Flow::Jump(self.wk.p) } else { Flow::Reload })
    }

    /// Execute one pre-decoded instruction.  `p` is its address; semantics
    /// are arm-for-arm those of [`Step::exec_instr`] (the differential suite
    /// pins both paths to byte-identical traces).
    #[inline(always)]
    fn exec_flat(&mut self, di: DenseInstr, p: CodeAddr) -> EngineResult<Flow> {
        match di.op {
            // ---------------- put ----------------
            DenseOp::PutVariable => {
                match decode_reg(di.b) {
                    Reg::X(n) => {
                        let var = self.new_heap_var()?;
                        self.wk.x[n as usize] = var;
                        self.wk.x[di.c as usize] = var;
                    }
                    Reg::Y(n) => {
                        let addr = self.y_addr(n)?;
                        self.mem_write(addr, Cell::Ref(addr), ObjectKind::EnvPermVar);
                        self.wk.x[di.c as usize] = Cell::Ref(addr);
                    }
                }
                Ok(Flow::Next)
            }
            DenseOp::PutValue => {
                let c = self.read_reg(decode_reg(di.b))?;
                self.wk.x[di.c as usize] = c;
                Ok(Flow::Next)
            }
            DenseOp::PutUnsafeValue => {
                let c = self.read_reg(Reg::Y(di.b))?;
                let g = self.globalize(c)?;
                self.wk.x[di.c as usize] = g;
                Ok(Flow::Next)
            }
            DenseOp::PutConstant => {
                self.wk.x[di.b as usize] = Cell::Con(Atom(di.c));
                Ok(Flow::Next)
            }
            DenseOp::PutInteger => {
                self.wk.x[di.b as usize] = Cell::Int(self.dense_int(di.c));
                Ok(Flow::Next)
            }
            DenseOp::PutNil => {
                self.wk.x[di.b as usize] = Cell::Con(known::NIL);
                Ok(Flow::Next)
            }
            DenseOp::PutStructure => {
                let addr = self.heap_push(Cell::Fun(Atom(di.c), di.a))?;
                self.wk.x[di.b as usize] = Cell::Str(addr);
                self.wk.mode = Mode::Write;
                Ok(Flow::Next)
            }
            DenseOp::PutList => {
                let h = self.wk.h;
                self.wk.x[di.b as usize] = Cell::Lis(h);
                self.wk.mode = Mode::Write;
                Ok(Flow::Next)
            }

            // ---------------- get ----------------
            DenseOp::GetVariable => {
                let c = self.wk.x[di.c as usize];
                self.write_reg(decode_reg(di.b), c)?;
                Ok(Flow::Next)
            }
            DenseOp::GetValue => {
                let c = self.read_reg(decode_reg(di.b))?;
                let arg = self.wk.x[di.c as usize];
                if !self.unify(c, arg)? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::GetConstant => {
                let arg = self.wk.x[di.b as usize];
                if !self.get_atomic(arg, Cell::Con(Atom(di.c)))? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::GetInteger => {
                let arg = self.wk.x[di.b as usize];
                if !self.get_atomic(arg, Cell::Int(self.dense_int(di.c)))? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::GetNil => {
                let arg = self.wk.x[di.b as usize];
                if !self.get_atomic(arg, Cell::Con(known::NIL))? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::GetStructure => {
                let arg = self.wk.x[di.b as usize];
                match self.deref(arg) {
                    Cell::Ref(addr) => {
                        let fun_addr = self.heap_push(Cell::Fun(Atom(di.c), di.a))?;
                        self.bind(addr, Cell::Str(fun_addr))?;
                        self.wk.mode = Mode::Write;
                    }
                    Cell::Str(pp) => {
                        let fun = self.mem_read(pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f2, n2) if f2 == Atom(di.c) && n2 == di.a => {
                                self.wk.s = pp + 1;
                                self.wk.mode = Mode::Read;
                            }
                            _ => {
                                return self.fail();
                            }
                        }
                    }
                    _ => {
                        return self.fail();
                    }
                }
                Ok(Flow::Next)
            }
            DenseOp::GetList => {
                let arg = self.wk.x[di.b as usize];
                match self.deref(arg) {
                    Cell::Ref(addr) => {
                        let h = self.wk.h;
                        self.bind(addr, Cell::Lis(h))?;
                        self.wk.mode = Mode::Write;
                    }
                    Cell::Lis(pp) => {
                        self.wk.s = pp;
                        self.wk.mode = Mode::Read;
                    }
                    _ => {
                        return self.fail();
                    }
                }
                Ok(Flow::Next)
            }

            // ---------------- unify ----------------
            DenseOp::UnifyVariable => {
                match self.wk.mode {
                    Mode::Read => {
                        let s = self.wk.s;
                        let obj = self.object_for_addr(s);
                        let c = self.mem_read(s, obj);
                        self.wk.s = s + 1;
                        self.write_reg(decode_reg(di.b), c)?;
                    }
                    Mode::Write => {
                        let var = self.new_heap_var()?;
                        self.write_reg(decode_reg(di.b), var)?;
                    }
                }
                Ok(Flow::Next)
            }
            DenseOp::UnifyValue => {
                match self.wk.mode {
                    Mode::Read => {
                        let s = self.wk.s;
                        let obj = self.object_for_addr(s);
                        let target = self.mem_read(s, obj);
                        self.wk.s = s + 1;
                        let c = self.read_reg(decode_reg(di.b))?;
                        if !self.unify(c, target)? {
                            return self.fail();
                        }
                    }
                    Mode::Write => {
                        let c = self.read_reg(decode_reg(di.b))?;
                        let g = self.globalize(c)?;
                        self.heap_push(g)?;
                    }
                }
                Ok(Flow::Next)
            }
            DenseOp::UnifyConstant => {
                if !self.unify_atomic(Cell::Con(Atom(di.c)))? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::UnifyInteger => {
                if !self.unify_atomic(Cell::Int(self.dense_int(di.c)))? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::UnifyNil => {
                if !self.unify_atomic(Cell::Con(known::NIL))? {
                    return self.fail();
                }
                Ok(Flow::Next)
            }
            DenseOp::UnifyVoid => {
                match self.wk.mode {
                    Mode::Read => self.wk.s += di.a as u32,
                    Mode::Write => {
                        for _ in 0..di.a {
                            self.new_heap_var()?;
                        }
                    }
                }
                Ok(Flow::Next)
            }

            // ---------------- control ----------------
            DenseOp::Allocate => {
                let n = di.b as u32;
                let e_new = self.wk.local_top;
                self.check_cached_top(self.wk.local_end, Area::LocalStack, e_new + env::size(n))?;
                let (e_old, cp) = (self.wk.e, self.wk.cp);
                self.mem_write(e_new + env::CE, Cell::Uint(e_old), ObjectKind::EnvControl);
                self.mem_write(e_new + env::CP, Cell::Code(cp), ObjectKind::EnvControl);
                self.mem_write(e_new + env::NVARS, Cell::Uint(n), ObjectKind::EnvControl);
                let wk = &mut *self.wk;
                wk.e = e_new;
                wk.local_top = e_new + env::size(n);
                // Keep the frame's control words register-resident: a
                // `deallocate` reaching this frame while it is still the
                // topmost environment consumes them without re-reading the
                // frame (the reads are accounted as if performed).
                wk.env_cache_e = e_new;
                wk.env_cache_ce = e_old;
                wk.env_cache_cp = cp;
                wk.env_cache_n = n;
                wk.update_high_water();
                Ok(Flow::Next)
            }
            DenseOp::Deallocate => {
                let e = self.wk.e;
                let (ce, cp, n) = if self.core.mem.fast() && self.wk.env_cache_e == e {
                    // Register-cache hit: the continuation words were
                    // written by this worker's own `allocate` and nothing
                    // restored `E` since (every such transition drops the
                    // cache).  Account the three frame reads the machine
                    // performs here so aggregate counters stay identical
                    // to the uncached path.
                    debug_assert_eq!(
                        self.core.mem.read_untraced(e + env::CE).expect_uint("env CE"),
                        self.wk.env_cache_ce
                    );
                    debug_assert_eq!(
                        self.core.mem.read_untraced(e + env::CP).expect_code("env CP"),
                        self.wk.env_cache_cp
                    );
                    debug_assert_eq!(
                        self.core.mem.read_untraced(e + env::NVARS).expect_uint("env nvars"),
                        self.wk.env_cache_n
                    );
                    let wk = &mut *self.wk;
                    wk.ref_delta.counts[ObjectKind::EnvControl.index()][0] += 3;
                    wk.ref_delta.total += 3;
                    (wk.env_cache_ce, wk.env_cache_cp, wk.env_cache_n)
                } else {
                    let ce = self.mem_read(e + env::CE, ObjectKind::EnvControl).expect_uint("env CE");
                    let cp = self.mem_read(e + env::CP, ObjectKind::EnvControl).expect_code("env CP");
                    let n = self.mem_read(e + env::NVARS, ObjectKind::EnvControl).expect_uint("env nvars");
                    (ce, cp, n)
                };
                let wk = &mut *self.wk;
                if e + env::size(n) == wk.local_top {
                    // See `exec_instr`: recover the frame's space, but never
                    // below the newest choice point's protected region.
                    wk.local_top = e.max(wk.stack_boundary);
                }
                wk.cp = cp;
                wk.e = ce;
                // The popped frame is gone; the parent's words were never
                // cached.
                wk.env_cache_e = NONE_ADDR;
                Ok(Flow::Next)
            }
            DenseOp::CallCode => {
                self.core.inferences.fetch_add(1, Ordering::Relaxed);
                let wk = &mut *self.wk;
                wk.prof_switch(di.c);
                wk.cp = p + 1;
                wk.num_args = di.a;
                wk.b0 = wk.b;
                Ok(Flow::Jump(di.c))
            }
            DenseOp::CallBuiltin => match self.exec_builtin(self.dense_builtin(di.c))? {
                BuiltinOutcome::Succeed => Ok(Flow::Next),
                BuiltinOutcome::Fail => self.fail(),
                BuiltinOutcome::Halted => Ok(Flow::Reload),
            },
            DenseOp::ExecuteCode => {
                self.core.inferences.fetch_add(1, Ordering::Relaxed);
                let wk = &mut *self.wk;
                wk.prof_switch(di.c);
                wk.num_args = di.a;
                wk.b0 = wk.b;
                Ok(Flow::Jump(di.c))
            }
            DenseOp::ExecuteBuiltin => match self.exec_builtin(self.dense_builtin(di.c))? {
                BuiltinOutcome::Succeed => Ok(Flow::Jump(self.wk.cp)),
                BuiltinOutcome::Fail => self.fail(),
                BuiltinOutcome::Halted => Ok(Flow::Reload),
            },
            DenseOp::CallHost => {
                if !self.suspend_host(di.c, di.a, p + 1) {
                    // Lost the halt race: keep `p` at this instruction so it
                    // re-executes if control ever comes back.
                    self.wk.p = p;
                }
                Ok(Flow::Reload)
            }
            DenseOp::ExecuteHost => {
                let cont = self.wk.cp;
                if !self.suspend_host(di.c, di.a, cont) {
                    self.wk.p = p;
                }
                Ok(Flow::Reload)
            }
            DenseOp::CallUnresolved | DenseOp::ExecuteUnresolved => {
                Err(EngineError::BadInstruction { addr: p, what: "unresolved call target".into() })
            }
            DenseOp::Proceed => Ok(Flow::Jump(self.wk.cp)),

            // ---------------- choice points & indexing ----------------
            DenseOp::Try => {
                self.push_choice_point(p + 1)?;
                Ok(Flow::Jump(di.c))
            }
            DenseOp::Retry => {
                self.retry_update_next_clause(p + 1)?;
                Ok(Flow::Jump(di.c))
            }
            DenseOp::Trust => {
                self.pop_choice_point()?;
                Ok(Flow::Jump(di.c))
            }
            DenseOp::TryMeElse => {
                self.push_choice_point(di.c)?;
                Ok(Flow::Next)
            }
            DenseOp::RetryMeElse => {
                self.retry_update_next_clause(di.c)?;
                Ok(Flow::Next)
            }
            DenseOp::TrustMe => {
                self.pop_choice_point()?;
                Ok(Flow::Next)
            }
            DenseOp::SwitchOnTerm => {
                let quad = self.core.program.dense.term_quads[di.c as usize];
                let arg = self.wk.x[1];
                let next = match self.deref(arg) {
                    Cell::Ref(_) => quad[0],
                    Cell::Con(_) | Cell::Int(_) => quad[1],
                    Cell::Lis(_) => quad[2],
                    Cell::Str(_) => quad[3],
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("switch_on_term saw a control cell {other:?}"),
                        })
                    }
                };
                Ok(Flow::Jump(next))
            }
            DenseOp::SwitchOnConstant => {
                let arg = self.wk.x[1];
                let key = match self.deref(arg) {
                    Cell::Con(a) => ConstKey::Atom(a),
                    Cell::Int(i) => ConstKey::Int(i),
                    _ => {
                        return self.fail();
                    }
                };
                let table = &self.core.program.dense.const_tables[di.c as usize];
                let next = table.iter().find(|(k, _)| *k == key).map(|(_, a)| *a).unwrap_or(di.d);
                Ok(Flow::Jump(next))
            }
            DenseOp::SwitchOnStructure => {
                let arg = self.wk.x[1];
                match self.deref(arg) {
                    Cell::Str(pp) => {
                        let fun = self.mem_read(pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f, n) => {
                                let table = &self.core.program.dense.struct_tables[di.c as usize];
                                let next = table
                                    .iter()
                                    .find(|((tf, tn), _)| *tf == f && *tn == n)
                                    .map(|(_, a)| *a)
                                    .unwrap_or(di.d);
                                Ok(Flow::Jump(next))
                            }
                            _ => self.fail(),
                        }
                    }
                    _ => self.fail(),
                }
            }

            // ---------------- cut ----------------
            DenseOp::NeckCut => {
                // Cut to the call-time barrier `B0` — see `exec_instr`.
                let target = self.wk.b0;
                if self.wk.b != target {
                    self.wk.b = target;
                    self.wk.cp_top = NONE_ADDR;
                    self.refresh_backtrack_boundaries()?;
                    self.recede_control_top();
                }
                Ok(Flow::Next)
            }
            DenseOp::GetLevel => {
                let b0 = self.wk.b0;
                self.write_reg(Reg::Y(di.b), Cell::Uint(b0))?;
                Ok(Flow::Next)
            }
            DenseOp::CutTo => {
                let target = self.read_reg(Reg::Y(di.b))?.expect_uint("cut barrier");
                if self.wk.b != target {
                    self.wk.b = target;
                    self.wk.cp_top = NONE_ADDR;
                    self.refresh_backtrack_boundaries()?;
                    self.recede_control_top();
                }
                Ok(Flow::Next)
            }

            // ---------------- parallel ----------------
            DenseOp::CheckGround => {
                let c = self.read_reg(decode_reg(di.b))?;
                if !self.is_ground(c)? {
                    return Ok(Flow::Jump(di.c));
                }
                Ok(Flow::Next)
            }
            DenseOp::CheckIndep => {
                let c1 = self.read_reg(decode_reg(di.b))?;
                let c2 = self.read_reg(decode_reg(di.c as u16))?;
                if !self.independent(c1, c2)? {
                    return Ok(Flow::Jump(di.d));
                }
                Ok(Flow::Next)
            }
            DenseOp::PcallAlloc => {
                self.pcall_alloc(di.a as u32)?;
                Ok(Flow::Next)
            }
            DenseOp::PcallGoal => {
                self.pcall_goal(di.c, di.a as u32, di.b as u32)?;
                Ok(Flow::Next)
            }
            DenseOp::PcallGoalBad => {
                // Reproduce the classic path's diagnostic, including the
                // offending target (cold path: re-read the enum form).
                let what = match &self.core.program.code[p as usize] {
                    Instr::PcallGoal { target, .. } => {
                        format!("pcall_goal target must be user code, found {target:?}")
                    }
                    _ => "pcall_goal target must be user code".to_string(),
                };
                Err(EngineError::BadInstruction { addr: p, what })
            }
            DenseOp::PcallWait => self.pcall_wait(p),
            DenseOp::GoalSuccess => {
                self.finish_goal_success()?;
                // A parent resumed at its wait (`Resume::ToWait`) is
                // `Running` again with `wk.p` at the wait instruction:
                // continue inline rather than bouncing through the driver.
                // Idle/cancelling wind-downs park and take the cold exit.
                if self.wk.status == WorkerStatus::Running {
                    Ok(Flow::Jump(self.wk.p))
                } else {
                    Ok(Flow::Reload)
                }
            }

            // ---------------- misc ----------------
            DenseOp::Jump => Ok(Flow::Jump(di.c)),
            DenseOp::FailInstr => self.fail(),
            DenseOp::Halt => {
                // `wk.p` intentionally keeps pointing at the halt
                // instruction, as on the classic path.
                self.wk.p = p;
                self.query_succeeded();
                Ok(Flow::Reload)
            }
            DenseOp::NoOp => Ok(Flow::Next),
        }
    }

    /// Fetch an integer literal from the dense pool.
    #[inline(always)]
    fn dense_int(&self, idx: u32) -> i64 {
        debug_assert!((idx as usize) < self.core.program.dense.ints.len());
        // SAFETY: pool indices are emitted by `DenseCode::build` and always
        // in bounds.
        unsafe { *self.core.program.dense.ints.get_unchecked(idx as usize) }
    }

    /// Fetch a builtin operand from the dense pool.
    #[inline(always)]
    fn dense_builtin(&self, idx: u32) -> pwam_compiler::Builtin {
        debug_assert!((idx as usize) < self.core.program.dense.builtins.len());
        // SAFETY: as for `dense_int`.
        unsafe { *self.core.program.dense.builtins.get_unchecked(idx as usize) }
    }

    /// `retry` / `retry_me_else`: redirect the current choice point's
    /// next-clause word.
    #[inline(always)]
    fn retry_update_next_clause(&mut self, alt: CodeAddr) -> EngineResult<()> {
        let b = self.wk.b;
        let nargs = self.mem_read(b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        self.mem_write(choice::next_clause(b, nargs), Cell::Code(alt), ObjectKind::ChoicePoint);
        Ok(())
    }

    /// `pcall_alloc`: push a Parcall Frame with `n` goal slots.
    fn pcall_alloc(&mut self, n: u32) -> EngineResult<()> {
        let pe = self.wk.id;
        let pf_new = self.wk.local_top;
        self.check_cached_top(self.wk.local_end, Area::LocalStack, pf_new + parcall::size(n))?;
        let prev = self.wk.pf;
        let mem = &self.core.mem;
        mem.write(pe, pf_new + parcall::NGOALS, Cell::Uint(n), ObjectKind::ParcallLocal);
        mem.write(pe, pf_new + parcall::TO_SCHEDULE, Cell::Uint(n), ObjectKind::ParcallCount);
        mem.write(pe, pf_new + parcall::COMPLETED, Cell::Uint(0), ObjectKind::ParcallCount);
        mem.write(pe, pf_new + parcall::STATUS, Cell::Uint(parcall::STATUS_OK), ObjectKind::ParcallLocal);
        mem.write(pe, pf_new + parcall::PARENT_PE, Cell::Uint(self.w() as u32), ObjectKind::ParcallLocal);
        mem.write(pe, pf_new + parcall::PREV_PF, Cell::Uint(prev), ObjectKind::ParcallLocal);
        // The parcall's backtrack point: `pcall_wait` commits the CGE to its
        // first solution by restoring B to this value.
        mem.write(pe, pf_new + parcall::ENTRY_B, Cell::Uint(self.wk.b), ObjectKind::ParcallLocal);
        // Slot statuses start PENDING — see `exec_instr` for why the scan
        // must never observe a stale TAKEN cell.
        for k in 0..n {
            mem.write(
                pe,
                parcall::slot_status(pf_new, k),
                Cell::Uint(parcall::SLOT_PENDING),
                ObjectKind::ParcallGlobal,
            );
        }
        let wk = &mut *self.wk;
        wk.pf = pf_new;
        wk.local_top = pf_new + parcall::size(n);
        wk.update_high_water();
        self.core.parcalls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// `pcall_goal`: push a Goal Frame for `code` onto this worker's board.
    fn pcall_goal(&mut self, code: CodeAddr, arity: u32, slot: u32) -> EngineResult<()> {
        let pe = self.wk.id;
        let pf = self.wk.pf;
        // The own board's lock is held across top read, word writes and the
        // push — see `exec_instr` for the race this prevents.
        let w = self.w();
        let core = self.core;
        {
            let mut board = core.boards[w].lock().unwrap();
            let g = board.goal_top;
            core.mem.check_top(w, Area::GoalStack, g + goal_frame::size(arity))?;
            core.mem.write(pe, g + goal_frame::CODE, Cell::Code(code), ObjectKind::GoalFrame);
            core.mem.write(pe, g + goal_frame::ARITY, Cell::Uint(arity), ObjectKind::GoalFrame);
            core.mem.write(pe, g + goal_frame::PF, Cell::Uint(pf), ObjectKind::GoalFrame);
            core.mem.write(pe, g + goal_frame::SLOT, Cell::Uint(slot), ObjectKind::GoalFrame);
            for i in 0..arity {
                let c = self.wk.x[(i + 1) as usize];
                let g_c = self.globalize(c)?;
                core.mem.write(pe, goal_frame::arg(g, i), g_c, ObjectKind::GoalFrame);
            }
            board.goal_frames.push(g);
            board.goal_top = g + goal_frame::size(arity);
            self.wk.goal_top = board.goal_top;
        }
        self.wk.update_high_water();
        Ok(())
    }

    /// `pcall_wait` for the flattened path; `p` is the instruction's own
    /// address (the wait re-executes it until the frame completes).
    fn pcall_wait(&mut self, p: CodeAddr) -> EngineResult<Flow> {
        let pe = self.wk.id;
        let pf = self.wk.pf;
        if pf == NONE_ADDR {
            return Err(EngineError::BadInstruction {
                addr: p,
                what: "pcall_wait without a Parcall Frame".into(),
            });
        }
        let n = self.core.mem.read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal).expect_uint("ngoals");
        let done = self
            .core
            .mem
            .read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount)
            .expect_uint("completed");
        if done >= n {
            let status =
                self.core.mem.read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal).expect_uint("status");
            self.consume_messages();
            // Commit the parcall to its first solution — see `exec_instr`.
            let entry_b = self
                .core
                .mem
                .read(pe, pf + parcall::ENTRY_B, ObjectKind::ParcallLocal)
                .expect_uint("entry b");
            if self.wk.b != entry_b {
                self.wk.b = entry_b;
                self.wk.cp_top = NONE_ADDR;
                self.refresh_backtrack_boundaries()?;
                self.recede_control_top();
            }
            if status != parcall::STATUS_OK {
                return self.fail();
            }
            let prev = self
                .core
                .mem
                .read(pe, pf + parcall::PREV_PF, ObjectKind::ParcallLocal)
                .expect_uint("prev pf");
            let wk = &mut *self.wk;
            if pf + parcall::size(n) == wk.local_top {
                // As in `deallocate`: never recede below the protected region.
                wk.local_top = pf.max(wk.stack_boundary);
            }
            wk.pf = prev;
            Ok(Flow::Next)
        } else {
            // Not complete yet — mirror `exec_instr`: cancel a failing frame,
            // then execute one of our own goals or park.  The program counter
            // stays at the wait instruction.
            self.wk.p = p;
            let status =
                self.core.mem.read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal).expect_uint("status");
            if status == parcall::STATUS_FAILED {
                self.cancel_parcall_frame(pf)?;
            }
            if !self.try_dispatch_work(Resume::ToWait { addr: p })? {
                self.wk.status = WorkerStatus::WaitingAtPcall { addr: p, pf };
                return Ok(Flow::Reload);
            }
            // A goal from our own board was dispatched: `start_goal` left
            // the worker `Running` with `wk.p` at the goal's entry point —
            // stay in the flat loop instead of exiting to the driver.
            debug_assert_eq!(self.wk.status, WorkerStatus::Running);
            Ok(Flow::Jump(self.wk.p))
        }
    }
}
