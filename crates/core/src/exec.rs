//! Instruction dispatch: execution of one abstract-machine instruction.
//!
//! All instructions run as methods on `Step` — one worker's exclusive
//! state paired with the shared [`crate::engine::EngineCore`] — so the same
//! dispatch serves the deterministic backends (one `Step` at a time) and the
//! relaxed backend (one `Step` per OS thread, concurrently).

use crate::builtins::BuiltinOutcome;
use crate::cell::{Cell, NONE_ADDR};
use crate::engine::Step;
use crate::error::{EngineError, EngineResult};
use crate::frames::{choice, env, goal_frame, parcall};
use crate::known;
use crate::layout::{Area, ObjectKind};
use crate::worker::{Mode, Resume, WorkerStatus};
use pwam_compiler::{CallTarget, ConstKey, Instr, Reg};
use std::sync::atomic::Ordering;

impl<'a, 'p> Step<'a, 'p> {
    /// Execute the instruction at this worker's current program counter.
    pub(crate) fn exec_instr(&mut self) -> EngineResult<()> {
        let program = self.core.program;
        let p = self.wk.p;
        let instr = &program.code[p as usize];
        let pe = self.wk.id;
        let mut next = p + 1;

        match instr {
            // ---------------- put ----------------
            Instr::PutVariable { v, a } => match v {
                Reg::X(n) => {
                    let var = self.new_heap_var()?;
                    self.wk.x[*n as usize] = var;
                    self.wk.x[*a as usize] = var;
                }
                Reg::Y(n) => {
                    let addr = self.y_addr(*n)?;
                    self.core.mem.write(pe, addr, Cell::Ref(addr), ObjectKind::EnvPermVar);
                    self.wk.x[*a as usize] = Cell::Ref(addr);
                }
            },
            Instr::PutValue { v, a } => {
                let c = self.read_reg(*v)?;
                self.wk.x[*a as usize] = c;
            }
            Instr::PutUnsafeValue { y, a } => {
                let c = self.read_reg(Reg::Y(*y))?;
                let g = self.globalize(c)?;
                self.wk.x[*a as usize] = g;
            }
            Instr::PutConstant { c, a } => {
                self.wk.x[*a as usize] = Cell::Con(*c);
            }
            Instr::PutInteger { i, a } => {
                self.wk.x[*a as usize] = Cell::Int(*i);
            }
            Instr::PutNil { a } => {
                self.wk.x[*a as usize] = Cell::Con(known::NIL);
            }
            Instr::PutStructure { f, n, a } => {
                let addr = self.heap_push(Cell::Fun(*f, *n))?;
                self.wk.x[*a as usize] = Cell::Str(addr);
                self.wk.mode = Mode::Write;
            }
            Instr::PutList { a } => {
                let h = self.wk.h;
                self.wk.x[*a as usize] = Cell::Lis(h);
                self.wk.mode = Mode::Write;
            }

            // ---------------- get ----------------
            Instr::GetVariable { v, a } => {
                let c = self.wk.x[*a as usize];
                self.write_reg(*v, c)?;
            }
            Instr::GetValue { v, a } => {
                let c = self.read_reg(*v)?;
                let arg = self.wk.x[*a as usize];
                if !self.unify(c, arg)? {
                    return self.backtrack();
                }
            }
            Instr::GetConstant { c, a } => {
                let arg = self.wk.x[*a as usize];
                if !self.get_atomic(arg, Cell::Con(*c))? {
                    return self.backtrack();
                }
            }
            Instr::GetInteger { i, a } => {
                let arg = self.wk.x[*a as usize];
                if !self.get_atomic(arg, Cell::Int(*i))? {
                    return self.backtrack();
                }
            }
            Instr::GetNil { a } => {
                let arg = self.wk.x[*a as usize];
                if !self.get_atomic(arg, Cell::Con(known::NIL))? {
                    return self.backtrack();
                }
            }
            Instr::GetStructure { f, n, a } => {
                let arg = self.wk.x[*a as usize];
                match self.deref(arg) {
                    Cell::Ref(addr) => {
                        let fun_addr = self.heap_push(Cell::Fun(*f, *n))?;
                        self.bind(addr, Cell::Str(fun_addr))?;
                        self.wk.mode = Mode::Write;
                    }
                    Cell::Str(pp) => {
                        let fun = self.core.mem.read(pe, pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f2, n2) if f2 == *f && n2 == *n => {
                                self.wk.s = pp + 1;
                                self.wk.mode = Mode::Read;
                            }
                            _ => return self.backtrack(),
                        }
                    }
                    _ => return self.backtrack(),
                }
            }
            Instr::GetList { a } => {
                let arg = self.wk.x[*a as usize];
                match self.deref(arg) {
                    Cell::Ref(addr) => {
                        let h = self.wk.h;
                        self.bind(addr, Cell::Lis(h))?;
                        self.wk.mode = Mode::Write;
                    }
                    Cell::Lis(pp) => {
                        self.wk.s = pp;
                        self.wk.mode = Mode::Read;
                    }
                    _ => return self.backtrack(),
                }
            }

            // ---------------- unify ----------------
            Instr::UnifyVariable { v } => match self.wk.mode {
                Mode::Read => {
                    let s = self.wk.s;
                    let c = self.core.mem.read(pe, s, self.core.object_for_addr(s));
                    self.wk.s = s + 1;
                    self.write_reg(*v, c)?;
                }
                Mode::Write => {
                    let var = self.new_heap_var()?;
                    self.write_reg(*v, var)?;
                }
            },
            Instr::UnifyValue { v } | Instr::UnifyLocalValue { v } => match self.wk.mode {
                Mode::Read => {
                    let s = self.wk.s;
                    let target = self.core.mem.read(pe, s, self.core.object_for_addr(s));
                    self.wk.s = s + 1;
                    let c = self.read_reg(*v)?;
                    if !self.unify(c, target)? {
                        return self.backtrack();
                    }
                }
                Mode::Write => {
                    let c = self.read_reg(*v)?;
                    let g = self.globalize(c)?;
                    self.heap_push(g)?;
                }
            },
            Instr::UnifyConstant { c } => {
                if !self.unify_atomic(Cell::Con(*c))? {
                    return self.backtrack();
                }
            }
            Instr::UnifyInteger { i } => {
                if !self.unify_atomic(Cell::Int(*i))? {
                    return self.backtrack();
                }
            }
            Instr::UnifyNil => {
                if !self.unify_atomic(Cell::Con(known::NIL))? {
                    return self.backtrack();
                }
            }
            Instr::UnifyVoid { n } => match self.wk.mode {
                Mode::Read => self.wk.s += *n as u32,
                Mode::Write => {
                    for _ in 0..*n {
                        self.new_heap_var()?;
                    }
                }
            },

            // ---------------- control ----------------
            Instr::Allocate { n } => {
                let e_new = self.wk.local_top;
                self.core.mem.check_top(self.w(), Area::LocalStack, e_new + env::size(*n as u32))?;
                let (e_old, cp) = (self.wk.e, self.wk.cp);
                self.core.mem.write(pe, e_new + env::CE, Cell::Uint(e_old), ObjectKind::EnvControl);
                self.core.mem.write(pe, e_new + env::CP, Cell::Code(cp), ObjectKind::EnvControl);
                self.core.mem.write(pe, e_new + env::NVARS, Cell::Uint(*n as u32), ObjectKind::EnvControl);
                let wk = &mut *self.wk;
                wk.e = e_new;
                wk.local_top = e_new + env::size(*n as u32);
                wk.update_high_water();
            }
            Instr::Deallocate => {
                let e = self.wk.e;
                let ce = self.core.mem.read(pe, e + env::CE, ObjectKind::EnvControl).expect_uint("env CE");
                let cp = self.core.mem.read(pe, e + env::CP, ObjectKind::EnvControl).expect_code("env CP");
                let n =
                    self.core.mem.read(pe, e + env::NVARS, ObjectKind::EnvControl).expect_uint("env nvars");
                let wk = &mut *self.wk;
                if e + env::size(n) == wk.local_top {
                    // Recover the frame's space, but never below the current
                    // choice point's protected region (`stack_boundary` is
                    // the local top the newest choice point saved): a
                    // choice point pushed after this environment was
                    // allocated restores `saved_e` into it on backtracking,
                    // so its slots must survive until then.  This is the
                    // split-stack analogue of the single-stack WAM's
                    // `E = max(E, B)` allocation rule; without it a later
                    // `allocate` reuses the frame and the resumed
                    // alternative reads clobbered (or dangling) slots.
                    wk.local_top = e.max(wk.stack_boundary);
                }
                wk.cp = cp;
                wk.e = ce;
            }
            Instr::Call { target, arity } => match target {
                CallTarget::Code(addr) => {
                    self.core.inferences.fetch_add(1, Ordering::Relaxed);
                    let wk = &mut *self.wk;
                    wk.cp = p + 1;
                    wk.num_args = *arity;
                    wk.b0 = wk.b;
                    next = *addr;
                }
                CallTarget::Builtin(b) => match self.exec_builtin(*b)? {
                    BuiltinOutcome::Succeed => {}
                    BuiltinOutcome::Fail => return self.backtrack(),
                    BuiltinOutcome::Halted => return Ok(()),
                },
                CallTarget::Unresolved(_) => {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "unresolved call target".into(),
                    })
                }
            },
            Instr::Execute { target, arity } => match target {
                CallTarget::Code(addr) => {
                    self.core.inferences.fetch_add(1, Ordering::Relaxed);
                    let wk = &mut *self.wk;
                    wk.num_args = *arity;
                    wk.b0 = wk.b;
                    next = *addr;
                }
                CallTarget::Builtin(b) => match self.exec_builtin(*b)? {
                    BuiltinOutcome::Succeed => next = self.wk.cp,
                    BuiltinOutcome::Fail => return self.backtrack(),
                    BuiltinOutcome::Halted => return Ok(()),
                },
                CallTarget::Unresolved(_) => {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "unresolved call target".into(),
                    })
                }
            },
            Instr::Proceed => {
                next = self.wk.cp;
            }
            Instr::CallBuiltin { b } => match self.exec_builtin(*b)? {
                BuiltinOutcome::Succeed => {}
                BuiltinOutcome::Fail => return self.backtrack(),
                BuiltinOutcome::Halted => return Ok(()),
            },

            // ---------------- choice points & indexing ----------------
            Instr::Try { addr } => {
                self.push_choice_point(p + 1)?;
                next = *addr;
            }
            Instr::Retry { addr } => {
                let b = self.wk.b;
                let nargs = self
                    .core
                    .mem
                    .read(pe, b + choice::NARGS, ObjectKind::ChoicePoint)
                    .expect_uint("cp nargs");
                self.core.mem.write(
                    pe,
                    choice::next_clause(b, nargs),
                    Cell::Code(p + 1),
                    ObjectKind::ChoicePoint,
                );
                next = *addr;
            }
            Instr::Trust { addr } => {
                self.pop_choice_point()?;
                next = *addr;
            }
            Instr::TryMeElse { else_ } => {
                self.push_choice_point(*else_)?;
            }
            Instr::RetryMeElse { else_ } => {
                let b = self.wk.b;
                let nargs = self
                    .core
                    .mem
                    .read(pe, b + choice::NARGS, ObjectKind::ChoicePoint)
                    .expect_uint("cp nargs");
                self.core.mem.write(
                    pe,
                    choice::next_clause(b, nargs),
                    Cell::Code(*else_),
                    ObjectKind::ChoicePoint,
                );
            }
            Instr::TrustMe => {
                self.pop_choice_point()?;
            }
            Instr::SwitchOnTerm { var, con, lis, stru } => {
                let arg = self.wk.x[1];
                next = match self.deref(arg) {
                    Cell::Ref(_) => *var,
                    Cell::Con(_) | Cell::Int(_) => *con,
                    Cell::Lis(_) => *lis,
                    Cell::Str(_) => *stru,
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("switch_on_term saw a control cell {other:?}"),
                        })
                    }
                };
            }
            Instr::SwitchOnConstant { table, default } => {
                let arg = self.wk.x[1];
                let key = match self.deref(arg) {
                    Cell::Con(a) => ConstKey::Atom(a),
                    Cell::Int(i) => ConstKey::Int(i),
                    _ => return self.backtrack(),
                };
                next = table.iter().find(|(k, _)| *k == key).map(|(_, a)| *a).unwrap_or(*default);
            }
            Instr::SwitchOnStructure { table, default } => {
                let arg = self.wk.x[1];
                match self.deref(arg) {
                    Cell::Str(pp) => {
                        let fun = self.core.mem.read(pe, pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f, n) => {
                                next = table
                                    .iter()
                                    .find(|((tf, tn), _)| *tf == f && *tn == n)
                                    .map(|(_, a)| *a)
                                    .unwrap_or(*default);
                            }
                            _ => return self.backtrack(),
                        }
                    }
                    _ => return self.backtrack(),
                }
            }

            // ---------------- cut ----------------
            Instr::NeckCut => {
                return Err(EngineError::BadInstruction {
                    addr: p,
                    what: "neck_cut is not emitted by this compiler".into(),
                })
            }
            Instr::GetLevel { y } => {
                // Capture the cut barrier: choice points older than the call
                // of the current predicate survive a cut, everything newer
                // (including the clause-selection choice point) is discarded.
                let b0 = self.wk.b0;
                self.write_reg(Reg::Y(*y), Cell::Uint(b0))?;
            }
            Instr::CutTo { y } => {
                let target = self.read_reg(Reg::Y(*y))?.expect_uint("cut barrier");
                if self.wk.b != target {
                    self.wk.b = target;
                    self.refresh_backtrack_boundaries()?;
                    self.recede_control_top();
                }
            }

            // ---------------- builtins handled above; parallel below ----
            Instr::CheckGround { v, else_ } => {
                let c = self.read_reg(*v)?;
                if !self.is_ground(c)? {
                    next = *else_;
                }
            }
            Instr::CheckIndep { v1, v2, else_ } => {
                let c1 = self.read_reg(*v1)?;
                let c2 = self.read_reg(*v2)?;
                if !self.independent(c1, c2)? {
                    next = *else_;
                }
            }
            Instr::PcallAlloc { n } => {
                let n = *n as u32;
                let pf_new = self.wk.local_top;
                self.core.mem.check_top(self.w(), Area::LocalStack, pf_new + parcall::size(n))?;
                let prev = self.wk.pf;
                let mem = &self.core.mem;
                mem.write(pe, pf_new + parcall::NGOALS, Cell::Uint(n), ObjectKind::ParcallLocal);
                mem.write(pe, pf_new + parcall::TO_SCHEDULE, Cell::Uint(n), ObjectKind::ParcallCount);
                mem.write(pe, pf_new + parcall::COMPLETED, Cell::Uint(0), ObjectKind::ParcallCount);
                mem.write(
                    pe,
                    pf_new + parcall::STATUS,
                    Cell::Uint(parcall::STATUS_OK),
                    ObjectKind::ParcallLocal,
                );
                mem.write(
                    pe,
                    pf_new + parcall::PARENT_PE,
                    Cell::Uint(self.w() as u32),
                    ObjectKind::ParcallLocal,
                );
                mem.write(pe, pf_new + parcall::PREV_PF, Cell::Uint(prev), ObjectKind::ParcallLocal);
                // The parcall's backtrack point: `pcall_wait` commits the
                // CGE to its first solution by restoring B to this value,
                // discarding any choice points the inline branch left.
                mem.write(pe, pf_new + parcall::ENTRY_B, Cell::Uint(self.wk.b), ObjectKind::ParcallLocal);
                // Slot statuses start PENDING: the local stack reuses
                // backtracked-over words, so cancellation's slot scan must
                // never see a stale cell that happens to read as TAKEN.
                // The executing-PE words stay lazy — they are read only
                // behind a genuine TAKEN status, which a thief writes
                // *after* its own PE id.
                for k in 0..n {
                    mem.write(
                        pe,
                        parcall::slot_status(pf_new, k),
                        Cell::Uint(parcall::SLOT_PENDING),
                        ObjectKind::ParcallGlobal,
                    );
                }
                let wk = &mut *self.wk;
                wk.pf = pf_new;
                wk.local_top = pf_new + parcall::size(n);
                wk.update_high_water();
                self.core.parcalls.fetch_add(1, Ordering::Relaxed);
            }
            Instr::PcallGoal { target, arity, slot } => {
                let code = match target {
                    CallTarget::Code(a) => *a,
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("pcall_goal target must be user code, found {other:?}"),
                        })
                    }
                };
                let arity = *arity as u32;
                let pf = self.wk.pf;
                // The own board's lock is held across top read, word writes
                // and the push: a thief popping concurrently can then never
                // observe a half-written frame.  (`core` is copied out of
                // `self` so the guard does not pin `self` while globalize
                // mutates the worker.)
                let w = self.w();
                let core = self.core;
                {
                    let mut board = core.boards[w].lock().unwrap();
                    let g = board.goal_top;
                    core.mem.check_top(w, Area::GoalStack, g + goal_frame::size(arity))?;
                    core.mem.write(pe, g + goal_frame::CODE, Cell::Code(code), ObjectKind::GoalFrame);
                    core.mem.write(pe, g + goal_frame::ARITY, Cell::Uint(arity), ObjectKind::GoalFrame);
                    core.mem.write(pe, g + goal_frame::PF, Cell::Uint(pf), ObjectKind::GoalFrame);
                    core.mem.write(pe, g + goal_frame::SLOT, Cell::Uint(*slot as u32), ObjectKind::GoalFrame);
                    for i in 0..arity {
                        let c = self.wk.x[(i + 1) as usize];
                        let g_c = self.globalize(c)?;
                        core.mem.write(pe, goal_frame::arg(g, i), g_c, ObjectKind::GoalFrame);
                    }
                    board.goal_frames.push(g);
                    board.goal_top = g + goal_frame::size(arity);
                    self.wk.goal_top = board.goal_top;
                }
                self.wk.update_high_water();
            }
            Instr::PcallWait => {
                let pf = self.wk.pf;
                if pf == NONE_ADDR {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "pcall_wait without a Parcall Frame".into(),
                    });
                }
                let n = self
                    .core
                    .mem
                    .read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal)
                    .expect_uint("ngoals");
                let done = self
                    .core
                    .mem
                    .read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount)
                    .expect_uint("completed");
                if done >= n {
                    let status = self
                        .core
                        .mem
                        .read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal)
                        .expect_uint("status");
                    self.consume_messages();
                    // Commit the parcall to its first solution: discard any
                    // choice points the inline first branch left behind,
                    // mirroring the per-goal commit of the scheduled goals.
                    // (A cut inside the branch can never reach below the
                    // frame's entry B — barriers are captured at or above
                    // it — so this only ever discards, never resurrects.)
                    let entry_b = self
                        .core
                        .mem
                        .read(pe, pf + parcall::ENTRY_B, ObjectKind::ParcallLocal)
                        .expect_uint("entry b");
                    if self.wk.b != entry_b {
                        self.wk.b = entry_b;
                        self.refresh_backtrack_boundaries()?;
                        self.recede_control_top();
                    }
                    if status != parcall::STATUS_OK {
                        return self.backtrack();
                    }
                    let prev = self
                        .core
                        .mem
                        .read(pe, pf + parcall::PREV_PF, ObjectKind::ParcallLocal)
                        .expect_uint("prev pf");
                    let wk = &mut *self.wk;
                    if pf + parcall::size(n) == wk.local_top {
                        // As in `deallocate`: never recede below the current
                        // choice point's protected local region.
                        wk.local_top = pf.max(wk.stack_boundary);
                    }
                    wk.pf = prev;
                    // fall through to the continuation
                } else {
                    // Not complete yet.  If some goal already failed, start
                    // backward execution on the frame — retract the goals
                    // still sitting un-stolen on the board and send
                    // `cancel_goal` after the in-flight ones — instead of
                    // executing doomed siblings; the wait then drains the
                    // remainder through the completion protocol.  Otherwise
                    // pick up one of our own goals or wait (idle PEs do
                    // the stealing).
                    let status = self
                        .core
                        .mem
                        .read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal)
                        .expect_uint("status");
                    if status == parcall::STATUS_FAILED {
                        self.cancel_parcall_frame(pf)?;
                    }
                    if !self.try_dispatch_work(Resume::ToWait { addr: p })? {
                        self.wk.status = WorkerStatus::WaitingAtPcall { addr: p, pf };
                    }
                    return Ok(());
                }
            }
            Instr::GoalSuccess => {
                return self.finish_goal_success();
            }

            // ---------------- misc ----------------
            Instr::Jump { addr } => {
                next = *addr;
            }
            Instr::FailInstr => {
                return self.backtrack();
            }
            Instr::Halt => {
                self.query_succeeded();
                return Ok(());
            }
            Instr::NoOp => {}
        }

        self.wk.p = next;
        Ok(())
    }

    /// Shared implementation of `get_constant` / `get_integer` / `get_nil`:
    /// unify the argument register with an atomic cell.
    fn get_atomic(&mut self, arg: Cell, atomic: Cell) -> EngineResult<bool> {
        match self.deref(arg) {
            Cell::Ref(addr) => {
                self.bind(addr, atomic)?;
                Ok(true)
            }
            other => Ok(other == atomic),
        }
    }

    /// Shared implementation of write/read mode `unify_constant` and friends.
    fn unify_atomic(&mut self, atomic: Cell) -> EngineResult<bool> {
        let pe = self.wk.id;
        match self.wk.mode {
            Mode::Write => {
                self.heap_push(atomic)?;
                Ok(true)
            }
            Mode::Read => {
                let s = self.wk.s;
                let c = self.core.mem.read(pe, s, self.core.object_for_addr(s));
                self.wk.s = s + 1;
                match self.deref(c) {
                    Cell::Ref(addr) => {
                        self.bind(addr, atomic)?;
                        Ok(true)
                    }
                    other => Ok(other == atomic),
                }
            }
        }
    }
}
