//! Instruction dispatch: execution of one abstract-machine instruction.

use crate::builtins::BuiltinOutcome;
use crate::cell::{Cell, NONE_ADDR};
use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use crate::frames::{choice, env, goal_frame, parcall};
use crate::known;
use crate::layout::{Area, ObjectKind};
use crate::worker::{Mode, Resume, WorkerStatus};
use pwam_compiler::{CallTarget, ConstKey, Instr, Reg};

impl<'p> Engine<'p> {
    /// Execute the instruction at the current program counter of worker `w`.
    pub(crate) fn exec_instr(&mut self, w: usize) -> EngineResult<()> {
        let program = self.program;
        let p = self.workers[w].p;
        let instr = &program.code[p as usize];
        let pe = self.workers[w].id;
        let mut next = p + 1;

        match instr {
            // ---------------- put ----------------
            Instr::PutVariable { v, a } => match v {
                Reg::X(n) => {
                    let var = self.new_heap_var(w)?;
                    self.workers[w].x[*n as usize] = var;
                    self.workers[w].x[*a as usize] = var;
                }
                Reg::Y(n) => {
                    let addr = self.y_addr(w, *n)?;
                    self.mem.write(pe, addr, Cell::Ref(addr), ObjectKind::EnvPermVar);
                    self.workers[w].x[*a as usize] = Cell::Ref(addr);
                }
            },
            Instr::PutValue { v, a } => {
                let c = self.read_reg(w, *v)?;
                self.workers[w].x[*a as usize] = c;
            }
            Instr::PutUnsafeValue { y, a } => {
                let c = self.read_reg(w, Reg::Y(*y))?;
                let g = self.globalize(w, c)?;
                self.workers[w].x[*a as usize] = g;
            }
            Instr::PutConstant { c, a } => {
                self.workers[w].x[*a as usize] = Cell::Con(*c);
            }
            Instr::PutInteger { i, a } => {
                self.workers[w].x[*a as usize] = Cell::Int(*i);
            }
            Instr::PutNil { a } => {
                self.workers[w].x[*a as usize] = Cell::Con(known::NIL);
            }
            Instr::PutStructure { f, n, a } => {
                let addr = self.heap_push(w, Cell::Fun(*f, *n))?;
                self.workers[w].x[*a as usize] = Cell::Str(addr);
                self.workers[w].mode = Mode::Write;
            }
            Instr::PutList { a } => {
                let h = self.workers[w].h;
                self.workers[w].x[*a as usize] = Cell::Lis(h);
                self.workers[w].mode = Mode::Write;
            }

            // ---------------- get ----------------
            Instr::GetVariable { v, a } => {
                let c = self.workers[w].x[*a as usize];
                self.write_reg(w, *v, c)?;
            }
            Instr::GetValue { v, a } => {
                let c = self.read_reg(w, *v)?;
                let arg = self.workers[w].x[*a as usize];
                if !self.unify(w, c, arg)? {
                    return self.backtrack(w);
                }
            }
            Instr::GetConstant { c, a } => {
                let arg = self.workers[w].x[*a as usize];
                if !self.get_atomic(w, arg, Cell::Con(*c))? {
                    return self.backtrack(w);
                }
            }
            Instr::GetInteger { i, a } => {
                let arg = self.workers[w].x[*a as usize];
                if !self.get_atomic(w, arg, Cell::Int(*i))? {
                    return self.backtrack(w);
                }
            }
            Instr::GetNil { a } => {
                let arg = self.workers[w].x[*a as usize];
                if !self.get_atomic(w, arg, Cell::Con(known::NIL))? {
                    return self.backtrack(w);
                }
            }
            Instr::GetStructure { f, n, a } => {
                let arg = self.workers[w].x[*a as usize];
                match self.deref(w, arg) {
                    Cell::Ref(addr) => {
                        let fun_addr = self.heap_push(w, Cell::Fun(*f, *n))?;
                        self.bind(w, addr, Cell::Str(fun_addr))?;
                        self.workers[w].mode = Mode::Write;
                    }
                    Cell::Str(pp) => {
                        let fun = self.mem.read(pe, pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f2, n2) if f2 == *f && n2 == *n => {
                                self.workers[w].s = pp + 1;
                                self.workers[w].mode = Mode::Read;
                            }
                            _ => return self.backtrack(w),
                        }
                    }
                    _ => return self.backtrack(w),
                }
            }
            Instr::GetList { a } => {
                let arg = self.workers[w].x[*a as usize];
                match self.deref(w, arg) {
                    Cell::Ref(addr) => {
                        let h = self.workers[w].h;
                        self.bind(w, addr, Cell::Lis(h))?;
                        self.workers[w].mode = Mode::Write;
                    }
                    Cell::Lis(pp) => {
                        self.workers[w].s = pp;
                        self.workers[w].mode = Mode::Read;
                    }
                    _ => return self.backtrack(w),
                }
            }

            // ---------------- unify ----------------
            Instr::UnifyVariable { v } => match self.workers[w].mode {
                Mode::Read => {
                    let s = self.workers[w].s;
                    let c = self.mem.read(pe, s, self.object_for_addr(s));
                    self.workers[w].s = s + 1;
                    self.write_reg(w, *v, c)?;
                }
                Mode::Write => {
                    let var = self.new_heap_var(w)?;
                    self.write_reg(w, *v, var)?;
                }
            },
            Instr::UnifyValue { v } | Instr::UnifyLocalValue { v } => match self.workers[w].mode {
                Mode::Read => {
                    let s = self.workers[w].s;
                    let target = self.mem.read(pe, s, self.object_for_addr(s));
                    self.workers[w].s = s + 1;
                    let c = self.read_reg(w, *v)?;
                    if !self.unify(w, c, target)? {
                        return self.backtrack(w);
                    }
                }
                Mode::Write => {
                    let c = self.read_reg(w, *v)?;
                    let g = self.globalize(w, c)?;
                    self.heap_push(w, g)?;
                }
            },
            Instr::UnifyConstant { c } => {
                if !self.unify_atomic(w, Cell::Con(*c))? {
                    return self.backtrack(w);
                }
            }
            Instr::UnifyInteger { i } => {
                if !self.unify_atomic(w, Cell::Int(*i))? {
                    return self.backtrack(w);
                }
            }
            Instr::UnifyNil => {
                if !self.unify_atomic(w, Cell::Con(known::NIL))? {
                    return self.backtrack(w);
                }
            }
            Instr::UnifyVoid { n } => match self.workers[w].mode {
                Mode::Read => self.workers[w].s += *n as u32,
                Mode::Write => {
                    for _ in 0..*n {
                        self.new_heap_var(w)?;
                    }
                }
            },

            // ---------------- control ----------------
            Instr::Allocate { n } => {
                let e_new = self.workers[w].local_top;
                self.mem.check_top(w, Area::LocalStack, e_new + env::size(*n as u32))?;
                let (e_old, cp) = (self.workers[w].e, self.workers[w].cp);
                self.mem.write(pe, e_new + env::CE, Cell::Uint(e_old), ObjectKind::EnvControl);
                self.mem.write(pe, e_new + env::CP, Cell::Code(cp), ObjectKind::EnvControl);
                self.mem.write(pe, e_new + env::NVARS, Cell::Uint(*n as u32), ObjectKind::EnvControl);
                let wk = &mut self.workers[w];
                wk.e = e_new;
                wk.local_top = e_new + env::size(*n as u32);
                wk.update_high_water();
            }
            Instr::Deallocate => {
                let e = self.workers[w].e;
                let ce = self.mem.read(pe, e + env::CE, ObjectKind::EnvControl).expect_uint("env CE");
                let cp = self.mem.read(pe, e + env::CP, ObjectKind::EnvControl).expect_code("env CP");
                let n = self.mem.read(pe, e + env::NVARS, ObjectKind::EnvControl).expect_uint("env nvars");
                let wk = &mut self.workers[w];
                if e + env::size(n) == wk.local_top {
                    wk.local_top = e;
                }
                wk.cp = cp;
                wk.e = ce;
            }
            Instr::Call { target, arity } => match target {
                CallTarget::Code(addr) => {
                    self.inferences += 1;
                    let wk = &mut self.workers[w];
                    wk.cp = p + 1;
                    wk.num_args = *arity;
                    wk.b0 = wk.b;
                    next = *addr;
                }
                CallTarget::Builtin(b) => match self.exec_builtin(w, *b)? {
                    BuiltinOutcome::Succeed => {}
                    BuiltinOutcome::Fail => return self.backtrack(w),
                    BuiltinOutcome::Halted => return Ok(()),
                },
                CallTarget::Unresolved(_) => {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "unresolved call target".into(),
                    })
                }
            },
            Instr::Execute { target, arity } => match target {
                CallTarget::Code(addr) => {
                    self.inferences += 1;
                    let wk = &mut self.workers[w];
                    wk.num_args = *arity;
                    wk.b0 = wk.b;
                    next = *addr;
                }
                CallTarget::Builtin(b) => match self.exec_builtin(w, *b)? {
                    BuiltinOutcome::Succeed => next = self.workers[w].cp,
                    BuiltinOutcome::Fail => return self.backtrack(w),
                    BuiltinOutcome::Halted => return Ok(()),
                },
                CallTarget::Unresolved(_) => {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "unresolved call target".into(),
                    })
                }
            },
            Instr::Proceed => {
                next = self.workers[w].cp;
            }
            Instr::CallBuiltin { b } => match self.exec_builtin(w, *b)? {
                BuiltinOutcome::Succeed => {}
                BuiltinOutcome::Fail => return self.backtrack(w),
                BuiltinOutcome::Halted => return Ok(()),
            },

            // ---------------- choice points & indexing ----------------
            Instr::Try { addr } => {
                self.push_choice_point(w, p + 1)?;
                next = *addr;
            }
            Instr::Retry { addr } => {
                let b = self.workers[w].b;
                let nargs =
                    self.mem.read(pe, b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
                self.mem.write(pe, choice::next_clause(b, nargs), Cell::Code(p + 1), ObjectKind::ChoicePoint);
                next = *addr;
            }
            Instr::Trust { addr } => {
                self.pop_choice_point(w)?;
                next = *addr;
            }
            Instr::TryMeElse { else_ } => {
                self.push_choice_point(w, *else_)?;
            }
            Instr::RetryMeElse { else_ } => {
                let b = self.workers[w].b;
                let nargs =
                    self.mem.read(pe, b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
                self.mem.write(
                    pe,
                    choice::next_clause(b, nargs),
                    Cell::Code(*else_),
                    ObjectKind::ChoicePoint,
                );
            }
            Instr::TrustMe => {
                self.pop_choice_point(w)?;
            }
            Instr::SwitchOnTerm { var, con, lis, stru } => {
                let arg = self.workers[w].x[1];
                next = match self.deref(w, arg) {
                    Cell::Ref(_) => *var,
                    Cell::Con(_) | Cell::Int(_) => *con,
                    Cell::Lis(_) => *lis,
                    Cell::Str(_) => *stru,
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("switch_on_term saw a control cell {other:?}"),
                        })
                    }
                };
            }
            Instr::SwitchOnConstant { table, default } => {
                let arg = self.workers[w].x[1];
                let key = match self.deref(w, arg) {
                    Cell::Con(a) => ConstKey::Atom(a),
                    Cell::Int(i) => ConstKey::Int(i),
                    _ => return self.backtrack(w),
                };
                next = table.iter().find(|(k, _)| *k == key).map(|(_, a)| *a).unwrap_or(*default);
            }
            Instr::SwitchOnStructure { table, default } => {
                let arg = self.workers[w].x[1];
                match self.deref(w, arg) {
                    Cell::Str(pp) => {
                        let fun = self.mem.read(pe, pp, ObjectKind::HeapTerm);
                        match fun {
                            Cell::Fun(f, n) => {
                                next = table
                                    .iter()
                                    .find(|((tf, tn), _)| *tf == f && *tn == n)
                                    .map(|(_, a)| *a)
                                    .unwrap_or(*default);
                            }
                            _ => return self.backtrack(w),
                        }
                    }
                    _ => return self.backtrack(w),
                }
            }

            // ---------------- cut ----------------
            Instr::NeckCut => {
                return Err(EngineError::BadInstruction {
                    addr: p,
                    what: "neck_cut is not emitted by this compiler".into(),
                })
            }
            Instr::GetLevel { y } => {
                // Capture the cut barrier: choice points older than the call
                // of the current predicate survive a cut, everything newer
                // (including the clause-selection choice point) is discarded.
                let b0 = self.workers[w].b0;
                self.write_reg(w, Reg::Y(*y), Cell::Uint(b0))?;
            }
            Instr::CutTo { y } => {
                let target = self.read_reg(w, Reg::Y(*y))?.expect_uint("cut barrier");
                if self.workers[w].b != target {
                    self.workers[w].b = target;
                    self.refresh_backtrack_boundaries(w)?;
                    self.recede_control_top(w);
                }
            }

            // ---------------- builtins handled above; parallel below ----
            Instr::CheckGround { v, else_ } => {
                let c = self.read_reg(w, *v)?;
                if !self.is_ground(w, c)? {
                    next = *else_;
                }
            }
            Instr::CheckIndep { v1, v2, else_ } => {
                let c1 = self.read_reg(w, *v1)?;
                let c2 = self.read_reg(w, *v2)?;
                if !self.independent(w, c1, c2)? {
                    next = *else_;
                }
            }
            Instr::PcallAlloc { n } => {
                let n = *n as u32;
                let pf_new = self.workers[w].local_top;
                self.mem.check_top(w, Area::LocalStack, pf_new + parcall::size(n))?;
                let prev = self.workers[w].pf;
                self.mem.write(pe, pf_new + parcall::NGOALS, Cell::Uint(n), ObjectKind::ParcallLocal);
                self.mem.write(pe, pf_new + parcall::TO_SCHEDULE, Cell::Uint(n), ObjectKind::ParcallCount);
                self.mem.write(pe, pf_new + parcall::COMPLETED, Cell::Uint(0), ObjectKind::ParcallCount);
                self.mem.write(
                    pe,
                    pf_new + parcall::STATUS,
                    Cell::Uint(parcall::STATUS_OK),
                    ObjectKind::ParcallLocal,
                );
                self.mem.write(
                    pe,
                    pf_new + parcall::PARENT_PE,
                    Cell::Uint(w as u32),
                    ObjectKind::ParcallLocal,
                );
                self.mem.write(pe, pf_new + parcall::PREV_PF, Cell::Uint(prev), ObjectKind::ParcallLocal);
                // The per-goal slots are written lazily, when a goal is
                // actually taken by another PE; goals the parent executes
                // itself never touch them.
                let wk = &mut self.workers[w];
                wk.pf = pf_new;
                wk.local_top = pf_new + parcall::size(n);
                wk.update_high_water();
                self.parcalls += 1;
            }
            Instr::PcallGoal { target, arity, slot } => {
                let code = match target {
                    CallTarget::Code(a) => *a,
                    other => {
                        return Err(EngineError::BadInstruction {
                            addr: p,
                            what: format!("pcall_goal target must be user code, found {other:?}"),
                        })
                    }
                };
                let arity = *arity as u32;
                let pf = self.workers[w].pf;
                let g = self.workers[w].goal_top;
                self.mem.check_top(w, Area::GoalStack, g + goal_frame::size(arity))?;
                self.mem.write(pe, g + goal_frame::CODE, Cell::Code(code), ObjectKind::GoalFrame);
                self.mem.write(pe, g + goal_frame::ARITY, Cell::Uint(arity), ObjectKind::GoalFrame);
                self.mem.write(pe, g + goal_frame::PF, Cell::Uint(pf), ObjectKind::GoalFrame);
                self.mem.write(pe, g + goal_frame::SLOT, Cell::Uint(*slot as u32), ObjectKind::GoalFrame);
                for i in 0..arity {
                    let c = self.workers[w].x[(i + 1) as usize];
                    let g_c = self.globalize(w, c)?;
                    self.mem.write(pe, goal_frame::arg(g, i), g_c, ObjectKind::GoalFrame);
                }
                let wk = &mut self.workers[w];
                wk.goal_frames.push(g);
                wk.goal_top = g + goal_frame::size(arity);
                wk.update_high_water();
            }
            Instr::PcallWait => {
                let pf = self.workers[w].pf;
                if pf == NONE_ADDR {
                    return Err(EngineError::BadInstruction {
                        addr: p,
                        what: "pcall_wait without a Parcall Frame".into(),
                    });
                }
                let n =
                    self.mem.read(pe, pf + parcall::NGOALS, ObjectKind::ParcallLocal).expect_uint("ngoals");
                let done = self
                    .mem
                    .read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount)
                    .expect_uint("completed");
                if done >= n {
                    let status = self
                        .mem
                        .read(pe, pf + parcall::STATUS, ObjectKind::ParcallLocal)
                        .expect_uint("status");
                    self.consume_messages(w);
                    if status != parcall::STATUS_OK {
                        return self.backtrack(w);
                    }
                    let prev = self
                        .mem
                        .read(pe, pf + parcall::PREV_PF, ObjectKind::ParcallLocal)
                        .expect_uint("prev pf");
                    let wk = &mut self.workers[w];
                    if pf + parcall::size(n) == wk.local_top {
                        wk.local_top = pf;
                    }
                    wk.pf = prev;
                    // fall through to the continuation
                } else {
                    // Not complete yet: pick up a goal (own stack first, then
                    // steal) or wait.
                    if !self.try_dispatch_work(w, Resume::ToWait { addr: p })? {
                        self.workers[w].status = WorkerStatus::WaitingAtPcall { addr: p, pf };
                    }
                    return Ok(());
                }
            }
            Instr::GoalSuccess => {
                return self.finish_goal_success(w);
            }

            // ---------------- misc ----------------
            Instr::Jump { addr } => {
                next = *addr;
            }
            Instr::FailInstr => {
                return self.backtrack(w);
            }
            Instr::Halt => {
                self.query_succeeded(w);
                return Ok(());
            }
            Instr::NoOp => {}
        }

        self.workers[w].p = next;
        Ok(())
    }

    /// Shared implementation of `get_constant` / `get_integer` / `get_nil`:
    /// unify the argument register with an atomic cell.
    fn get_atomic(&mut self, w: usize, arg: Cell, atomic: Cell) -> EngineResult<bool> {
        match self.deref(w, arg) {
            Cell::Ref(addr) => {
                self.bind(w, addr, atomic)?;
                Ok(true)
            }
            other => Ok(other == atomic),
        }
    }

    /// Shared implementation of write/read mode `unify_constant` and friends.
    fn unify_atomic(&mut self, w: usize, atomic: Cell) -> EngineResult<bool> {
        let pe = self.workers[w].id;
        match self.workers[w].mode {
            Mode::Write => {
                self.heap_push(w, atomic)?;
                Ok(true)
            }
            Mode::Read => {
                let s = self.workers[w].s;
                let c = self.mem.read(pe, s, self.object_for_addr(s));
                self.workers[w].s = s + 1;
                match self.deref(w, c) {
                    Cell::Ref(addr) => {
                        self.bind(w, addr, atomic)?;
                        Ok(true)
                    }
                    other => Ok(other == atomic),
                }
            }
        }
    }
}
