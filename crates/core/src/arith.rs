//! Arithmetic evaluation for `is/2` and the comparison builtins.

use crate::cell::Cell;
use crate::engine::Step;
use crate::error::{EngineError, EngineResult};
use crate::known;
use crate::layout::ObjectKind;

impl<'a, 'p> Step<'a, 'p> {
    /// Evaluate an arithmetic expression term.
    ///
    /// Supported functors: integers, `+/2`, `-/2`, `*/2`, `///2` (integer
    /// division), `mod/2`, `//2` (also integer division, as is conventional
    /// for integer-only Prolog arithmetic), and unary `-/1` / `+/1`.
    pub(crate) fn eval_arith(&mut self, cell: Cell) -> EngineResult<i64> {
        match self.deref(cell) {
            Cell::Int(v) => Ok(v),
            Cell::Ref(_) => Err(EngineError::Instantiation { context: "arithmetic expression" }),
            Cell::Con(a) => Err(EngineError::ArithmeticType {
                context: format!("atom {a:?} is not an arithmetic expression"),
            }),
            Cell::Str(p) => {
                let f = self.mem_read(p, ObjectKind::HeapTerm);
                let (name, arity) = match f {
                    Cell::Fun(name, arity) => (name, arity),
                    other => {
                        return Err(EngineError::Internal(format!(
                            "structure pointer does not reference a functor cell: {other:?}"
                        )))
                    }
                };
                match arity {
                    1 => {
                        let a = self.mem_read(p + 1, ObjectKind::HeapTerm);
                        let v = self.eval_arith(a)?;
                        match name {
                            n if n == known::MINUS => Ok(-v),
                            n if n == known::PLUS => Ok(v),
                            _ => Err(EngineError::ArithmeticType {
                                context: format!("unknown unary arithmetic functor {name:?}"),
                            }),
                        }
                    }
                    2 => {
                        let a = self.mem_read(p + 1, ObjectKind::HeapTerm);
                        let b = self.mem_read(p + 2, ObjectKind::HeapTerm);
                        let x = self.eval_arith(a)?;
                        let y = self.eval_arith(b)?;
                        match name {
                            n if n == known::PLUS => Ok(x.wrapping_add(y)),
                            n if n == known::MINUS => Ok(x.wrapping_sub(y)),
                            n if n == known::STAR => Ok(x.wrapping_mul(y)),
                            n if n == known::SLASH || n == known::INT_DIV => {
                                if y == 0 {
                                    Err(EngineError::DivisionByZero)
                                } else {
                                    Ok(x.wrapping_div(y))
                                }
                            }
                            n if n == known::MOD => {
                                if y == 0 {
                                    Err(EngineError::DivisionByZero)
                                } else {
                                    Ok(x.rem_euclid(y))
                                }
                            }
                            _ => Err(EngineError::ArithmeticType {
                                context: format!("unknown arithmetic functor {name:?}/2"),
                            }),
                        }
                    }
                    _ => Err(EngineError::ArithmeticType {
                        context: format!("arithmetic functor of arity {arity} is not supported"),
                    }),
                }
            }
            other => Err(EngineError::ArithmeticType { context: format!("cannot evaluate {other:?}") }),
        }
    }
}
