//! Arithmetic evaluation for `is/2` and the comparison builtins.

use crate::cell::Cell;
use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use crate::known;
use crate::layout::ObjectKind;

impl<'p> Engine<'p> {
    /// Evaluate an arithmetic expression term.
    ///
    /// Supported functors: integers, `+/2`, `-/2`, `*/2`, `///2` (integer
    /// division), `mod/2`, `//2` (also integer division, as is conventional
    /// for integer-only Prolog arithmetic), and unary `-/1` / `+/1`.
    pub(crate) fn eval_arith(&mut self, w: usize, cell: Cell) -> EngineResult<i64> {
        let pe = self.workers[w].id;
        match self.deref(w, cell) {
            Cell::Int(v) => Ok(v),
            Cell::Ref(_) => Err(EngineError::Instantiation { context: "arithmetic expression" }),
            Cell::Con(a) => Err(EngineError::ArithmeticType {
                context: format!("atom {a:?} is not an arithmetic expression"),
            }),
            Cell::Str(p) => {
                let f = self.mem.read(pe, p, ObjectKind::HeapTerm);
                let (name, arity) = match f {
                    Cell::Fun(name, arity) => (name, arity),
                    other => {
                        return Err(EngineError::Internal(format!(
                            "structure pointer does not reference a functor cell: {other:?}"
                        )))
                    }
                };
                match arity {
                    1 => {
                        let a = self.mem.read(pe, p + 1, ObjectKind::HeapTerm);
                        let v = self.eval_arith(w, a)?;
                        match name {
                            n if n == known::MINUS => Ok(-v),
                            n if n == known::PLUS => Ok(v),
                            _ => Err(EngineError::ArithmeticType {
                                context: format!("unknown unary arithmetic functor {name:?}"),
                            }),
                        }
                    }
                    2 => {
                        let a = self.mem.read(pe, p + 1, ObjectKind::HeapTerm);
                        let b = self.mem.read(pe, p + 2, ObjectKind::HeapTerm);
                        let x = self.eval_arith(w, a)?;
                        let y = self.eval_arith(w, b)?;
                        match name {
                            n if n == known::PLUS => Ok(x.wrapping_add(y)),
                            n if n == known::MINUS => Ok(x.wrapping_sub(y)),
                            n if n == known::STAR => Ok(x.wrapping_mul(y)),
                            n if n == known::SLASH || n == known::INT_DIV => {
                                if y == 0 {
                                    Err(EngineError::DivisionByZero)
                                } else {
                                    Ok(x.wrapping_div(y))
                                }
                            }
                            n if n == known::MOD => {
                                if y == 0 {
                                    Err(EngineError::DivisionByZero)
                                } else {
                                    Ok(x.rem_euclid(y))
                                }
                            }
                            _ => Err(EngineError::ArithmeticType {
                                context: format!("unknown arithmetic functor {name:?}/2"),
                            }),
                        }
                    }
                    _ => Err(EngineError::ArithmeticType {
                        context: format!("arithmetic functor of arity {arity} is not supported"),
                    }),
                }
            }
            other => Err(EngineError::ArithmeticType { context: format!("cannot evaluate {other:?}") }),
        }
    }
}
