//! Conversion of run-time heap terms back to source-level terms.
//!
//! Used for answer extraction and debugging only, so it reads memory through
//! the *untraced* interface: inspecting a result never perturbs the measured
//! reference counts.

use crate::cell::Cell;
use crate::error::{EngineError, EngineResult};
use crate::known;
use crate::mem::Memory;
use pwam_front::term::Term;
use pwam_front::SymbolTable;

/// Hard cap on the size of extracted terms, to catch accidental cycles.
const MAX_NODES: usize = 10_000_000;

/// Extract the term bound to the cell stored at `addr`.
pub fn extract_binding(mem: &Memory, addr: u32, syms: &SymbolTable) -> EngineResult<Term> {
    let _ = syms; // names resolve lazily at render time
    extract_binding_raw(mem, addr)
}

/// Extract the term a cell denotes.
// `syms` stays in the signature so callers keep one shape even though
// extraction resolves names lazily at render time.
pub fn extract_cell(mem: &Memory, cell: Cell, syms: &SymbolTable, budget: &mut usize) -> EngineResult<Term> {
    let _ = syms;
    extract_node(mem, cell, budget)
}

/// Symbol-table-free variant of [`extract_binding`]: resumable cursors use
/// it to read answers out of a parked engine without holding the session's
/// symbol table (rendering happens later, at the serving layer).
pub fn extract_binding_raw(mem: &Memory, addr: u32) -> EngineResult<Term> {
    let cell = mem.read_untraced(addr);
    extract_cell_raw(mem, cell)
}

/// Symbol-table-free variant of [`extract_cell`] with a fresh node budget.
pub fn extract_cell_raw(mem: &Memory, cell: Cell) -> EngineResult<Term> {
    let mut budget = MAX_NODES;
    extract_node(mem, cell, &mut budget)
}

fn extract_node(mem: &Memory, cell: Cell, budget: &mut usize) -> EngineResult<Term> {
    if *budget == 0 {
        return Err(EngineError::Internal("term too large (or cyclic) during extraction".into()));
    }
    *budget -= 1;
    match deref_untraced(mem, cell) {
        Cell::Ref(a) => Ok(Term::Var(format!("_G{a}"))),
        Cell::Int(i) => Ok(Term::Int(i)),
        Cell::Con(a) => Ok(Term::Atom(a)),
        Cell::Lis(p) => {
            let head = extract_node(mem, mem.read_untraced(p), budget)?;
            let tail = extract_node(mem, mem.read_untraced(p + 1), budget)?;
            Ok(Term::Struct(known::DOT, vec![head, tail]))
        }
        Cell::Str(p) => {
            let (f, n) = match mem.read_untraced(p) {
                Cell::Fun(f, n) => (f, n),
                other => {
                    return Err(EngineError::Internal(format!(
                        "structure pointer does not reference a functor cell: {other:?}"
                    )))
                }
            };
            let mut args = Vec::with_capacity(n as usize);
            for i in 0..n as u32 {
                args.push(extract_node(mem, mem.read_untraced(p + 1 + i), budget)?);
            }
            Ok(Term::Struct(f, args))
        }
        Cell::Fun(_, _) | Cell::Code(_) | Cell::Uint(_) | Cell::Empty => Err(EngineError::Internal(
            "control word reached during term extraction (corrupted binding?)".into(),
        )),
    }
}

fn deref_untraced(mem: &Memory, mut cell: Cell) -> Cell {
    loop {
        match cell {
            Cell::Ref(a) => {
                let next = mem.read_untraced(a);
                if next == Cell::Ref(a) {
                    return cell;
                }
                cell = next;
            }
            other => return other,
        }
    }
}
