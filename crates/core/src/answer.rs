//! Conversion of run-time heap terms back to source-level terms.
//!
//! Used for answer extraction and debugging only, so it reads memory through
//! the *untraced* interface: inspecting a result never perturbs the measured
//! reference counts.

use crate::cell::Cell;
use crate::error::{EngineError, EngineResult};
use crate::known;
use crate::mem::Memory;
use pwam_front::term::Term;
use pwam_front::SymbolTable;

/// Hard cap on the size of extracted terms, to catch accidental cycles.
const MAX_NODES: usize = 10_000_000;

/// Extract the term bound to the cell stored at `addr`.
pub fn extract_binding(mem: &Memory, addr: u32, syms: &SymbolTable) -> EngineResult<Term> {
    let cell = mem.read_untraced(addr);
    let mut budget = MAX_NODES;
    extract_cell(mem, cell, syms, &mut budget)
}

/// Extract the term a cell denotes.
// `syms` stays in the signature (and recursion) so callers keep one shape
// even though extraction currently resolves names lazily at render time.
#[allow(clippy::only_used_in_recursion)]
pub fn extract_cell(mem: &Memory, cell: Cell, syms: &SymbolTable, budget: &mut usize) -> EngineResult<Term> {
    if *budget == 0 {
        return Err(EngineError::Internal("term too large (or cyclic) during extraction".into()));
    }
    *budget -= 1;
    match deref_untraced(mem, cell) {
        Cell::Ref(a) => Ok(Term::Var(format!("_G{a}"))),
        Cell::Int(i) => Ok(Term::Int(i)),
        Cell::Con(a) => Ok(Term::Atom(a)),
        Cell::Lis(p) => {
            let head = extract_cell(mem, mem.read_untraced(p), syms, budget)?;
            let tail = extract_cell(mem, mem.read_untraced(p + 1), syms, budget)?;
            Ok(Term::Struct(known::DOT, vec![head, tail]))
        }
        Cell::Str(p) => {
            let (f, n) = match mem.read_untraced(p) {
                Cell::Fun(f, n) => (f, n),
                other => {
                    return Err(EngineError::Internal(format!(
                        "structure pointer does not reference a functor cell: {other:?}"
                    )))
                }
            };
            let mut args = Vec::with_capacity(n as usize);
            for i in 0..n as u32 {
                args.push(extract_cell(mem, mem.read_untraced(p + 1 + i), syms, budget)?);
            }
            Ok(Term::Struct(f, args))
        }
        Cell::Fun(_, _) | Cell::Code(_) | Cell::Uint(_) | Cell::Empty => Err(EngineError::Internal(
            "control word reached during term extraction (corrupted binding?)".into(),
        )),
    }
}

fn deref_untraced(mem: &Memory, mut cell: Cell) -> Cell {
    loop {
        match cell {
            Cell::Ref(a) => {
                let next = mem.read_untraced(a);
                if next == Cell::Ref(a) {
                    return cell;
                }
                cell = next;
            }
            other => return other,
        }
    }
}
