//! Engine error type.

use crate::layout::Area;
use std::fmt;
use std::time::Duration;

/// A fatal error raised by the abstract machine.
///
/// Ordinary goal failure is *not* an error (it triggers backtracking);
/// these are conditions that abort the run, such as area overflow or an
/// arithmetic type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A data area of some worker overflowed.
    OutOfMemory { worker: usize, area: Area },
    /// The step budget was exhausted before the query finished.
    StepLimitExceeded { limit: u64 },
    /// The wall-clock budget was exhausted before the query finished
    /// (per-request deadlines of the serving layer).
    DeadlineExceeded { budget: Duration },
    /// The deterministic instruction-fuel budget was exhausted before the
    /// query finished (preemptive scheduling of the serving layer).
    FuelExhausted { fuel: u64 },
    /// `is/2` or a comparison was applied to an unbound variable.
    Instantiation { context: &'static str },
    /// An arithmetic expression contained a non-numeric term.
    ArithmeticType { context: String },
    /// Division (or mod) by zero.
    DivisionByZero,
    /// The engine reached an instruction it cannot execute in this context.
    BadInstruction { addr: u32, what: String },
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::OutOfMemory { worker, area } => {
                write!(f, "worker {worker}: out of memory in {}", area.name())
            }
            EngineError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} instructions exceeded")
            }
            EngineError::DeadlineExceeded { budget } => {
                write!(f, "deadline exceeded: query ran past its time budget of {budget:?}")
            }
            EngineError::FuelExhausted { fuel } => {
                write!(f, "fuel exhausted: query ran past its instruction budget of {fuel}")
            }
            EngineError::Instantiation { context } => {
                write!(f, "arguments insufficiently instantiated in {context}")
            }
            EngineError::ArithmeticType { context } => {
                write!(f, "type error in arithmetic: {context}")
            }
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::BadInstruction { addr, what } => {
                write!(f, "cannot execute instruction at {addr}: {what}")
            }
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EngineError::OutOfMemory { worker: 3, area: Area::Heap };
        assert_eq!(e.to_string(), "worker 3: out of memory in heap");
        assert!(EngineError::DivisionByZero.to_string().contains("zero"));
        assert!(EngineError::StepLimitExceeded { limit: 10 }.to_string().contains("10"));
    }
}
