//! Well-known atom handles.
//!
//! `pwam_front::SymbolTable::new` pre-interns a fixed list of atoms in a
//! fixed order, so their handles are compile-time constants.  The engine
//! relies on this for the list constructor, `[]`, and the arithmetic
//! functors without needing the symbol table at execution time.  A unit test
//! below guards against the two crates drifting apart.

use pwam_front::atoms::Atom;

/// `[]`
pub const NIL: Atom = Atom(0);
/// `'.'` — list constructor.
pub const DOT: Atom = Atom(1);
/// `true`
pub const TRUE: Atom = Atom(2);
/// `-`
pub const MINUS: Atom = Atom(12);
/// `+`
pub const PLUS: Atom = Atom(13);
/// `*`
pub const STAR: Atom = Atom(14);
/// `/`
pub const SLASH: Atom = Atom(15);
/// `mod`
pub const MOD: Atom = Atom(16);
/// `//`
pub const INT_DIV: Atom = Atom(17);

#[cfg(test)]
mod tests {
    use super::*;
    use pwam_front::SymbolTable;

    #[test]
    fn constants_match_the_symbol_table() {
        let t = SymbolTable::new();
        let wk = t.well_known();
        assert_eq!(NIL, wk.nil);
        assert_eq!(DOT, wk.dot);
        assert_eq!(TRUE, wk.truth);
        assert_eq!(MINUS, wk.minus);
        assert_eq!(PLUS, wk.plus);
        assert_eq!(STAR, wk.star);
        assert_eq!(SLASH, wk.slash);
        assert_eq!(MOD, wk.modulo);
        assert_eq!(INT_DIV, wk.int_div);
    }
}
