//! Built-in (escape) predicates.
//!
//! Builtins operate on the argument registers `A1..An` like ordinary calls
//! but execute inline, which matches the WAM convention of compiling simple
//! predicates to escape instructions rather than full calls.

use crate::cell::Cell;
use crate::engine::Engine;
use crate::error::EngineResult;
use pwam_compiler::Builtin;

/// The result of executing a builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuiltinOutcome {
    Succeed,
    Fail,
    /// `halt/0`: the query finished successfully; stop the machine.
    Halted,
}

impl<'p> Engine<'p> {
    pub(crate) fn exec_builtin(&mut self, w: usize, b: Builtin) -> EngineResult<BuiltinOutcome> {
        use BuiltinOutcome::*;
        let a1 = self.workers[w].x.get(1).copied().unwrap_or(Cell::Empty);
        let a2 = self.workers[w].x.get(2).copied().unwrap_or(Cell::Empty);
        let outcome = match b {
            Builtin::True => Succeed,
            Builtin::Fail => Fail,
            Builtin::Halt => {
                self.query_succeeded(w);
                Halted
            }
            Builtin::Is => {
                let v = self.eval_arith(w, a2)?;
                if self.unify(w, a1, Cell::Int(v))? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::ArithEq | Builtin::ArithNeq | Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => {
                let x = self.eval_arith(w, a1)?;
                let y = self.eval_arith(w, a2)?;
                let holds = match b {
                    Builtin::ArithEq => x == y,
                    Builtin::ArithNeq => x != y,
                    Builtin::Lt => x < y,
                    Builtin::Le => x <= y,
                    Builtin::Gt => x > y,
                    Builtin::Ge => x >= y,
                    _ => unreachable!(),
                };
                if holds {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::Unify => {
                if self.unify(w, a1, a2)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::StructEq => {
                if self.struct_eq(w, a1, a2)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::StructNeq => {
                if self.struct_eq(w, a1, a2)? {
                    Fail
                } else {
                    Succeed
                }
            }
            Builtin::Ground => {
                if self.is_ground(w, a1)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::Indep => {
                if self.independent(w, a1, a2)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::Var => match self.deref(w, a1) {
                Cell::Ref(_) => Succeed,
                _ => Fail,
            },
            Builtin::NonVar => match self.deref(w, a1) {
                Cell::Ref(_) => Fail,
                _ => Succeed,
            },
            Builtin::Integer => match self.deref(w, a1) {
                Cell::Int(_) => Succeed,
                _ => Fail,
            },
            Builtin::AtomP => match self.deref(w, a1) {
                Cell::Con(_) => Succeed,
                _ => Fail,
            },
            Builtin::Atomic => match self.deref(w, a1) {
                Cell::Con(_) | Cell::Int(_) => Succeed,
                _ => Fail,
            },
        };
        Ok(outcome)
    }
}
