//! Built-in (escape) predicates.
//!
//! Builtins operate on the argument registers `A1..An` like ordinary calls
//! but execute inline, which matches the WAM convention of compiling simple
//! predicates to escape instructions rather than full calls.

use crate::cell::Cell;
use crate::engine::Step;
use crate::error::EngineResult;
use pwam_compiler::Builtin;

/// The result of executing a builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuiltinOutcome {
    Succeed,
    Fail,
    /// `halt/0`: the query finished successfully; stop the machine.
    Halted,
}

impl<'a, 'p> Step<'a, 'p> {
    pub(crate) fn exec_builtin(&mut self, b: Builtin) -> EngineResult<BuiltinOutcome> {
        use BuiltinOutcome::*;
        let a1 = self.wk.x.get(1).copied().unwrap_or(Cell::Empty);
        let a2 = self.wk.x.get(2).copied().unwrap_or(Cell::Empty);
        let outcome = match b {
            Builtin::True => Succeed,
            Builtin::Fail => Fail,
            Builtin::Halt => {
                self.query_succeeded();
                Halted
            }
            Builtin::Is => {
                let v = self.eval_arith(a2)?;
                if self.unify(a1, Cell::Int(v))? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::ArithEq | Builtin::ArithNeq | Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => {
                let x = self.eval_arith(a1)?;
                let y = self.eval_arith(a2)?;
                let holds = match b {
                    Builtin::ArithEq => x == y,
                    Builtin::ArithNeq => x != y,
                    Builtin::Lt => x < y,
                    Builtin::Le => x <= y,
                    Builtin::Gt => x > y,
                    Builtin::Ge => x >= y,
                    _ => unreachable!(),
                };
                if holds {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::Unify => {
                if self.unify(a1, a2)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::StructEq => {
                if self.struct_eq(a1, a2)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::StructNeq => {
                if self.struct_eq(a1, a2)? {
                    Fail
                } else {
                    Succeed
                }
            }
            Builtin::Ground => {
                if self.is_ground(a1)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::Indep => {
                if self.independent(a1, a2)? {
                    Succeed
                } else {
                    Fail
                }
            }
            Builtin::Var => match self.deref(a1) {
                Cell::Ref(_) => Succeed,
                _ => Fail,
            },
            Builtin::NonVar => match self.deref(a1) {
                Cell::Ref(_) => Fail,
                _ => Succeed,
            },
            Builtin::Integer => match self.deref(a1) {
                Cell::Int(_) => Succeed,
                _ => Fail,
            },
            Builtin::AtomP => match self.deref(a1) {
                Cell::Con(_) => Succeed,
                _ => Fail,
            },
            Builtin::Atomic => match self.deref(a1) {
                Cell::Con(_) | Cell::Int(_) => Succeed,
                _ => Fail,
            },
        };
        Ok(outcome)
    }
}
