//! # rapwam — the RAP-WAM AND-parallel Prolog abstract machine
//!
//! This crate implements the execution model evaluated in *"Memory
//! Performance of AND-parallel Prolog on Shared-Memory Architectures"*
//! (Hermenegildo & Tick, ICPP 1988): a collection of WAM-like workers, each
//! with a complete Stack Set (Heap, Local stack, Control stack, Trail, PDL,
//! Goal Stack, Message Buffer), that cooperate on the execution of a Prolog
//! program annotated with Conditional Graph Expressions.
//!
//! Each worker's Stack Set is its own memory arena, and execution is
//! pluggable behind the [`Scheduler`] trait: the default [`Interleaved`]
//! backend is a deterministic, software-interleaved emulator — the same
//! methodology the paper used — while [`Threaded`] runs one OS thread per
//! PE (token ring over channels) with identical observable behaviour.
//! Every run produces:
//!
//! * the query's answer substitution,
//! * aggregate statistics (instructions, references per area/object,
//!   parallel goals, storage high-water marks, elapsed cycles), and
//! * optionally the full per-reference trace (PE, address, read/write,
//!   area/object/locality tags) consumed by the `pwam-cachesim` crate.
//!
//! ## Quick start
//!
//! ```
//! use rapwam::session::{QueryOptions, Session};
//!
//! let mut session = Session::new(
//!     "fib(0, 0).\n\
//!      fib(1, 1).\n\
//!      fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n\
//!                   (ground(N1), ground(N2) | fib(N1, F1) & fib(N2, F2)),\n\
//!                   F is F1 + F2.",
//! ).unwrap();
//! let result = session.run("fib(10, F)", &QueryOptions::parallel(4)).unwrap();
//! let f = result.outcome.binding("F").unwrap();
//! assert_eq!(session.render(f), "55");
//! ```

pub mod answer;
pub mod arith;
pub mod builtins;
pub mod cell;
pub mod engine;
pub mod error;
pub mod exec;
pub mod frames;
pub mod known;
pub mod layout;
pub mod mem;
pub mod sched;
pub mod session;
pub mod stats;
pub mod trace;
pub mod unify;
pub mod worker;

pub use cell::{Cell, NONE_ADDR};
pub use engine::{
    CancelEvent, Engine, EngineConfig, EngineCore, HostResult, Outcome, RunOutcome, RunResult, StealEvent,
    SuspendReason,
};
pub use error::{EngineError, EngineResult};
pub use layout::{Area, Locality, MemoryConfig, ObjectKind};
pub use mem::{Memory, StackSetArena};
pub use pwam_front::term::Term;
pub use sched::{
    scheduler_for, DeterminismMode, Interleaved, Scheduler, SchedulerKind, Threaded, ThreadedRelaxed,
};
pub use session::{CursorStep, HostFn, QueryCursor, QueryOptions, Session, SessionError};
pub use stats::{RunStats, WorkerStats};
pub use trace::{AreaStats, MemRef};
