//! Layouts of the control objects stored in the data areas.
//!
//! All offsets are in words relative to the first word of the frame.  The
//! inventory corresponds to Table 1 of the paper: environments and Parcall
//! Frames live on the Local stack, choice points and Markers on the Control
//! stack, Goal Frames on the Goal Stack and messages in the Message Buffer.

/// Environment frame (Local stack).
///
/// ```text
/// E+0  CE   continuation environment (Uint, NONE_ADDR when none)
/// E+1  CP   continuation code pointer (Code)
/// E+2  N    number of permanent variables (Uint)
/// E+3.. Y1..Yn
/// ```
pub mod env {
    pub const CE: u32 = 0;
    pub const CP: u32 = 1;
    pub const NVARS: u32 = 2;
    pub const HEADER: u32 = 3;
    /// Address of permanent variable `Yn` (1-based) in the environment at `e`.
    pub fn y_addr(e: u32, n: u16) -> u32 {
        e + HEADER + (n as u32) - 1
    }
    /// Total size of an environment with `n` permanent variables.
    pub fn size(n: u32) -> u32 {
        HEADER + n
    }
}

/// Choice point frame (Control stack).
///
/// ```text
/// B+0        n_args
/// B+1..B+n   saved argument registers A1..An
/// B+n+1      saved E
/// B+n+2      saved CP
/// B+n+3      previous B
/// B+n+4      BP (code address of the next alternative)
/// B+n+5      saved TR
/// B+n+6      saved H
/// B+n+7      saved PF
/// B+n+8      saved local-stack top
/// B+n+9      saved B0 (cut barrier)
/// ```
pub mod choice {
    pub const NARGS: u32 = 0;
    pub const FIXED: u32 = 10;
    pub fn arg(b: u32, i: u32) -> u32 {
        b + 1 + i
    }
    pub fn saved_e(b: u32, n: u32) -> u32 {
        b + n + 1
    }
    pub fn saved_cp(b: u32, n: u32) -> u32 {
        b + n + 2
    }
    pub fn prev_b(b: u32, n: u32) -> u32 {
        b + n + 3
    }
    pub fn next_clause(b: u32, n: u32) -> u32 {
        b + n + 4
    }
    pub fn saved_tr(b: u32, n: u32) -> u32 {
        b + n + 5
    }
    pub fn saved_h(b: u32, n: u32) -> u32 {
        b + n + 6
    }
    pub fn saved_pf(b: u32, n: u32) -> u32 {
        b + n + 7
    }
    pub fn saved_local_top(b: u32, n: u32) -> u32 {
        b + n + 8
    }
    pub fn saved_b0(b: u32, n: u32) -> u32 {
        b + n + 9
    }
    pub fn size(n: u32) -> u32 {
        n + FIXED
    }
}

/// Marker frame (Control stack) — delimits the Stack Section created by the
/// execution of one parallel goal, and records enough state to recover
/// storage if the goal fails.
///
/// ```text
/// M+0  kind (1 = goal input marker)
/// M+1  Parcall Frame address
/// M+2  slot index within the Parcall Frame
/// M+3  B at goal entry
/// M+4  TR at goal entry
/// M+5  H at goal entry
/// M+6  local-stack top at goal entry
/// M+7  E at goal entry
/// ```
pub mod marker {
    pub const KIND: u32 = 0;
    pub const PF: u32 = 1;
    pub const SLOT: u32 = 2;
    pub const ENTRY_B: u32 = 3;
    pub const ENTRY_TR: u32 = 4;
    pub const ENTRY_H: u32 = 5;
    pub const ENTRY_LOCAL_TOP: u32 = 6;
    pub const ENTRY_E: u32 = 7;
    pub const SIZE: u32 = 8;
    pub const KIND_GOAL: u32 = 1;
}

/// Parcall Frame (Local stack).
///
/// `N` counts the goals *scheduled through the Goal Stack*: with the
/// last-goal-inline optimisation the parent executes the leftmost CGE branch
/// itself, without a Goal Frame or a slot, so a CGE of `k` branches
/// allocates a frame with `N = k - 1`.
///
/// ```text
/// PF+0       number of scheduled parallel goals N
/// PF+1       goals still to be scheduled        (count, locked)
/// PF+2       goals completed                    (count, locked)
/// PF+3       status (0 = ok, 1 = failed, 2 = cancelled)
/// PF+4       parent PE id
/// PF+5       previous PF
/// PF+6       parent's B at pcall_alloc (the parcall's backtrack point:
///            pcall_wait commits the inline branch to its first solution by
///            restoring it, mirroring the commit of scheduled goals)
/// PF+7+2k    status of goal k (0 pending, 1 taken, 2 done, 3 failed,
///            4 cancelled) — initialised to pending by `pcall_alloc`, so
///            cancellation's slot scan never reads a stale reused word
/// PF+8+2k    PE executing goal k (written lazily by the thief, before it
///            sets the status to taken; read only behind a taken status)
/// ```
pub mod parcall {
    pub const NGOALS: u32 = 0;
    pub const TO_SCHEDULE: u32 = 1;
    pub const COMPLETED: u32 = 2;
    pub const STATUS: u32 = 3;
    pub const PARENT_PE: u32 = 4;
    pub const PREV_PF: u32 = 5;
    pub const ENTRY_B: u32 = 6;
    pub const HEADER: u32 = 7;
    pub const STATUS_OK: u32 = 0;
    pub const STATUS_FAILED: u32 = 1;
    /// Backward execution has begun on this frame: un-stolen Goal Frames are
    /// retracted and in-flight ones drain through the completion protocol.
    /// Ordered above `STATUS_FAILED` so status updates can use a
    /// `max`-merge: a failing in-flight goal never downgrades a cancelled
    /// frame back to merely failed.
    pub const STATUS_CANCELLED: u32 = 2;
    pub const SLOT_PENDING: u32 = 0;
    pub const SLOT_TAKEN: u32 = 1;
    pub const SLOT_DONE: u32 = 2;
    pub const SLOT_FAILED: u32 = 3;
    /// The goal was retracted un-executed (or aborted mid-flight) by
    /// parcall cancellation.
    pub const SLOT_CANCELLED: u32 = 4;
    pub fn slot_status(pf: u32, k: u32) -> u32 {
        pf + HEADER + 2 * k
    }
    pub fn slot_pe(pf: u32, k: u32) -> u32 {
        pf + HEADER + 2 * k + 1
    }
    pub fn size(n: u32) -> u32 {
        HEADER + 2 * n
    }
}

/// Goal Frame (Goal Stack).
///
/// ```text
/// G+0        entry point of the goal's predicate (Code)
/// G+1        arity
/// G+2        Parcall Frame address
/// G+3        slot index
/// G+4+i      argument cells
/// ```
pub mod goal_frame {
    pub const CODE: u32 = 0;
    pub const ARITY: u32 = 1;
    pub const PF: u32 = 2;
    pub const SLOT: u32 = 3;
    pub const HEADER: u32 = 4;
    pub fn arg(g: u32, i: u32) -> u32 {
        g + HEADER + i
    }
    pub fn size(arity: u32) -> u32 {
        HEADER + arity
    }
}

/// Completion / failure message (Message Buffer).
///
/// ```text
/// +0  kind (1 = goal completed, 2 = goal failed, 3 = goal cancelled)
/// +1  Parcall Frame address
/// +2  slot index
/// ```
pub mod message {
    pub const KIND: u32 = 0;
    pub const PF: u32 = 1;
    pub const SLOT: u32 = 2;
    pub const SIZE: u32 = 3;
    pub const KIND_DONE: u32 = 1;
    pub const KIND_FAILED: u32 = 2;
    /// The goal was aborted by a `cancel_goal` request from the parent's
    /// backward execution; it still commits through the normal protocol.
    pub const KIND_CANCELLED: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_layout() {
        assert_eq!(env::size(0), 3);
        assert_eq!(env::size(4), 7);
        assert_eq!(env::y_addr(100, 1), 103);
        assert_eq!(env::y_addr(100, 3), 105);
    }

    #[test]
    fn choice_point_layout() {
        // with 2 arguments the frame is 12 words
        assert_eq!(choice::size(2), 12);
        assert_eq!(choice::arg(50, 0), 51);
        assert_eq!(choice::saved_e(50, 2), 53);
        assert_eq!(choice::saved_local_top(50, 2), 60);
        assert_eq!(choice::saved_b0(50, 2), 61);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn parcall_layout() {
        assert_eq!(parcall::size(2), 11);
        assert_eq!(parcall::slot_status(200, 0), 207);
        assert_eq!(parcall::slot_pe(200, 1), 210);
        // Status merge order: cancellation must dominate plain failure.
        assert!(parcall::STATUS_CANCELLED > parcall::STATUS_FAILED);
        assert!(parcall::STATUS_FAILED > parcall::STATUS_OK);
    }

    #[test]
    fn goal_frame_layout() {
        assert_eq!(goal_frame::size(3), 7);
        assert_eq!(goal_frame::arg(10, 2), 16);
    }

    #[test]
    fn marker_and_message_sizes() {
        assert_eq!(marker::SIZE, 8);
        assert_eq!(message::SIZE, 3);
    }
}
