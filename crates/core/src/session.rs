//! High-level convenience API: source text in, answers and statistics out.
//!
//! A [`Session`] owns a symbol table and a parsed program; each call to
//! [`Session::run`] compiles the program together with a query (in either
//! sequential-WAM or parallel-RAP-WAM mode) and executes it on a fresh
//! engine, returning the answer bindings, the run statistics and optionally
//! the full memory-reference trace.

use crate::engine::{Engine, EngineConfig, HostResult, RunOutcome, RunResult, SuspendReason};
use crate::error::EngineError;
use crate::layout::MemoryConfig;
use crate::mem::Memory;
use crate::sched::{DeterminismMode, SchedulerKind};
use crate::stats::RunStats;
use crate::trace::MemRef;
use pwam_compiler::{compile_program_and_query_with_hosts, CompileError, CompileOptions, CompiledProgram};
use pwam_front::clause::Program;
use pwam_front::error::FrontError;
use pwam_front::parser::{parse_program, parse_query};
use pwam_front::term::Term;
use pwam_front::SymbolTable;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Everything that can go wrong between source text and an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    Front(FrontError),
    Compile(CompileError),
    Engine(EngineError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Front(e) => write!(f, "{e}"),
            SessionError::Compile(e) => write!(f, "{e}"),
            SessionError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<FrontError> for SessionError {
    fn from(e: FrontError) -> Self {
        SessionError::Front(e)
    }
}
impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}
impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e)
    }
}

/// Options for one query run.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Compile CGEs to parallel code (RAP-WAM) or plain sequential code (WAM).
    pub parallel: bool,
    /// Execute the leftmost branch of each CGE inline on the parent PE
    /// (the paper's last-goal-inline optimisation, made sound by parcall
    /// cancellation).  On by default; turning it off forces every branch
    /// through the Goal-Frame path, which the differential suites use to
    /// pin both compilation schemes against each other.
    pub inline_first_goal: bool,
    /// Number of workers (PEs).
    pub workers: usize,
    /// Collect the full memory-reference trace.
    pub trace: bool,
    /// Per-worker area sizes.
    pub memory: MemoryConfig,
    /// Instruction budget.
    pub max_steps: u64,
    /// Execution backend: deterministic interleaving (the reference) or one
    /// OS thread per PE.
    pub scheduler: SchedulerKind,
    /// Strict (reference interleaving, the default) or relaxed determinism.
    /// Relaxed only changes how the `Threaded` backend drives the PEs: the
    /// threads free-run over their own arenas instead of serialising
    /// through a scheduling token.  Answers are identical either way.
    pub determinism: DeterminismMode,
    /// How long the relaxed backend tolerates a machine-wide stall before
    /// aborting (a safety net for engine bugs; default 5s).
    pub stall_timeout: Duration,
    /// Wall-clock budget for the run (`None` = unlimited).  The serving
    /// layer sets this to enforce per-request deadlines.
    pub time_budget: Option<Duration>,
    /// Deterministic instruction-fuel budget per execution leg (`None` =
    /// unlimited).  A one-shot run that exhausts its fuel errors with
    /// [`EngineError::FuelExhausted`];
    /// a cursor suspends instead ([`CursorStep::FuelExhausted`]) so the
    /// serving layer can preempt long queries and re-admit them fairly.
    pub fuel: Option<u64>,
    /// Run the executor through the classic (pre-flattening) dispatch path:
    /// indexed `Vec<Instr>` fetch and always-locked arena access.  Off by
    /// default; the MLIPS gate turns it on to measure the flattened fast
    /// path against the baseline on the same machine, and the differential
    /// suite uses it to pin both dispatch paths against each other.
    pub classic_dispatch: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            parallel: true,
            inline_first_goal: true,
            workers: 1,
            trace: false,
            memory: MemoryConfig::default(),
            max_steps: 2_000_000_000,
            scheduler: SchedulerKind::Interleaved,
            determinism: DeterminismMode::Strict,
            stall_timeout: Duration::from_secs(5),
            time_budget: None,
            fuel: None,
            classic_dispatch: false,
        }
    }
}

impl QueryOptions {
    /// Sequential WAM baseline on one PE.
    pub fn sequential() -> Self {
        QueryOptions { parallel: false, workers: 1, ..Default::default() }
    }

    /// RAP-WAM with `n` PEs.
    pub fn parallel(n: usize) -> Self {
        QueryOptions { parallel: true, workers: n, ..Default::default() }
    }

    /// RAP-WAM with `n` PEs, each on its own OS thread (strict: the token
    /// ring reproduces the reference interleaving exactly).
    pub fn threaded(n: usize) -> Self {
        QueryOptions { scheduler: SchedulerKind::Threaded, ..QueryOptions::parallel(n) }
    }

    /// RAP-WAM with `n` PEs, each free-running on its own OS thread
    /// (relaxed determinism: same answers, real wall-clock speedup).
    ///
    /// ```
    /// use rapwam::session::{QueryOptions, Session};
    ///
    /// let mut session = Session::new(
    ///     "sum([], 0).\n\
    ///      sum([X|Xs], S) :- (ground(Xs) | sum(Xs, S1) & q(X, X2)), S is S1 + X2.\n\
    ///      q(X, Y) :- Y is X * X.",
    /// ).unwrap();
    /// let result = session.run("sum([1,2,3], S)", &QueryOptions::relaxed(4)).unwrap();
    /// let s = result.outcome.binding("S").unwrap();
    /// assert_eq!(session.render(s), "14");
    /// ```
    pub fn relaxed(n: usize) -> Self {
        QueryOptions { determinism: DeterminismMode::Relaxed, ..QueryOptions::threaded(n) }
    }

    /// Enable trace collection.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Disable the last-goal-inline optimisation (every CGE branch takes
    /// the Goal-Frame path).
    pub fn without_inline_first_goal(mut self) -> Self {
        self.inline_first_goal = false;
        self
    }

    /// The [`CompileOptions`] these options describe.
    pub fn compile_options(&self) -> CompileOptions {
        let base = if self.parallel { CompileOptions::parallel() } else { CompileOptions::sequential() };
        CompileOptions { inline_first_goal: self.inline_first_goal, ..base }
    }

    /// Override the per-worker memory sizes.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Select the execution backend.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Select the determinism mode (only meaningful for the `Threaded`
    /// backend; the interleaved reference is strict by construction).
    pub fn with_determinism(mut self, determinism: DeterminismMode) -> Self {
        self.determinism = determinism;
        self
    }

    /// Override the relaxed-mode stall-watchdog timeout.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Bound the run's wall-clock time (the engine aborts with
    /// [`EngineError::DeadlineExceeded`] when the budget runs out).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Execute through the classic (pre-flattening) dispatch path.
    pub fn with_classic_dispatch(mut self) -> Self {
        self.classic_dispatch = true;
        self
    }

    /// Bound each execution leg to `fuel` instructions (deterministic
    /// preemption; see [`QueryOptions::fuel`]).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// The [`EngineConfig`] these options describe.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            num_workers: self.workers,
            memory: self.memory,
            collect_trace: self.trace,
            max_steps: self.max_steps,
            quantum: 1,
            num_x_regs: pwam_compiler::MAX_X_REGS,
            scheduler: self.scheduler,
            determinism: self.determinism,
            stall_timeout: self.stall_timeout,
            time_budget: self.time_budget,
            fuel: self.fuel,
            classic_dispatch: self.classic_dispatch,
        }
    }
}

/// A loaded Prolog program plus its symbol table and a cache of compiled
/// queries.
///
/// Compilation output is immutable, so [`Session::prepare`] hands out
/// [`Arc<CompiledProgram>`] handles that can be cached and re-run any number
/// of times — the serving layer's program cache is built on exactly this:
/// compile once, run on every request.
pub struct Session {
    syms: SymbolTable,
    program: Program,
    /// Compiled (program, query) units keyed by query text and the full
    /// compilation mode (parallel × indexing × inline-first-goal);
    /// invalidated when the program changes.
    compiled: HashMap<(String, bool, bool, bool), Arc<CompiledProgram>>,
    /// Host predicates: closures the embedding application services when a
    /// query calls them.  Threaded into every compilation, so registering
    /// one invalidates the compiled-query cache.
    hosts: HashMap<(String, u8), Arc<HostFn>>,
    /// Cache telemetry: (hits, misses) of [`Session::prepare`].
    prepare_hits: u64,
    prepare_misses: u64,
}

/// A host predicate's implementation: called with the goal's argument terms,
/// it returns `None` to fail or `Some(bindings)` to succeed, where each
/// `(index, term)` binding unifies `term` with the argument at that 0-based
/// position (an un-unifiable binding fails the call like any unification
/// mismatch would).
pub type HostFn = dyn Fn(&[Term]) -> Option<Vec<(usize, Term)>> + Send + Sync;

impl Session {
    /// Parse a program from source text.
    pub fn new(program_src: &str) -> Result<Self, SessionError> {
        let mut syms = SymbolTable::new();
        let program = parse_program(program_src, &mut syms)?;
        Ok(Session {
            syms,
            program,
            compiled: HashMap::new(),
            hosts: HashMap::new(),
            prepare_hits: 0,
            prepare_misses: 0,
        })
    }

    /// Register a host predicate `name/arity`.  Queries compiled after this
    /// call resolve matching goals to the engine's `call_host` opcode; when
    /// one executes, the engine suspends and the cursor machinery calls `f`
    /// with the argument terms.  User-defined predicates of the same name
    /// and arity shadow the host; the host shadows builtins.  Registering
    /// invalidates the compiled-query cache (later registrations of the
    /// same `name/arity` replace the closure).
    pub fn register_host<F>(&mut self, name: &str, arity: u8, f: F)
    where
        F: Fn(&[Term]) -> Option<Vec<(usize, Term)>> + Send + Sync + 'static,
    {
        self.hosts.insert((name.to_string(), arity), Arc::new(f));
        self.compiled.clear();
    }

    /// The registered host predicates, sorted (the compile-time registry
    /// order).
    pub fn registered_hosts(&self) -> Vec<(String, u8)> {
        let mut out: Vec<(String, u8)> = self.hosts.keys().cloned().collect();
        out.sort();
        out
    }

    /// Append more clauses to the program (e.g. a driver or extra data).
    /// Invalidates the compiled-query cache.
    pub fn add_clauses(&mut self, src: &str) -> Result<(), SessionError> {
        let extra = parse_program(src, &mut self.syms)?;
        self.program.extend_from(&extra, &self.syms);
        self.compiled.clear();
        Ok(())
    }

    /// The symbol table (needed to render answers).
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// Mutable access to the symbol table.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.syms
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Compile the program with a query without running it.
    pub fn compile(&mut self, query_src: &str, parallel: bool) -> Result<CompiledProgram, SessionError> {
        let opts = if parallel { CompileOptions::parallel() } else { CompileOptions::sequential() };
        self.compile_with(query_src, opts)
    }

    /// Compile the program with a query under explicit [`CompileOptions`].
    pub fn compile_with(
        &mut self,
        query_src: &str,
        opts: CompileOptions,
    ) -> Result<CompiledProgram, SessionError> {
        let query = parse_query(query_src, &mut self.syms)?;
        // Deterministic registry order: sorted by (name, arity).
        let mut host_names: Vec<(String, u8)> = self.hosts.keys().cloned().collect();
        host_names.sort();
        let host_list: Vec<(pwam_front::atoms::Atom, u8)> =
            host_names.iter().map(|(n, a)| (self.syms.intern(n), *a)).collect();
        Ok(compile_program_and_query_with_hosts(&self.program, &query, &mut self.syms, opts, &host_list)?)
    }

    /// Compile a query (or return the cached compilation) as a shareable
    /// handle that [`Session::run_prepared`] can execute any number of times
    /// without recompiling.
    pub fn prepare(&mut self, query_src: &str, parallel: bool) -> Result<Arc<CompiledProgram>, SessionError> {
        let opts = if parallel { CompileOptions::parallel() } else { CompileOptions::sequential() };
        self.prepare_with(query_src, opts)
    }

    /// Like [`Session::prepare`], with explicit [`CompileOptions`] (the
    /// cache key covers the parallel and inline-first-goal modes).
    pub fn prepare_with(
        &mut self,
        query_src: &str,
        opts: CompileOptions,
    ) -> Result<Arc<CompiledProgram>, SessionError> {
        let key = (query_src.to_string(), opts.parallel, opts.indexing, opts.inline_first_goal);
        if let Some(c) = self.compiled.get(&key) {
            self.prepare_hits += 1;
            return Ok(Arc::clone(c));
        }
        let compiled = Arc::new(self.compile_with(query_src, opts)?);
        self.prepare_misses += 1;
        // Long-lived sessions (the serving layer) see client-supplied query
        // text: bound the cache so it cannot grow without limit.  Overflow
        // drops the map wholesale — recompiling is cheap next to running.
        if self.compiled.len() >= 1024 {
            self.compiled.clear();
        }
        self.compiled.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Number of compiled queries currently cached.
    pub fn prepared_queries(&self) -> usize {
        self.compiled.len()
    }

    /// Cache telemetry of [`Session::prepare`]: `(hits, misses)`.
    pub fn prepare_stats(&self) -> (u64, u64) {
        (self.prepare_hits, self.prepare_misses)
    }

    /// Compile and run a query.  Compilations are cached, so re-running the
    /// same query skips the front end and the compiler entirely.
    pub fn run(&mut self, query_src: &str, options: &QueryOptions) -> Result<RunResult, SessionError> {
        let compiled = self.prepare_with(query_src, options.compile_options())?;
        self.run_prepared(&compiled, options)
    }

    /// Run an already-compiled query on a fresh engine.  Takes `&self`: a
    /// prepared query can be executed from many threads against one shared
    /// session (the serving layer holds the session behind a read lock).
    pub fn run_prepared(
        &self,
        compiled: &CompiledProgram,
        options: &QueryOptions,
    ) -> Result<RunResult, SessionError> {
        let engine = Engine::new(compiled, options.engine_config());
        Ok(engine.run(&self.syms)?)
    }

    /// Run an already-compiled query, recycling the arenas of `memory` when
    /// its shape fits (the warm-engine path).  Returns the result, the
    /// engine's memory for the next reuse, and whether the arenas were
    /// actually recycled.  On an engine error the memory is consumed — the
    /// caller's next request simply builds cold.
    pub fn run_prepared_reusing(
        &self,
        compiled: &CompiledProgram,
        options: &QueryOptions,
        memory: Option<Memory>,
    ) -> Result<(RunResult, Memory, bool), SessionError> {
        let config = options.engine_config();
        let (engine, warm) = match memory {
            Some(m) => Engine::with_recycled_memory(compiled, config, m),
            None => (Engine::new(compiled, config), false),
        };
        let (result, engine) = engine.run_reusable(&self.syms)?;
        Ok((result, engine.into_memory(), warm))
    }

    /// Render an answer term as text.
    pub fn render(&self, term: &pwam_front::term::Term) -> String {
        pwam_front::pretty::term_to_string(term, &self.syms)
    }

    /// Open an all-solutions cursor over an already-compiled query.
    ///
    /// The cursor owns its engine (built cold, or warm around `memory` when
    /// its shape fits) and a handle to the compiled program, so it can be
    /// parked anywhere — out of a pool slot, across requests — and stepped
    /// with [`QueryCursor::next`] whenever the consumer wants another
    /// answer.  Nothing runs until the first `next`.  Host-predicate calls
    /// are serviced transparently from this session's registry; opening
    /// fails if the program references a host predicate that is no longer
    /// registered.
    pub fn open_cursor(
        &self,
        compiled: &Arc<CompiledProgram>,
        options: &QueryOptions,
        memory: Option<Memory>,
    ) -> Result<QueryCursor, SessionError> {
        let mut host_fns = HashMap::new();
        for (name, arity) in &compiled.hosts {
            let f = self.hosts.get(&(name.clone(), *arity)).ok_or_else(|| {
                SessionError::Engine(EngineError::Internal(format!(
                    "host predicate {name}/{arity} is not registered on this session"
                )))
            })?;
            host_fns.insert((name.clone(), *arity), Arc::clone(f));
        }
        Ok(QueryCursor::open(Arc::clone(compiled), options.engine_config(), memory, host_fns))
    }
}

/// Where a [`QueryCursor`] stands in its answer stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CursorState {
    /// Opened, nothing run yet: the first [`QueryCursor::next`] starts the
    /// query.
    Fresh,
    /// Suspended at an answer boundary; `next` fails back into the engine
    /// for the following answer, [`QueryCursor::commit`] accepts this one.
    AtAnswer,
    /// Preempted mid-execution by the instruction-fuel budget
    /// ([`QueryOptions::fuel`]); the next step grants a fresh leg of fuel
    /// and continues in place.
    Preempted,
    /// The stream is exhausted, committed, or dead after an error.
    Done,
}

/// What one [`QueryCursor::next_step`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CursorStep {
    /// An answer is available (the cursor stands at it; step again to
    /// backtrack into the next one, or [`QueryCursor::commit`] to accept).
    Answer(Vec<(String, Term)>),
    /// The stream is exhausted (or the cursor was committed/closed).
    Exhausted,
    /// The per-leg instruction fuel ran out before the next answer.  The
    /// cursor stays live, parked mid-execution; the next step re-admits it
    /// with a fresh leg of fuel.  This is the serving layer's preemption
    /// point: park the cursor, let other queries run, step again later.
    FuelExhausted,
}

/// An owned, parkable all-solutions query: the resumable [`Engine`] plus
/// the [`Arc<CompiledProgram>`] it executes, bundled so the pair can move
/// between threads and outlive any pool slot.
///
/// `engine` borrows the program behind `program`'s `Arc` allocation.  That
/// is sound because the allocation's address is stable for the `Arc`'s
/// lifetime, the struct keeps the `Arc` alive at least as long as the
/// engine, and the field order below drops the engine first.  The forged
/// `'static` lifetime never escapes this struct's API.
pub struct QueryCursor {
    /// Declared before `program` so it drops first.
    engine: Option<Engine<'static>>,
    state: CursorState,
    /// Host implementations resolved at open time, keyed like
    /// `CompiledProgram::hosts` entries.
    host_fns: HashMap<(String, u8), Arc<HostFn>>,
    /// Keeps the engine's program allocation alive.
    program: Arc<CompiledProgram>,
}

impl QueryCursor {
    fn open(
        program: Arc<CompiledProgram>,
        config: EngineConfig,
        memory: Option<Memory>,
        host_fns: HashMap<(String, u8), Arc<HostFn>>,
    ) -> QueryCursor {
        // SAFETY: see the struct-level comment — the referent lives behind
        // `program`'s Arc allocation, which this struct holds for at least
        // the engine's lifetime, and drop order retires the engine first.
        let program_ref: &'static CompiledProgram = unsafe { &*Arc::as_ptr(&program) };
        let engine = match memory {
            Some(m) => Engine::with_recycled_memory(program_ref, config, m).0,
            None => Engine::new(program_ref, config),
        };
        QueryCursor { engine: Some(engine), state: CursorState::Fresh, host_fns, program }
    }

    /// The compiled program this cursor executes.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Produce the next answer, or `None` once the stream is exhausted (or
    /// the cursor was committed).  Host-predicate suspensions are serviced
    /// internally; only answer boundaries surface.  On an engine error the
    /// cursor is dead: the error is returned and every later call yields
    /// `None`.
    // Deliberately named like `Iterator::next`, but fallible — an
    // `Iterator<Item = Result<...>>` impl would invert the natural
    // `Result<Option<_>>` shape.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Vec<(String, Term)>>, SessionError> {
        loop {
            match self.next_step()? {
                CursorStep::Answer(bindings) => return Ok(Some(bindings)),
                CursorStep::Exhausted => return Ok(None),
                // `next` callers asked for the next answer unconditionally,
                // so a fuel preemption is immediately continued — the fuel
                // budget then acts as a check-in interval, not a cap.
                CursorStep::FuelExhausted => continue,
            }
        }
    }

    /// Like [`QueryCursor::next`], but surfacing fuel preemptions
    /// ([`CursorStep::FuelExhausted`]) to the caller instead of continuing
    /// through them.  Host-predicate suspensions are still serviced
    /// internally.  On an engine error the cursor is dead: the error is
    /// returned and every later call yields [`CursorStep::Exhausted`].
    pub fn next_step(&mut self) -> Result<CursorStep, SessionError> {
        if self.state == CursorState::Done {
            return Ok(CursorStep::Exhausted);
        }
        let engine = self.engine.take().expect("live cursor without an engine");
        let mut step = match self.state {
            CursorState::Fresh => engine.run_resumable(),
            CursorState::AtAnswer => engine.resume(HostResult::Redo),
            CursorState::Preempted => engine.resume(HostResult::Continue),
            CursorState::Done => unreachable!(),
        };
        loop {
            match step {
                Err(e) => {
                    self.state = CursorState::Done;
                    return Err(e.into());
                }
                Ok((RunOutcome::Complete, engine)) => {
                    self.engine = Some(engine);
                    self.state = CursorState::Done;
                    return Ok(CursorStep::Exhausted);
                }
                Ok((RunOutcome::Suspended(SuspendReason::AnswerReady), engine)) => {
                    match engine.answer_bindings() {
                        Ok(bindings) => {
                            self.engine = Some(engine);
                            self.state = CursorState::AtAnswer;
                            return Ok(CursorStep::Answer(bindings));
                        }
                        Err(e) => {
                            self.state = CursorState::Done;
                            return Err(e.into());
                        }
                    }
                }
                Ok((RunOutcome::Suspended(SuspendReason::FuelExhausted), engine)) => {
                    self.engine = Some(engine);
                    self.state = CursorState::Preempted;
                    return Ok(CursorStep::FuelExhausted);
                }
                Ok((RunOutcome::Suspended(SuspendReason::HostCall { name, args }), engine)) => {
                    let key = (name, args.len() as u8);
                    let Some(f) = self.host_fns.get(&key) else {
                        self.state = CursorState::Done;
                        return Err(SessionError::Engine(EngineError::Internal(format!(
                            "host predicate {}/{} is not registered on this cursor",
                            key.0, key.1
                        ))));
                    };
                    let reply = match f(&args) {
                        Some(bindings) => HostResult::Succeed(bindings),
                        None => HostResult::Fail,
                    };
                    step = engine.resume(reply);
                }
            }
        }
    }

    /// Accept the answer the cursor currently stands at and finish the
    /// query (the cursor's cut): the engine halts cleanly and later
    /// [`QueryCursor::next`] calls return `None`.
    pub fn commit(&mut self) -> Result<(), SessionError> {
        if self.state != CursorState::AtAnswer {
            return Err(SessionError::Engine(EngineError::Internal(
                "commit without a pending answer".to_string(),
            )));
        }
        let engine = self.engine.take().expect("live cursor without an engine");
        match engine.resume(HostResult::Commit) {
            Ok((_, engine)) => {
                self.engine = Some(engine);
                self.state = CursorState::Done;
                Ok(())
            }
            Err(e) => {
                self.state = CursorState::Done;
                Err(e.into())
            }
        }
    }

    /// True once the stream is exhausted, committed or dead.
    pub fn is_done(&self) -> bool {
        self.state == CursorState::Done
    }

    /// True while the cursor stands at an unconsumed answer.
    pub fn at_answer(&self) -> bool {
        self.state == CursorState::AtAnswer
    }

    /// True while the cursor is parked at a fuel preemption.
    pub fn is_preempted(&self) -> bool {
        self.state == CursorState::Preempted
    }

    /// The suspended engine's state fingerprint (see
    /// [`Engine::state_fingerprint`]); `None` if the engine was lost.
    pub fn state_fingerprint(&self) -> Option<u64> {
        self.engine.as_ref().map(|e| e.state_fingerprint())
    }

    /// Close the cursor, recovering the engine's arenas for a pool's warm
    /// path (`None` if the engine was lost to an error).
    pub fn close(self) -> Option<Memory> {
        let QueryCursor { engine, .. } = self;
        engine.map(|e| e.into_memory())
    }

    /// Goal Frames still parked on the suspended engine's boards (see
    /// [`Engine::pending_goal_frames`]); `0` if the engine was lost.
    pub fn pending_goal_frames(&self) -> usize {
        self.engine.as_ref().map_or(0, |e| e.pending_goal_frames())
    }

    /// Structural invariants of the suspended engine (see
    /// [`Engine::check_consistency`]); trivially `Ok` if the engine was
    /// lost.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.engine.as_ref().map_or(Ok(()), |e| e.check_consistency())
    }

    /// Run statistics so far (`None` if the engine was lost).
    pub fn stats(&self) -> Option<RunStats> {
        self.engine.as_ref().map(|e| e.stats())
    }

    /// Drain the memory-reference trace collected so far, if tracing is on.
    pub fn take_trace(&mut self) -> Option<Vec<MemRef>> {
        self.engine.as_mut().and_then(|e| e.take_trace())
    }
}
