//! Per-worker (PE) machine state.
//!
//! Each worker is a complete WAM: a register file plus top pointers into its
//! own Stack Set.  The only additions over the sequential WAM are the Parcall
//! Frame register (`pf`), the Goal Stack top, and a small host-side
//! scheduling stack that remembers how to resume after a parallel goal
//! finishes (the RAP-WAM encodes the same information in Markers; we keep a
//! host-side mirror so the scheduler does not have to re-read memory for
//! every decision).  State that *other* PEs must see — the Goal-Stack
//! mirror used for stealing and the Message-Buffer allocation state — lives
//! on the per-PE boards of [`crate::engine::EngineCore`], not here: a
//! `Worker` is always owned exclusively by the thread stepping it.

use crate::cell::{Cell, NONE_ADDR};
use crate::layout::{AddressMap, Area};
use crate::trace::RefDelta;

/// Read/write mode of the unify instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Read,
    Write,
}

/// What a worker should do once the parallel goal it is executing finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// Return to the `pcall_wait` instruction at this code address (the
    /// worker is the parent of some Parcall Frame, executing one of its
    /// own goals through the local path while it waits).
    ToWait { addr: u32 },
    /// Return to backward execution: the worker is the parent of the
    /// cancelled Parcall Frame `pf` and picked this goal up while waiting
    /// for the frame's completion counter to drain.  On completion the
    /// worker re-parks in [`WorkerStatus::Cancelling`]; if the goal
    /// *succeeded*, its Stack Section is frozen (see `Worker::frozen_h`) so
    /// the deferred backtrack cannot reclaim results another Parcall Frame
    /// still needs.
    ToCancel { pf: u32 },
    /// Go back to the idle loop (the worker stole the goal while idle).
    Idle,
}

/// Host-side record of one parallel-goal execution in progress (mirrors the
/// Marker pushed on the Control stack).
///
/// Goals a worker picks up from its *own* Goal Stack (the parent executing
/// its own parallel call) take a fast path that pushes no Marker — exactly
/// like the original system, where the parallelism overhead is concentrated
/// on goals that are actually executed by another PE.  For those local goals
/// `marker` is `NONE_ADDR` and the entry state lives only in this record.
#[derive(Debug, Clone, Copy)]
pub struct GoalContext {
    /// Address of the Marker on this worker's Control stack, or `NONE_ADDR`
    /// for locally executed goals (fast path, no Marker).
    pub marker: u32,
    /// Parcall Frame the goal belongs to.
    pub pf: u32,
    /// This worker's `pf` register at goal entry.  Restored when the goal
    /// completes *or fails*: on the failure path no `pcall_wait` walks the
    /// `PREV_PF` chain back, and a stale `pf` would make every enclosing
    /// wait re-read the innermost failed Parcall Frame and cascade failure
    /// without draining its own in-flight goals.
    pub entry_pf: u32,
    /// Slot index within the Parcall Frame.
    pub slot: u32,
    /// Choice-point register at goal entry (failure boundary).
    pub entry_b: u32,
    /// Trail top at goal entry (for storage recovery on failure).
    pub entry_tr: u32,
    /// Heap top at goal entry.
    pub entry_h: u32,
    /// Local-stack top at goal entry.
    pub entry_local_top: u32,
    /// Continuation pointer to restore when the goal completes.
    pub prev_cp: u32,
    /// Environment register at goal entry (sanity check / restore).
    pub entry_e: u32,
    /// Heap-backtrack boundary to restore.
    pub prev_hb: u32,
    /// Stack-trailing boundary to restore.
    pub prev_stack_boundary: u32,
    /// What to do after the goal completes.
    pub resume: Resume,
    /// True when the goal was taken from another worker's Goal Stack.
    pub stolen: bool,
}

/// Scheduling status of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Executing instructions.
    Running,
    /// Blocked in `pcall_wait` at `addr` until Parcall Frame `pf` completes
    /// (may still pick up other goals meanwhile).
    WaitingAtPcall { addr: u32, pf: u32 },
    /// Backward execution: this worker failed past the (incomplete) Parcall
    /// Frame `pf` it owns.  Its un-stolen Goal Frames have been retracted
    /// and `cancel_goal` requests sent for the in-flight ones; the worker
    /// now waits for the frame's completion counter to drain before it
    /// resumes the deferred backtrack.  Unlike `WaitingAtPcall` the worker
    /// does not pick up new work: its registers hold the suspended failure
    /// state.
    Cancelling { pf: u32 },
    /// No work; looking for goals to steal.
    Idle,
    /// The query has finished (success or failure); the worker is stopped.
    Stopped,
}

/// The complete state of one worker.
#[derive(Debug, Clone)]
pub struct Worker {
    /// Worker (PE) identifier.
    pub id: u8,
    /// Program counter.
    pub p: u32,
    /// Continuation program counter.
    pub cp: u32,
    /// Current environment (Local stack address) or `NONE_ADDR`.
    pub e: u32,
    /// Most recent choice point (Control stack address) or `NONE_ADDR`.
    pub b: u32,
    /// Cut barrier: the value of `b` when the current predicate was called
    /// (the WAM's `B0` register).  `get_level` copies it into an environment
    /// slot so that a later cut discards exactly the choice points created
    /// since the call — including the clause-selection choice point.
    pub b0: u32,
    /// Cached Control-stack extent (one past the last word) of the choice
    /// point `b` currently points at, or `NONE_ADDR` when unknown.  This is
    /// the flattened executor's frame-register cache for the one frame word
    /// the hot path re-reads — the frame's saved argument count, needed by
    /// `recede_control_top` to bound the live frame.  Maintained wherever
    /// `b` changes: set by `push_choice_point` (the size is known there),
    /// invalidated by cut / pop / goal unwind, and recomputed lazily from
    /// memory on the first recede after an invalidation.
    pub cp_top: u32,
    /// Frozen heap floor: restore targets (`saved H` in choice points, goal
    /// entry state) are clamped to at least this address.  Raised when a
    /// goal executed under [`Resume::ToCancel`] succeeds: its results sit
    /// in this worker's Stack Set but belong to a *different* Parcall
    /// Frame, so the deferred backtrack that follows the cancellation must
    /// not reclaim them.  Never lowered during a run.
    pub frozen_h: u32,
    /// Local-stack counterpart of `frozen_h`.
    pub frozen_local: u32,
    /// `cancel_goal` requests `(pf, slot)` delivered to this worker that
    /// were not safely abortable at the batch boundary where they arrived
    /// (the target goal was live but not the innermost context).  They are
    /// re-checked at every subsequent batch boundary until the goal either
    /// becomes abortable or commits.
    pub pending_cancels: Vec<(u32, u32)>,
    /// Heap top.
    pub h: u32,
    /// Heap backtrack boundary (bindings below this must be trailed).
    pub hb: u32,
    /// Local-stack trailing boundary (stack bindings below this must be trailed).
    pub stack_boundary: u32,
    /// Structure pointer (read mode).
    pub s: u32,
    /// Unify mode.
    pub mode: Mode,
    /// Trail top.
    pub tr: u32,
    /// PDL top.
    pub pdl: u32,
    /// Argument / temporary registers (index 0 unused; `X1` = `x[1]`).
    pub x: Vec<Cell>,
    /// Number of argument registers live at the last call (for choice points).
    pub num_args: u8,
    /// Current Parcall Frame or `NONE_ADDR`.
    pub pf: u32,
    /// Local-stack allocation top.
    pub local_top: u32,
    /// Control-stack allocation top.
    pub control_top: u32,
    /// Goal-stack allocation top (the owner's mirror of the authoritative
    /// top on this PE's shared board, refreshed on every own-stack push/pop;
    /// other PEs shrink the board top when they steal).
    pub goal_top: u32,
    /// Scheduling status.
    pub status: WorkerStatus,
    /// Host-side stack of in-progress parallel goals.
    pub goal_contexts: Vec<GoalContext>,
    /// Executed instruction count.
    pub instructions: u64,
    /// Cycles spent idle or waiting.
    pub idle_cycles: u64,
    /// Goals this worker took from another worker's Goal Stack.
    pub goals_stolen: u64,
    /// Steal notifications received as a victim (delivered by the scheduler:
    /// over channels on the Threaded backend, in place on the reference one).
    pub steal_notices: u64,
    /// `cancel_goal` notifications received as the executor of an in-flight
    /// stolen goal (delivered by the scheduler alongside steal notices).
    pub cancel_notices: u64,
    /// Stolen goals this worker aborted mid-flight on a `cancel_goal`
    /// request (each still committed through the completion protocol).
    pub goals_aborted: u64,
    /// Goals this worker started while parked in
    /// [`WorkerStatus::Cancelling`] — useful work done while a cancelled
    /// Parcall Frame's completion counter drains.
    pub goals_while_cancelling: u64,
    /// Steal scans this worker ran while looking for work (each scan sweeps
    /// the other PEs' Goal Stacks once; `goals_stolen` counts the scans
    /// that found a goal).  Worker-local like every other counter here:
    /// incremented off the dispatch hot path and read only through
    /// [`crate::stats::WorkerStats`].
    pub steal_attempts: u64,
    /// Idle-backoff transitions from spinning to yielding (relaxed
    /// backend's idle ladder).
    pub backoff_yields: u64,
    /// Idle-backoff transitions from yielding to timed parking (relaxed
    /// backend's idle ladder).
    pub backoff_parks: u64,
    /// Microseconds spent in timed parks while idle (relaxed backend).
    pub park_micros: u64,
    /// Batch exits whose cause was quantum/step-budget exhaustion while
    /// still `Running` (the scheduler will re-enter immediately).
    pub batch_exits_budget: u64,
    /// Batch exits whose cause was leaving `Running`: parked at a
    /// `pcall_wait`, went idle after goal completion, cancelled, or the
    /// whole query finished.
    pub batch_exits_park: u64,
    /// Per-predicate instruction attribution for the flat dispatch path:
    /// entry address of the predicate currently being charged.  Updated at
    /// call/execute boundaries only, so attribution is call-granular: the
    /// tail of a clause body after its last call is charged to the callee.
    pub prof_pred: u32,
    /// Value of `instructions` when `prof_pred` last changed; the
    /// difference to the live counter is the run still to be charged.
    pub prof_mark: u64,
    /// Instructions charged per predicate entry address, indexed by code
    /// address.  Sized by the engine to the program's code length (the
    /// profile rides the existing `instructions` counter, so the dispatch
    /// loop itself is untouched; charging happens on call boundaries and
    /// costs a subtraction and an indexed add).
    pub prof_counts: Vec<u64>,
    /// High-water marks for storage-usage statistics.
    pub max_h: u32,
    pub max_local_top: u32,
    pub max_control_top: u32,
    pub max_tr: u32,
    pub max_goal_top: u32,
    // Area bases, cached for bounds checks and pointer classification.
    pub heap_base: u32,
    pub local_base: u32,
    pub control_base: u32,
    pub trail_base: u32,
    pub pdl_base: u32,
    pub goal_base: u32,
    pub msg_base: u32,
    // Area ends, cached so overflow checks on the hot allocation paths
    // (`heap_push`, `allocate`, trailing, PDL pushes, choice points) compare
    // against a register instead of recomputing `AddressMap::area_end`.
    pub heap_end: u32,
    pub local_end: u32,
    pub control_end: u32,
    pub trail_end: u32,
    pub pdl_end: u32,
    /// One past the last word of this worker's whole Stack Set (equals
    /// `msg_base + message_words`).  `heap_base..arena_end` is the own-arena
    /// address test the serial-mode fast path uses in place of
    /// `AddressMap::owner`.
    pub arena_end: u32,
    /// Batched reference accounting for the serial-mode fast path: counts
    /// accumulated here instead of in the arena's `AreaStats`, flushed by
    /// `Memory::flush_delta` at batch boundaries and before stats are read.
    pub ref_delta: RefDelta,
    /// E-frame register cache: the environment address whose control words
    /// (CE / CP / NVARS) are cached in the three registers below, or
    /// `NONE_ADDR`.  Written by `allocate` (which creates those words),
    /// consumed by `deallocate`, and invalidated wherever `e` is restored
    /// from saved state (choice points, goal entry/exit) — see the
    /// invariants note on `Step::invalidate_env_cache`.
    pub env_cache_e: u32,
    /// Cached continuation environment (`env::CE`) of `env_cache_e`.
    pub env_cache_ce: u32,
    /// Cached continuation pointer (`env::CP`) of `env_cache_e`.
    pub env_cache_cp: u32,
    /// Cached slot count (`env::NVARS`) of `env_cache_e`.
    pub env_cache_n: u32,
}

impl Worker {
    /// Create a worker with empty areas, ready to run.
    pub fn new(id: u8, map: &AddressMap, num_x: usize) -> Self {
        let w = id as usize;
        let heap_base = map.area_base(w, Area::Heap);
        let local_base = map.area_base(w, Area::LocalStack);
        let control_base = map.area_base(w, Area::ControlStack);
        let trail_base = map.area_base(w, Area::Trail);
        let pdl_base = map.area_base(w, Area::Pdl);
        let goal_base = map.area_base(w, Area::GoalStack);
        let msg_base = map.area_base(w, Area::MessageBuffer);
        let heap_end = map.area_end(w, Area::Heap);
        let local_end = map.area_end(w, Area::LocalStack);
        let control_end = map.area_end(w, Area::ControlStack);
        let trail_end = map.area_end(w, Area::Trail);
        let pdl_end = map.area_end(w, Area::Pdl);
        let arena_end = map.area_end(w, Area::MessageBuffer);
        Worker {
            id,
            p: 0,
            cp: 0,
            e: NONE_ADDR,
            b: NONE_ADDR,
            b0: NONE_ADDR,
            cp_top: NONE_ADDR,
            frozen_h: heap_base,
            frozen_local: local_base,
            pending_cancels: Vec::new(),
            h: heap_base,
            hb: heap_base,
            stack_boundary: local_base,
            s: 0,
            mode: Mode::Read,
            tr: trail_base,
            pdl: pdl_base,
            x: vec![Cell::Empty; num_x + 1],
            num_args: 0,
            pf: NONE_ADDR,
            local_top: local_base,
            control_top: control_base,
            goal_top: goal_base,
            status: WorkerStatus::Idle,
            goal_contexts: Vec::new(),
            instructions: 0,
            idle_cycles: 0,
            goals_stolen: 0,
            steal_notices: 0,
            cancel_notices: 0,
            goals_aborted: 0,
            goals_while_cancelling: 0,
            steal_attempts: 0,
            backoff_yields: 0,
            backoff_parks: 0,
            park_micros: 0,
            batch_exits_budget: 0,
            batch_exits_park: 0,
            prof_pred: 0,
            prof_mark: 0,
            prof_counts: Vec::new(),
            max_h: heap_base,
            max_local_top: local_base,
            max_control_top: control_base,
            max_tr: trail_base,
            max_goal_top: goal_base,
            heap_base,
            local_base,
            control_base,
            trail_base,
            pdl_base,
            goal_base,
            msg_base,
            heap_end,
            local_end,
            control_end,
            trail_end,
            pdl_end,
            arena_end,
            ref_delta: RefDelta::default(),
            env_cache_e: NONE_ADDR,
            env_cache_ce: NONE_ADDR,
            env_cache_cp: 0,
            env_cache_n: 0,
        }
    }

    /// Update the storage high-water marks after any allocation.
    pub fn update_high_water(&mut self) {
        self.max_h = self.max_h.max(self.h);
        self.max_local_top = self.max_local_top.max(self.local_top);
        self.max_control_top = self.max_control_top.max(self.control_top);
        self.max_tr = self.max_tr.max(self.tr);
        self.max_goal_top = self.max_goal_top.max(self.goal_top);
    }

    /// Words of heap currently in use.
    pub fn heap_used(&self) -> u32 {
        self.h - self.heap_base
    }

    /// Charge the instruction run since the last predicate switch to the
    /// current predicate and move the attribution key to `entry`.  Called
    /// at call/execute boundaries and at parallel-goal starts — never per
    /// instruction.
    #[inline]
    pub fn prof_switch(&mut self, entry: u32) {
        let run = self.instructions - self.prof_mark;
        if run != 0 {
            if let Some(slot) = self.prof_counts.get_mut(self.prof_pred as usize) {
                *slot += run;
            }
            self.prof_mark = self.instructions;
        }
        self.prof_pred = entry;
    }

    /// The `(predicate entry, instruction run)` not yet charged to
    /// `prof_counts` — lets read-only stats collection see exact numbers
    /// between batches without mutating the worker.
    pub fn prof_residual(&self) -> (u32, u64) {
        (self.prof_pred, self.instructions - self.prof_mark)
    }

    /// Maximum words of each area ever in use: (heap, local, control, trail, goal).
    pub fn max_usage(&self) -> (u32, u32, u32, u32, u32) {
        (
            self.max_h - self.heap_base,
            self.max_local_top - self.local_base,
            self.max_control_top - self.control_base,
            self.max_tr - self.trail_base,
            self.max_goal_top - self.goal_base,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemoryConfig;

    #[test]
    fn new_worker_points_at_its_own_areas() {
        let map = AddressMap::new(MemoryConfig::small(), 3);
        let w0 = Worker::new(0, &map, 32);
        let w2 = Worker::new(2, &map, 32);
        assert_eq!(w0.heap_base, 0);
        assert!(w2.heap_base > w0.msg_base);
        assert_eq!(w0.h, w0.heap_base);
        assert_eq!(w2.status, WorkerStatus::Idle);
        assert_eq!(w2.x.len(), 33);
    }

    #[test]
    fn high_water_marks_track_allocation() {
        let map = AddressMap::new(MemoryConfig::small(), 1);
        let mut w = Worker::new(0, &map, 8);
        w.h += 100;
        w.tr += 5;
        w.update_high_water();
        w.h -= 50;
        w.update_high_water();
        let (heap, _, _, trail, _) = w.max_usage();
        assert_eq!(heap, 100);
        assert_eq!(trail, 5);
        assert_eq!(w.heap_used(), 50);
    }
}
