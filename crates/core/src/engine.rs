//! The multi-worker RAP-WAM engine.
//!
//! The engine executes a [`CompiledProgram`] on a configurable number of
//! workers (PEs).  Workers are stepped round-robin, one instruction per
//! scheduling cycle by default, which makes runs deterministic and
//! reproducible — the same methodology as the paper's emulator, which also
//! interleaved abstract machines in software rather than running on raw
//! hardware.  The stepping loop itself lives behind the
//! [`crate::sched::Scheduler`] trait (round/slot SPI below); the engine
//! only defines what one worker does with one slot.
//!
//! Scheduling is *on demand*: `pcall_goal` pushes Goal Frames onto the
//! issuing worker's Goal Stack, and both the waiting parent and any idle
//! worker may pick them up.  Completion is recorded in the Parcall Frame's
//! counters and (for stolen goals) signalled through the parent's Message
//! Buffer, generating exactly the locked/global traffic the paper's Table 1
//! describes.

use crate::answer::extract_binding;
use crate::cell::{Cell, NONE_ADDR};
use crate::error::{EngineError, EngineResult};
use crate::frames::{choice, env, goal_frame, marker, message, parcall};
use crate::layout::{board, Area, MemoryConfig, ObjectKind};
use crate::mem::Memory;
use crate::sched::{scheduler_for, SchedulerKind};
use crate::stats::{RunStats, WorkerStats};
use crate::trace::MemRef;
use crate::worker::{GoalContext, Resume, Worker, WorkerStatus};
use pwam_compiler::CompiledProgram;
use pwam_front::term::Term;
use pwam_front::SymbolTable;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of workers (PEs).
    pub num_workers: usize,
    /// Per-worker Stack Set sizes.
    pub memory: MemoryConfig,
    /// Collect the full memory-reference trace (needed for cache simulation).
    pub collect_trace: bool,
    /// Abort after this many instructions (guards against runaway programs).
    pub max_steps: u64,
    /// Instructions executed per worker per scheduling round.
    pub quantum: u32,
    /// Number of X registers per worker.
    pub num_x_regs: usize,
    /// Which execution backend steps the workers.
    pub scheduler: SchedulerKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: 1,
            memory: MemoryConfig::default(),
            collect_trace: false,
            max_steps: 2_000_000_000,
            quantum: 1,
            num_x_regs: pwam_compiler::MAX_X_REGS,
            scheduler: SchedulerKind::Interleaved,
        }
    }
}

impl EngineConfig {
    /// Configuration with `n` workers and default memory sizes.
    pub fn with_workers(n: usize) -> Self {
        EngineConfig { num_workers: n, ..Default::default() }
    }
}

/// Outcome of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The query succeeded with the given bindings for the query variables.
    Success(Vec<(String, Term)>),
    /// The query failed.
    Failure,
}

impl Outcome {
    /// True if the query succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success(_))
    }

    /// The binding for a query variable, if the query succeeded.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        match self {
            Outcome::Success(b) => b.iter().find(|(n, _)| n == name).map(|(_, t)| t),
            Outcome::Failure => None,
        }
    }
}

/// The result of running a query: outcome, statistics and (optionally) the
/// full memory-reference trace.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub outcome: Outcome,
    pub stats: RunStats,
    pub trace: Option<Vec<MemRef>>,
}

/// One goal stolen from another worker's Goal Stack, as observed by the
/// scheduler.  The [`crate::sched::Threaded`] backend turns these into
/// cross-thread messages; the reference backend delivers them in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// Worker that took the goal.
    pub thief: usize,
    /// Worker whose Goal Stack the frame came from.
    pub victim: usize,
    /// Address of the stolen Goal Frame.
    pub frame: u32,
}

/// The abstract-machine engine.
pub struct Engine<'p> {
    pub program: &'p CompiledProgram,
    pub config: EngineConfig,
    pub mem: Memory,
    pub workers: Vec<Worker>,
    /// `Some(true)` = success, `Some(false)` = failure.
    finished: Option<bool>,
    steps: u64,
    cycles: u64,
    pub(crate) parcalls: u64,
    pub(crate) parallel_goals: u64,
    pub(crate) goals_actually_parallel: u64,
    pub(crate) inferences: u64,
    steal_cursor: usize,
    /// Steals performed since the scheduler last drained them.
    steal_log: Vec<StealEvent>,
}

impl<'p> Engine<'p> {
    /// Create an engine ready to run the program's query.
    pub fn new(program: &'p CompiledProgram, config: EngineConfig) -> Self {
        assert!(config.num_workers >= 1, "at least one worker is required");
        assert!(config.num_workers <= 255, "at most 255 workers are supported");
        let mem = Memory::new(config.memory, config.num_workers, config.collect_trace);
        let mut workers: Vec<Worker> =
            (0..config.num_workers).map(|i| Worker::new(i as u8, &mem.map, config.num_x_regs)).collect();
        workers[0].p = program.query_start;
        workers[0].cp = program.query_start;
        workers[0].status = WorkerStatus::Running;
        Engine {
            program,
            config,
            mem,
            workers,
            finished: None,
            steps: 0,
            cycles: 0,
            parcalls: 0,
            parallel_goals: 0,
            goals_actually_parallel: 0,
            inferences: 0,
            steal_cursor: 0,
            steal_log: Vec::new(),
        }
    }

    /// Run the query to completion on the configured scheduler backend and
    /// collect results.
    pub fn run(self, syms: &SymbolTable) -> EngineResult<RunResult> {
        let scheduler = scheduler_for(self.config.scheduler);
        let engine = scheduler.drive(self)?;
        engine.into_result(syms)
    }

    /// Turn a finished engine into a [`RunResult`] (answers, statistics and
    /// the merged trace).
    pub fn into_result(mut self, syms: &SymbolTable) -> EngineResult<RunResult> {
        debug_assert!(self.finished.is_some(), "into_result on an unfinished engine");
        let outcome = if self.finished == Some(true) {
            let bindings = self.extract_answer(syms)?;
            Outcome::Success(bindings)
        } else {
            Outcome::Failure
        };
        let stats = self.collect_stats();
        let trace = self.mem.take_trace();
        Ok(RunResult { outcome, stats, trace })
    }

    // -----------------------------------------------------------------
    // Scheduler SPI
    //
    // The stepping loop is owned by a `Scheduler` backend (see `sched`).
    // A round gives every worker `quantum` slots:
    //
    //     engine.begin_round();
    //     let mut progress = false;
    //     for w in 0..n { progress |= engine.step_slot(w)?; }
    //     engine.end_round(progress)?;
    //
    // repeated until `finished()` reports an outcome.
    // -----------------------------------------------------------------

    /// `Some(true)` once the query succeeded, `Some(false)` once it failed.
    pub fn finished(&self) -> Option<bool> {
        self.finished
    }

    /// Number of workers (PEs) in this engine.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Start a scheduling round.
    pub fn begin_round(&mut self) {
        self.cycles += 1;
    }

    /// Give worker `w` its slot of the current round (`quantum` instructions,
    /// or one scheduling action when it is idle/waiting).  Returns `true` if
    /// the worker made progress.  A no-op once the query has finished.
    pub fn step_slot(&mut self, w: usize) -> EngineResult<bool> {
        if self.finished.is_some() {
            return Ok(false);
        }
        match self.workers[w].status {
            WorkerStatus::Stopped => Ok(false),
            WorkerStatus::Running => {
                for _ in 0..self.config.quantum {
                    if self.workers[w].status != WorkerStatus::Running || self.finished.is_some() {
                        break;
                    }
                    self.steps += 1;
                    self.workers[w].instructions += 1;
                    self.exec_instr(w)?;
                }
                Ok(true)
            }
            WorkerStatus::Idle => {
                self.workers[w].idle_cycles += 1;
                self.try_dispatch_work(w, Resume::Idle)
            }
            WorkerStatus::WaitingAtPcall { addr, pf } => {
                self.workers[w].idle_cycles += 1;
                // Shadow check: has the Parcall Frame completed?  The
                // actual (traced) reads happen when the worker re-executes
                // the pcall_wait instruction.
                let n = self.mem.read_untraced(pf + parcall::NGOALS).expect_uint("pcall ngoals");
                let done = self.mem.read_untraced(pf + parcall::COMPLETED).expect_uint("pcall completed");
                if done >= n {
                    self.workers[w].p = addr;
                    self.workers[w].status = WorkerStatus::Running;
                    Ok(true)
                } else {
                    self.try_dispatch_work(w, Resume::ToWait { addr })
                }
            }
        }
    }

    /// Close a scheduling round: detect deadlock and enforce the step limit.
    pub fn end_round(&mut self, any_progress: bool) -> EngineResult<()> {
        if !any_progress && self.finished.is_none() {
            return Err(EngineError::Internal("scheduler deadlock: no worker can make progress".to_string()));
        }
        if self.steps > self.config.max_steps {
            return Err(EngineError::StepLimitExceeded { limit: self.config.max_steps });
        }
        Ok(())
    }

    /// Drain the steals performed since the last drain (scheduler SPI).
    pub fn drain_steals(&mut self) -> Vec<StealEvent> {
        std::mem::take(&mut self.steal_log)
    }

    /// Verify the structural invariants of every worker's Stack Set: all
    /// tops inside their areas, the choice-point chain well-formed and its
    /// saved state inside the owning areas, trail entries pointing at
    /// bindable words, and Goal-Stack mirrors consistent.  Scheduling (and
    /// in particular goal stealing plus the backtracking that undoes a
    /// stolen goal) must preserve all of these between rounds; the
    /// goal-steal property tests call this after every round.
    ///
    /// Reads memory untraced only, so checking never perturbs statistics.
    pub fn check_consistency(&self) -> Result<(), String> {
        let map = &self.mem.map;
        for (w, wk) in self.workers.iter().enumerate() {
            let fail = |what: &str, detail: String| Err(format!("worker {w}: {what}: {detail}"));
            let within = |area: Area, addr: u32| -> bool {
                addr >= map.area_base(w, area) && addr <= map.area_end(w, area)
            };
            if !within(Area::Heap, wk.h) || wk.hb > wk.h {
                return fail("heap top", format!("h={} hb={}", wk.h, wk.hb));
            }
            if !within(Area::LocalStack, wk.local_top) {
                return fail("local top", format!("local_top={}", wk.local_top));
            }
            if !within(Area::ControlStack, wk.control_top) {
                return fail("control top", format!("control_top={}", wk.control_top));
            }
            if !within(Area::Trail, wk.tr) {
                return fail("trail top", format!("tr={}", wk.tr));
            }
            if !within(Area::GoalStack, wk.goal_top) {
                return fail("goal top", format!("goal_top={}", wk.goal_top));
            }
            if wk.e != NONE_ADDR && map.area_of(wk.e) != Area::LocalStack {
                return fail("environment register", format!("e={} outside any local stack", wk.e));
            }
            // The goal-frame mirror must point into this worker's own Goal
            // Stack, below its top.
            for &frame in &wk.goal_frames {
                if map.owner(frame) != w || map.area_of(frame) != Area::GoalStack {
                    return fail("goal frame mirror", format!("frame {frame} not in own goal stack"));
                }
            }
            // Walk the choice-point chain: frames must live in this worker's
            // control stack, strictly descending, with saved state inside
            // the owning areas.
            let mut b = wk.b;
            let mut hops = 0u32;
            while b != NONE_ADDR {
                if map.owner(b) != w || map.area_of(b) != Area::ControlStack {
                    return fail("choice point", format!("b={b} not in own control stack"));
                }
                let nargs = match self.mem.read_untraced(b + choice::NARGS) {
                    Cell::Uint(n) => n,
                    other => return fail("choice point", format!("nargs at {b} is {other:?}")),
                };
                let tr = match self.mem.read_untraced(choice::saved_tr(b, nargs)) {
                    Cell::Uint(t) => t,
                    other => return fail("choice point", format!("saved tr at {b} is {other:?}")),
                };
                if !within(Area::Trail, tr) || tr > wk.tr {
                    return fail("choice point", format!("saved tr {tr} outside [base, tr={}]", wk.tr));
                }
                let h = match self.mem.read_untraced(choice::saved_h(b, nargs)) {
                    Cell::Uint(h) => h,
                    other => return fail("choice point", format!("saved h at {b} is {other:?}")),
                };
                if !within(Area::Heap, h) {
                    return fail("choice point", format!("saved h {h} outside own heap"));
                }
                let prev = match self.mem.read_untraced(choice::prev_b(b, nargs)) {
                    Cell::Uint(p) => p,
                    other => return fail("choice point", format!("prev b at {b} is {other:?}")),
                };
                if prev != NONE_ADDR && prev >= b {
                    return fail("choice point", format!("prev b {prev} not below {b}"));
                }
                b = prev;
                hops += 1;
                if hops > 1_000_000 {
                    return fail("choice point", "chain does not terminate".to_string());
                }
            }
            // Trail entries must name bindable words (heap or local stack of
            // some worker — cross-PE bindings are legal for stolen goals).
            let mut t = map.area_base(w, Area::Trail);
            while t < wk.tr {
                match self.mem.read_untraced(t) {
                    Cell::Uint(addr) => {
                        let area = map.area_of(addr);
                        if area != Area::Heap && area != Area::LocalStack {
                            return fail("trail entry", format!("{addr} is in the {}", area.name()));
                        }
                    }
                    other => return fail("trail entry", format!("at {t}: {other:?}")),
                }
                t += 1;
            }
        }
        Ok(())
    }

    /// Record that `count` steal notifications reached worker `victim`
    /// (scheduler SPI: the Threaded backend delivers these over channels,
    /// the reference backend in place).
    pub fn deliver_steal_notices(&mut self, victim: usize, count: u64) {
        self.workers[victim].steal_notices += count;
    }

    // -----------------------------------------------------------------
    // Goal scheduling
    // -----------------------------------------------------------------

    /// Try to find a Goal Frame for worker `w` (own Goal Stack first, then
    /// steal round-robin) and start executing it.  Returns `true` if work
    /// was dispatched.
    pub(crate) fn try_dispatch_work(&mut self, w: usize, resume: Resume) -> EngineResult<bool> {
        // Own goal stack first (fast local path: no Marker, no message).
        if let Some(frame) = self.workers[w].goal_frames.pop() {
            self.workers[w].goal_top = frame;
            self.start_goal(w, frame, resume, false)?;
            return Ok(true);
        }
        // Steal from another worker (round-robin over victims).
        let n = self.workers.len();
        for i in 0..n {
            let victim = (self.steal_cursor + i) % n;
            if victim == w {
                continue;
            }
            if let Some(frame) = self.workers[victim].goal_frames.pop() {
                self.workers[victim].goal_top = frame;
                self.steal_cursor = (victim + 1) % n;
                self.workers[w].goals_stolen += 1;
                self.steal_log.push(StealEvent { thief: w, victim, frame });
                self.start_goal(w, frame, resume, true)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Begin executing the goal stored in the Goal Frame at `frame`.
    ///
    /// `stolen` distinguishes goals taken from another worker's Goal Stack
    /// from goals the owner picks up itself.  Stolen goals get the full
    /// treatment (Marker on the thief's Control stack, executing-PE record
    /// in the Parcall Frame, completion message to the parent); local goals
    /// take the cheap path, which is where the original system's low
    /// parallelism overhead for not-actually-parallel goals comes from.
    fn start_goal(&mut self, w: usize, frame: u32, resume: Resume, stolen: bool) -> EngineResult<()> {
        let pe = self.workers[w].id;
        // Read the goal frame (code, arity, parcall frame, slot, arguments).
        let code =
            self.mem.read(pe, frame + goal_frame::CODE, ObjectKind::GoalFrame).expect_code("goal code");
        let arity =
            self.mem.read(pe, frame + goal_frame::ARITY, ObjectKind::GoalFrame).expect_uint("goal arity");
        let pf = self.mem.read(pe, frame + goal_frame::PF, ObjectKind::GoalFrame).expect_uint("goal pf");
        let slot =
            self.mem.read(pe, frame + goal_frame::SLOT, ObjectKind::GoalFrame).expect_uint("goal slot");
        for i in 0..arity {
            let c = self.mem.read(pe, goal_frame::arg(frame, i), ObjectKind::GoalFrame);
            self.workers[w].x[(i + 1) as usize] = c;
        }

        // Record the pick-up in the Parcall Frame.
        let to_sched =
            self.mem.read(pe, pf + parcall::TO_SCHEDULE, ObjectKind::ParcallCount).expect_uint("to_schedule");
        self.mem.write(
            pe,
            pf + parcall::TO_SCHEDULE,
            Cell::Uint(to_sched.saturating_sub(1)),
            ObjectKind::ParcallCount,
        );
        if stolen {
            self.mem.write(
                pe,
                parcall::slot_status(pf, slot),
                Cell::Uint(parcall::SLOT_TAKEN),
                ObjectKind::ParcallGlobal,
            );
            self.mem.write(pe, parcall::slot_pe(pf, slot), Cell::Uint(w as u32), ObjectKind::ParcallGlobal);
        }

        self.parallel_goals += 1;
        if stolen {
            self.goals_actually_parallel += 1;
        }
        self.inferences += 1;

        let wk = &self.workers[w];
        let (b, tr, h, local_top, e, cp, hb, sb) =
            (wk.b, wk.tr, wk.h, wk.local_top, wk.e, wk.cp, wk.hb, wk.stack_boundary);

        // Stolen goals push a Marker delimiting the new Stack Section.
        let marker_addr = if stolen {
            let m = wk.control_top;
            self.mem.check_top(w, Area::ControlStack, m + marker::SIZE)?;
            self.mem.write(pe, m + marker::KIND, Cell::Uint(marker::KIND_GOAL), ObjectKind::Marker);
            self.mem.write(pe, m + marker::PF, Cell::Uint(pf), ObjectKind::Marker);
            self.mem.write(pe, m + marker::SLOT, Cell::Uint(slot), ObjectKind::Marker);
            self.mem.write(pe, m + marker::ENTRY_B, Cell::Uint(b), ObjectKind::Marker);
            self.mem.write(pe, m + marker::ENTRY_TR, Cell::Uint(tr), ObjectKind::Marker);
            self.mem.write(pe, m + marker::ENTRY_H, Cell::Uint(h), ObjectKind::Marker);
            self.mem.write(pe, m + marker::ENTRY_LOCAL_TOP, Cell::Uint(local_top), ObjectKind::Marker);
            self.mem.write(pe, m + marker::ENTRY_E, Cell::Uint(e), ObjectKind::Marker);
            self.workers[w].control_top = m + marker::SIZE;
            m
        } else {
            NONE_ADDR
        };

        let ctx = GoalContext {
            marker: marker_addr,
            pf,
            slot,
            entry_b: b,
            entry_tr: tr,
            entry_h: h,
            entry_local_top: local_top,
            prev_cp: cp,
            entry_e: e,
            prev_hb: hb,
            prev_stack_boundary: sb,
            resume,
            stolen,
        };
        let wk = &mut self.workers[w];
        wk.goal_contexts.push(ctx);
        wk.cp = self.program.goal_success_addr;
        wk.num_args = arity as u8;
        wk.b0 = wk.b;
        wk.p = code;
        wk.hb = wk.h;
        wk.stack_boundary = wk.local_top;
        wk.status = WorkerStatus::Running;
        wk.update_high_water();
        Ok(())
    }

    /// Executed when a parallel goal's continuation returns (the
    /// `goal_success` stub): record completion and resume scheduling.
    pub(crate) fn finish_goal_success(&mut self, w: usize) -> EngineResult<()> {
        let pe = self.workers[w].id;
        let ctx = self.workers[w]
            .goal_contexts
            .pop()
            .ok_or_else(|| EngineError::Internal("goal_success with no goal in progress".into()))?;
        let (pf, slot) = if ctx.stolen {
            // Re-read the Marker (pf, slot) as the real machine would, record
            // the completed slot and notify the parent.
            let pf = self.mem.read(pe, ctx.marker + marker::PF, ObjectKind::Marker).expect_uint("marker pf");
            let slot =
                self.mem.read(pe, ctx.marker + marker::SLOT, ObjectKind::Marker).expect_uint("marker slot");
            self.mem.write(
                pe,
                parcall::slot_status(pf, slot),
                Cell::Uint(parcall::SLOT_DONE),
                ObjectKind::ParcallGlobal,
            );
            (pf, slot)
        } else {
            (ctx.pf, ctx.slot)
        };
        let done =
            self.mem.read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount).expect_uint("completed");
        self.mem.write(pe, pf + parcall::COMPLETED, Cell::Uint(done + 1), ObjectKind::ParcallCount);

        if ctx.stolen {
            let parent =
                self.mem.read(pe, pf + parcall::PARENT_PE, ObjectKind::ParcallLocal).expect_uint("parent pe")
                    as usize;
            if parent != w {
                self.post_message(w, parent, message::KIND_DONE, pf, slot)?;
            }
        }

        let wk = &mut self.workers[w];
        wk.cp = ctx.prev_cp;
        wk.e = ctx.entry_e;
        wk.hb = ctx.prev_hb;
        wk.stack_boundary = ctx.prev_stack_boundary;
        match ctx.resume {
            Resume::ToWait { addr } => {
                wk.p = addr;
                wk.status = WorkerStatus::Running;
            }
            Resume::Idle => {
                wk.status = WorkerStatus::Idle;
            }
        }
        Ok(())
    }

    /// A parallel goal failed: recover the storage of its Stack Section,
    /// mark the Parcall Frame as failed and resume scheduling.
    pub(crate) fn fail_goal(&mut self, w: usize) -> EngineResult<()> {
        let pe = self.workers[w].id;
        let ctx = self.workers[w]
            .goal_contexts
            .pop()
            .ok_or_else(|| EngineError::Internal("goal failure with no goal in progress".into()))?;
        let (pf, slot) = (ctx.pf, ctx.slot);
        if ctx.stolen {
            // Re-read the Marker, as the real machine recovers the Stack
            // Section through it.
            let m = ctx.marker;
            let _ = self.mem.read(pe, m + marker::PF, ObjectKind::Marker);
            let _ = self.mem.read(pe, m + marker::SLOT, ObjectKind::Marker);
            let _ = self.mem.read(pe, m + marker::ENTRY_TR, ObjectKind::Marker);
            let _ = self.mem.read(pe, m + marker::ENTRY_H, ObjectKind::Marker);
            let _ = self.mem.read(pe, m + marker::ENTRY_LOCAL_TOP, ObjectKind::Marker);
            let _ = self.mem.read(pe, m + marker::ENTRY_E, ObjectKind::Marker);
        }

        // Undo the goal's bindings and recover its storage.
        self.untrail_to(w, ctx.entry_tr)?;
        {
            let wk = &mut self.workers[w];
            wk.h = ctx.entry_h;
            wk.local_top = ctx.entry_local_top;
            wk.e = ctx.entry_e;
            wk.b = ctx.entry_b;
            wk.cp = ctx.prev_cp;
            wk.hb = ctx.prev_hb;
            wk.stack_boundary = ctx.prev_stack_boundary;
            if ctx.stolen {
                wk.control_top = ctx.marker; // the marker itself is recovered
            }
        }

        // Mark the Parcall Frame.
        if ctx.stolen {
            self.mem.write(
                pe,
                parcall::slot_status(pf, slot),
                Cell::Uint(parcall::SLOT_FAILED),
                ObjectKind::ParcallGlobal,
            );
        }
        self.mem.write(
            pe,
            pf + parcall::STATUS,
            Cell::Uint(parcall::STATUS_FAILED),
            ObjectKind::ParcallLocal,
        );
        let done =
            self.mem.read(pe, pf + parcall::COMPLETED, ObjectKind::ParcallCount).expect_uint("completed");
        self.mem.write(pe, pf + parcall::COMPLETED, Cell::Uint(done + 1), ObjectKind::ParcallCount);
        if ctx.stolen {
            let parent =
                self.mem.read(pe, pf + parcall::PARENT_PE, ObjectKind::ParcallLocal).expect_uint("parent pe")
                    as usize;
            if parent != w {
                self.post_message(w, parent, message::KIND_FAILED, pf, slot)?;
            }
        }

        let wk = &mut self.workers[w];
        match ctx.resume {
            Resume::ToWait { addr } => {
                wk.p = addr;
                wk.status = WorkerStatus::Running;
            }
            Resume::Idle => {
                wk.status = WorkerStatus::Idle;
            }
        }
        Ok(())
    }

    /// Write a completion/failure message into `parent`'s Message Buffer.
    fn post_message(
        &mut self,
        from: usize,
        parent: usize,
        kind: u32,
        pf: u32,
        slot: u32,
    ) -> EngineResult<()> {
        let pe = self.workers[from].id;
        let base = self.workers[parent].msg_base;
        let size = self.mem.map.config.message_words;
        let mut top = self.workers[parent].msg_top;
        if top + message::SIZE > base + size {
            top = base; // wrap the circular buffer
        }
        self.mem.write(pe, top + message::KIND, Cell::Uint(kind), ObjectKind::Message);
        self.mem.write(pe, top + message::PF, Cell::Uint(pf), ObjectKind::Message);
        self.mem.write(pe, top + message::SLOT, Cell::Uint(slot), ObjectKind::Message);
        self.workers[parent].msg_top = top + message::SIZE;
        self.workers[parent].pending_messages += 1;
        Ok(())
    }

    /// Consume the pending completion messages of worker `w` (called when a
    /// Parcall Frame completes), generating the corresponding read traffic.
    pub(crate) fn consume_messages(&mut self, w: usize) {
        let pe = self.workers[w].id;
        let pending = self.workers[w].pending_messages;
        if pending == 0 {
            return;
        }
        let mut addr = self.workers[w].msg_top;
        for _ in 0..pending {
            // Read back the most recent messages (newest first); the values
            // only matter for the reference trace.
            addr = addr.saturating_sub(message::SIZE).max(self.workers[w].msg_base);
            let _ = self.mem.read(pe, addr + message::KIND, ObjectKind::Message);
            let _ = self.mem.read(pe, addr + message::PF, ObjectKind::Message);
            let _ = self.mem.read(pe, addr + message::SLOT, ObjectKind::Message);
        }
        self.workers[w].pending_messages = 0;
    }

    // -----------------------------------------------------------------
    // Choice points and backtracking
    // -----------------------------------------------------------------

    /// Push a choice point whose next alternative is the code address
    /// `next_clause`.
    pub(crate) fn push_choice_point(&mut self, w: usize, next_clause: u32) -> EngineResult<()> {
        let pe = self.workers[w].id;
        let nargs = self.workers[w].num_args as u32;
        let b = self.workers[w].control_top;
        self.mem.check_top(w, Area::ControlStack, b + choice::size(nargs))?;
        self.mem.write(pe, b + choice::NARGS, Cell::Uint(nargs), ObjectKind::ChoicePoint);
        for i in 0..nargs {
            let v = self.workers[w].x[(i + 1) as usize];
            self.mem.write(pe, choice::arg(b, i), v, ObjectKind::ChoicePoint);
        }
        let wk = &self.workers[w];
        let (e, cp, prev_b, tr, h, pf, local_top, b0) =
            (wk.e, wk.cp, wk.b, wk.tr, wk.h, wk.pf, wk.local_top, wk.b0);
        self.mem.write(pe, choice::saved_e(b, nargs), Cell::Uint(e), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::saved_cp(b, nargs), Cell::Code(cp), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::prev_b(b, nargs), Cell::Uint(prev_b), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::next_clause(b, nargs), Cell::Code(next_clause), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::saved_tr(b, nargs), Cell::Uint(tr), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::saved_h(b, nargs), Cell::Uint(h), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::saved_pf(b, nargs), Cell::Uint(pf), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::saved_local_top(b, nargs), Cell::Uint(local_top), ObjectKind::ChoicePoint);
        self.mem.write(pe, choice::saved_b0(b, nargs), Cell::Uint(b0), ObjectKind::ChoicePoint);
        let wk = &mut self.workers[w];
        wk.b = b;
        wk.hb = wk.h;
        wk.stack_boundary = wk.local_top;
        wk.control_top = b + choice::size(nargs);
        wk.update_high_water();
        Ok(())
    }

    /// Restore machine state from the current choice point and continue at
    /// its next-alternative address (the retry/trust driver instruction).
    fn restore_from_choice_point(&mut self, w: usize) -> EngineResult<()> {
        let pe = self.workers[w].id;
        let b = self.workers[w].b;
        let nargs = self.mem.read(pe, b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        for i in 0..nargs {
            let v = self.mem.read(pe, choice::arg(b, i), ObjectKind::ChoicePoint);
            self.workers[w].x[(i + 1) as usize] = v;
        }
        let e = self.mem.read(pe, choice::saved_e(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp e");
        let cp = self.mem.read(pe, choice::saved_cp(b, nargs), ObjectKind::ChoicePoint).expect_code("cp cp");
        let bp =
            self.mem.read(pe, choice::next_clause(b, nargs), ObjectKind::ChoicePoint).expect_code("cp bp");
        let tr = self.mem.read(pe, choice::saved_tr(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp tr");
        let h = self.mem.read(pe, choice::saved_h(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp h");
        let pf = self.mem.read(pe, choice::saved_pf(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp pf");
        let lt = self
            .mem
            .read(pe, choice::saved_local_top(b, nargs), ObjectKind::ChoicePoint)
            .expect_uint("cp lt");
        let b0 = self.mem.read(pe, choice::saved_b0(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp b0");
        self.untrail_to(w, tr)?;
        let wk = &mut self.workers[w];
        wk.num_args = nargs as u8;
        wk.e = e;
        wk.cp = cp;
        wk.h = h;
        wk.hb = h;
        wk.pf = pf;
        wk.local_top = lt;
        wk.stack_boundary = lt;
        wk.b0 = b0;
        wk.p = bp;
        Ok(())
    }

    /// Discard the current choice point (executed by `trust` / cut).
    pub(crate) fn pop_choice_point(&mut self, w: usize) -> EngineResult<()> {
        let pe = self.workers[w].id;
        let b = self.workers[w].b;
        let nargs = self.mem.read(pe, b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        let prev =
            self.mem.read(pe, choice::prev_b(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp prev");
        self.workers[w].b = prev;
        self.refresh_backtrack_boundaries(w)?;
        self.recede_control_top(w);
        Ok(())
    }

    /// After B changed (cut / trust), refresh the `hb` / `stack_boundary`
    /// trailing boundaries from the new current choice point.
    pub(crate) fn refresh_backtrack_boundaries(&mut self, w: usize) -> EngineResult<()> {
        let pe = self.workers[w].id;
        let b = self.workers[w].b;
        // Within a parallel goal, the failure boundary of the goal also acts
        // as a trailing boundary.
        let (goal_hb, goal_sb) = match self.workers[w].goal_contexts.last() {
            Some(_) => (self.workers[w].hb, self.workers[w].stack_boundary),
            None => (self.workers[w].heap_base, self.workers[w].local_base),
        };
        if b == NONE_ADDR {
            let wk = &mut self.workers[w];
            wk.hb = goal_hb.min(wk.h);
            wk.stack_boundary = goal_sb.min(wk.local_top);
            return Ok(());
        }
        let nargs = self.mem.read(pe, b + choice::NARGS, ObjectKind::ChoicePoint).expect_uint("cp nargs");
        let h = self.mem.read(pe, choice::saved_h(b, nargs), ObjectKind::ChoicePoint).expect_uint("cp h");
        let lt = self
            .mem
            .read(pe, choice::saved_local_top(b, nargs), ObjectKind::ChoicePoint)
            .expect_uint("cp lt");
        let wk = &mut self.workers[w];
        wk.hb = h;
        wk.stack_boundary = lt;
        Ok(())
    }

    /// Recover Control-stack space if the discarded frames were topmost.
    pub(crate) fn recede_control_top(&mut self, w: usize) {
        let wk = &self.workers[w];
        let marker_top = wk
            .goal_contexts
            .iter()
            .rev()
            .find(|c| c.stolen)
            .map(|c| c.marker + marker::SIZE)
            .unwrap_or(wk.control_base);
        let b_top = if wk.b == NONE_ADDR {
            wk.control_base
        } else {
            // The frame's true extent comes from its saved argument count —
            // an untraced host-side read: `num_args` may have changed since
            // the frame was pushed, and a shorter bound would let the next
            // push clobber the live frame's saved fields.
            let nargs = self.mem.read_untraced(wk.b + choice::NARGS).expect_uint("cp nargs");
            wk.b + choice::size(nargs)
        };
        let new_top = marker_top.max(b_top).max(wk.control_base);
        if new_top < wk.control_top {
            self.workers[w].control_top = new_top;
        }
    }

    /// Undo trailed bindings down to `target`.
    pub(crate) fn untrail_to(&mut self, w: usize, target: u32) -> EngineResult<()> {
        let pe = self.workers[w].id;
        while self.workers[w].tr > target {
            self.workers[w].tr -= 1;
            let taddr = self.workers[w].tr;
            let addr = self.mem.read(pe, taddr, ObjectKind::TrailEntry).expect_uint("trail entry");
            let obj = self.object_for_addr(addr);
            self.mem.write(pe, addr, Cell::Ref(addr), obj);
        }
        Ok(())
    }

    /// Handle a failure on worker `w`: either the current parallel goal
    /// fails, the whole query fails, or we backtrack into the most recent
    /// choice point.
    pub(crate) fn backtrack(&mut self, w: usize) -> EngineResult<()> {
        let b = self.workers[w].b;
        let at_goal_boundary = self.workers[w].goal_contexts.last().map(|c| c.entry_b == b).unwrap_or(false);
        if at_goal_boundary {
            return self.fail_goal(w);
        }
        if b == NONE_ADDR {
            self.mem.shared_write(board::STATUS, Cell::Uint(board::STATUS_FAILED));
            self.finished = Some(false);
            for wk in &mut self.workers {
                wk.status = WorkerStatus::Stopped;
            }
            return Ok(());
        }
        self.restore_from_choice_point(w)
    }

    /// Called by the `halt` builtin: the query succeeded.  The answer
    /// location is published on the query board in the shared region, where
    /// any PE (or the host) can read it.
    pub(crate) fn query_succeeded(&mut self, w: usize) {
        self.mem.shared_write(board::STATUS, Cell::Uint(board::STATUS_SUCCEEDED));
        self.mem.shared_write(board::ANSWER_PE, Cell::Uint(w as u32));
        self.mem.shared_write(board::ANSWER_ENV, Cell::Uint(self.workers[w].e));
        self.finished = Some(true);
        for wk in &mut self.workers {
            wk.status = WorkerStatus::Stopped;
        }
    }

    // -----------------------------------------------------------------
    // Results
    // -----------------------------------------------------------------

    fn extract_answer(&self, syms: &SymbolTable) -> EngineResult<Vec<(String, Term)>> {
        if self.mem.shared_read(board::STATUS) != Cell::Uint(board::STATUS_SUCCEEDED) {
            return Ok(Vec::new());
        }
        let env_addr = self.mem.shared_read(board::ANSWER_ENV).expect_uint("board answer env");
        let mut out = Vec::new();
        for (name, slot) in &self.program.query_vars {
            let addr = env::y_addr(env_addr, *slot);
            let term = extract_binding(&self.mem, addr, syms)?;
            out.push((name.clone(), term));
        }
        Ok(out)
    }

    fn collect_stats(&self) -> RunStats {
        let workers: Vec<WorkerStats> = self
            .workers
            .iter()
            .map(|w| WorkerStats {
                instructions: w.instructions,
                idle_cycles: w.idle_cycles,
                max_usage: w.max_usage(),
                goals_stolen: w.goals_stolen,
                steal_notices: w.steal_notices,
            })
            .collect();
        let area_stats = self.mem.merged_stats();
        RunStats {
            num_workers: self.workers.len(),
            instructions: self.steps,
            data_refs: area_stats.total.total(),
            reads: area_stats.total.reads,
            writes: area_stats.total.writes,
            elapsed_cycles: self.cycles,
            parcalls: self.parcalls,
            parallel_goals: self.parallel_goals,
            goals_actually_parallel: self.goals_actually_parallel,
            inferences: self.inferences,
            area_stats,
            workers,
        }
    }

    /// Classify a data address by the object kind that lives in its area
    /// (used when the engine only knows an address, e.g. for dereferencing
    /// and untrailing).
    pub(crate) fn object_for_addr(&self, addr: u32) -> ObjectKind {
        match self.mem.map.area_of(addr) {
            Area::Heap => ObjectKind::HeapTerm,
            Area::LocalStack => ObjectKind::EnvPermVar,
            Area::ControlStack => ObjectKind::Marker,
            Area::Trail => ObjectKind::TrailEntry,
            Area::Pdl => ObjectKind::PdlEntry,
            Area::GoalStack => ObjectKind::GoalFrame,
            Area::MessageBuffer => ObjectKind::Message,
        }
    }
}
